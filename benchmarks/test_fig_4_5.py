"""Figure 4.5: response time vs throughput at 0.5 s delay.

Paper expectations: the benefit of *static* load sharing is much smaller
than at 0.2 s, while dynamic load sharing continues to offer significant
improvement in response time and supportable transaction rate.
"""

from conftest import run_once

from repro.experiments import figure_4_1, figure_4_5, figure_report


def _rt_at(curve, rate):
    match = [p.mean_response_time for p in curve.points
             if p.total_rate == rate]
    return match[0] if match else None


def test_figure_4_5(benchmark, settings):
    figure = run_once(benchmark, lambda: figure_4_5(settings))
    print()
    print(figure_report(figure))
    assert figure.comm_delay == 0.5

    none = figure.curve("no-load-sharing")
    static = figure.curve("static")
    dynamic = figure.curve("best-dynamic")

    # Load sharing still lifts the supportable rate past the baseline.
    assert none.max_supported_rate() < 25.0
    assert dynamic.max_supported_rate() >= 28.0

    # Dynamic keeps a clear edge over static at high load.
    highs = [r for r in (25.0, 30.0, 33.0)]
    assert sum(_rt_at(dynamic, r) for r in highs) <= \
        sum(_rt_at(static, r) for r in highs) * 1.02

    # The static benefit over none at moderate load (15-20 tps) shrinks
    # relative to the 0.2 s case of Figure 4.1.
    base = figure_4_1(settings.scaled(1.0))
    gain_02 = (_rt_at(base.curve("no-load-sharing"), 20.0) -
               _rt_at(base.curve("static"), 20.0))
    gain_05 = (_rt_at(none, 20.0) - _rt_at(static, 20.0))
    assert gain_05 < gain_02
