"""Micro-benchmarks of the substrate components.

These are genuine pytest-benchmark timing runs (many rounds) for the
pieces whose speed determines how large an experiment the harness can
sweep: the DES kernel, the lock manager, the analytic model and the
static optimiser.

``test_bench_figure_suite_parallel_speedup`` additionally records its
wall-clock numbers into ``BENCH_parallel.json`` at the repository root,
so the serial-vs-parallel perf trajectory accumulates across PRs.
"""

import json
import os
import time
from pathlib import Path

from repro.core import AnalyticModel, optimize_static
from repro.db import LockManager, LockMode
from repro.experiments import PrecisionSettings, RunSettings
from repro.experiments.figures import figure_4_2
from repro.hybrid import HybridSystem, paper_config
from repro.core.router import AlwaysLocalRouter
from repro.sim import Environment, Resource

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_bench_engine_event_throughput(benchmark):
    """Schedule-and-dispatch cost of the raw event loop."""

    def run():
        env = Environment()

        def ping(env):
            for _ in range(2000):
                yield env.timeout(1.0)

        for _ in range(5):
            env.process(ping(env))
        env.run()
        return env.now

    assert benchmark(run) == 2000.0


def test_bench_engine_step_fast_path(benchmark):
    """Pins the kernel's raw step rate (the ``__slots__`` fast path).

    One process cycling 50 K timeouts isolates ``_enqueue``/``step``/
    ``_resume`` from any model code.  The asserted floor is deliberately
    conservative (any regression that re-introduces per-event ``__dict__``
    allocation or per-push peak tracking costs far more than 2x).
    """
    n_events = 50_000

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(n_events):
                yield env.timeout(1.0)

        env.process(ticker(env))
        started = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - started
        return env.events_processed / elapsed

    events_per_sec = benchmark(run)
    assert events_per_sec > 100_000, (
        f"kernel fast path regressed: {events_per_sec:,.0f} events/s")


def test_bench_figure_suite_parallel_speedup():
    """Times figure 4.2 serial vs parallel; records BENCH_parallel.json.

    Not a pytest-benchmark fixture run: the point is one honest
    wall-clock comparison per invocation, appended to the repository's
    perf trajectory.  The scale is small enough for CI but large enough
    that pool start-up does not dominate.
    """
    scale = float(os.environ.get("REPRO_PARALLEL_BENCH_SCALE", "0.1"))
    workers = min(4, os.cpu_count() or 1)
    settings = RunSettings(scale=scale)

    started = time.perf_counter()
    serial = figure_4_2(settings, workers=1)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = figure_4_2(settings, workers=workers)
    parallel_seconds = time.perf_counter() - started

    assert serial.curves == parallel.curves  # bit-identical reassembly

    record = {
        "benchmark": "figure_4_2",
        "scale": scale,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(serial_seconds / parallel_seconds, 3)
        if parallel_seconds > 0 else None,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    target = REPO_ROOT / "BENCH_parallel.json"
    history = []
    if target.exists():
        try:
            history = json.loads(target.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    target.write_text(json.dumps(history, indent=2) + "\n")

    # On a single-core runner the pool cannot win; only enforce the
    # speedup where hardware parallelism actually exists.
    if (os.cpu_count() or 1) >= 4:
        assert serial_seconds / parallel_seconds >= 2.0, (
            f"parallel figure suite too slow: {record}")


def test_bench_adaptive_replication_savings():
    """Adaptive precision targeting vs the fixed grid it is capped by.

    Runs figure 4.2 once with a :class:`PrecisionSettings` (precision
    target 10 %, cap 8 replications per point) and once with the
    equivalent fixed grid (8 replications everywhere), then records the
    replication counts, simulated work and wall-clock of both into
    ``BENCH_adaptive.json`` so the savings trajectory accumulates
    across PRs.  Like the parallel benchmark above this is one honest
    wall-clock comparison per invocation, not a pytest-benchmark run.
    (The cap was 4 through PR 8; with 4 the knee points ran to the cap
    unconverged, so the cap is now 8 and the unconverged tail is
    reported instead of silently truncated.)
    """
    scale = float(os.environ.get("REPRO_ADAPTIVE_BENCH_SCALE", "0.1"))
    precision = PrecisionSettings(scale=scale, rel_precision=0.1,
                                  min_replications=2, max_replications=8)
    fixed_settings = precision.fixed_equivalent()

    started = time.perf_counter()
    fixed = figure_4_2(fixed_settings, workers=1)
    fixed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    adaptive = figure_4_2(precision, workers=1)
    adaptive_seconds = time.perf_counter() - started

    fixed_points = [p for c in fixed.curves for p in c.points]
    adaptive_points = [p for c in adaptive.curves for p in c.points]
    fixed_reps = sum(p.n_replications for p in fixed_points)
    adaptive_reps = sum(p.n_replications for p in adaptive_points)

    # The whole point: the precision target saves simulated work.
    assert adaptive_reps < fixed_reps, (
        f"adaptive ran {adaptive_reps} replications vs {fixed_reps} fixed")

    converged = 0
    for point_f, point_a in zip(fixed_points, adaptive_points):
        # Every point either met the target or ran to the cap ...
        met = point_a.rt_relative_half_width <= precision.rel_precision
        assert met or point_a.n_replications == precision.max_replications
        converged += met
        # ... and its replications are a prefix of the fixed grid's
        # (common random numbers: replication r always seeds base+r).
        assert (point_a.replications ==
                point_f.replications[:point_a.n_replications])

    record = {
        "benchmark": "figure_4_2_adaptive",
        "scale": scale,
        "rel_precision": precision.rel_precision,
        "min_replications": precision.min_replications,
        "max_replications": precision.max_replications,
        "points": len(adaptive_points),
        "points_converged": converged,
        "fixed_replications": fixed_reps,
        "adaptive_replications": adaptive_reps,
        "replications_saved": fixed_reps - adaptive_reps,
        "fixed_engine_events": sum(r.engine_events
                                   for p in fixed_points
                                   for r in p.replications),
        "adaptive_engine_events": sum(r.engine_events
                                      for p in adaptive_points
                                      for r in p.replications),
        "fixed_seconds": round(fixed_seconds, 3),
        "adaptive_seconds": round(adaptive_seconds, 3),
        "speedup": round(fixed_seconds / adaptive_seconds, 3)
        if adaptive_seconds > 0 else None,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    target = REPO_ROOT / "BENCH_adaptive.json"
    history = []
    if target.exists():
        try:
            history = json.loads(target.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    target.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_variance_reduction_savings():
    """CRN + control variates vs the plain fixed grid, to +-10%.

    Runs a figure 4.2 slice (two strategies over three rates) three
    ways -- the fixed 8-replication grid with flags off, the adaptive
    scheduler with flags off, and the adaptive scheduler under common
    random numbers with control variates -- and records all three into
    ``BENCH_variance.json``.  The headline claims enforced here:

    * the CRN + CV run reaches the +-10% target with at least 2x fewer
      replications than the fixed grid;
    * its point estimates agree with the fixed grid's within
      overlapping 95% confidence intervals (variance reduction must
      not move the answers).
    """
    from repro.experiments.adaptive import run_adaptive_curve_set
    from repro.experiments.runner import run_curve_set

    scale = float(os.environ.get("REPRO_VARIANCE_BENCH_SCALE", "0.1"))
    strategies = ["queue-length", "min-average-population"]
    rates = [15.0, 25.0, 30.0]
    entries = [(name, name, list(rates)) for name in strategies]

    fixed_settings = RunSettings(scale=scale, replications=8)
    started = time.perf_counter()
    fixed_curves = run_curve_set(entries, settings=fixed_settings,
                                 workers=1)
    fixed_seconds = time.perf_counter() - started

    plain_settings = PrecisionSettings(scale=scale, rel_precision=0.1,
                                       min_replications=2,
                                       max_replications=8)
    plain = run_adaptive_curve_set(entries, settings=plain_settings,
                                   workers=1)

    vr_settings = PrecisionSettings(scale=scale, rel_precision=0.1,
                                    min_replications=2,
                                    max_replications=8,
                                    crn=True, control_variates=True)
    started = time.perf_counter()
    reduced = run_adaptive_curve_set(entries, settings=vr_settings,
                                     workers=1)
    reduced_seconds = time.perf_counter() - started

    fixed_points = [p for c in fixed_curves for p in c.points]
    fixed_reps = sum(p.n_replications for p in fixed_points)
    reduced_points = [p for c in reduced.curves for p in c.points]
    reduced_reps = reduced.report.replications_total

    # Headline claim: >= 2x fewer replications to the same target.
    assert reduced_reps * 2 <= fixed_reps, (
        f"CRN+CV needed {reduced_reps} replications vs {fixed_reps} "
        f"fixed -- less than the promised 2x saving")
    assert reduced.report.all_converged, reduced.report.summary()

    # The estimates must agree: overlapping 95% CIs point by point.
    for point_f, point_r in zip(fixed_points, reduced_points):
        gap = abs(point_f.mean_response_time - point_r.mean_response_time)
        budget = point_f.rt_half_width + point_r.rt_half_width
        assert gap <= budget, (
            f"estimates diverged at rate {point_f.total_rate}: "
            f"fixed {point_f.mean_response_time:.4f} vs CRN+CV "
            f"{point_r.mean_response_time:.4f} (CI budget {budget:.4f})")

    ratios = [p.variance_reduction for p in reduced_points
              if p.variance_reduction is not None]
    record = {
        "benchmark": "figure_4_2_variance_reduction",
        "scale": scale,
        "strategies": strategies,
        "rates": rates,
        "rel_precision": 0.1,
        "max_replications": 8,
        "points": len(reduced_points),
        "fixed_replications": fixed_reps,
        "adaptive_plain_replications": plain.report.replications_total,
        "adaptive_plain_converged": sum(
            1 for p in plain.report.points if p.converged),
        "crn_cv_replications": reduced_reps,
        "crn_cv_converged": sum(
            1 for p in reduced.report.points if p.converged),
        "replication_ratio_vs_fixed": round(fixed_reps / reduced_reps, 3),
        "mean_variance_reduction": round(sum(ratios) / len(ratios), 3)
        if ratios else None,
        "cv_points_used": sum(1 for r in ratios if r > 1.0),
        "fixed_seconds": round(fixed_seconds, 3),
        "crn_cv_seconds": round(reduced_seconds, 3),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    target = REPO_ROOT / "BENCH_variance.json"
    history = []
    if target.exists():
        try:
            history = json.loads(target.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    target.write_text(json.dumps(history, indent=2) + "\n")


def test_bench_observability_overhead_budget():
    """The full observer stack must cost <= 10% of a bare run.

    Times a hot run bare, then the same run with every pure observer
    attached at once -- metrics registry, routing audit and a
    zero-buffer streaming tracer -- and enforces the overhead budget
    that keeps instrumentation on by default.  Best-of-N wall-clock on
    both sides damps scheduler noise (a single-shot ratio on a shared
    runner drifts far more than the budget itself).
    """
    from repro.experiments.runner import run_single
    from repro.obs.audit import RoutingAudit
    from repro.obs.registry import MetricsRegistry
    from repro.sim.trace import Tracer

    settings = RunSettings(warmup_time=5.0, measure_time=30.0,
                           base_seed=11)
    attempts = 5

    def best_of(runner):
        best = float("inf")
        reference = None
        for _ in range(attempts):
            started = time.perf_counter()
            result = runner()
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best = elapsed
            reference = result
        return best, reference

    bare_seconds, bare = best_of(
        lambda: run_single("queue-length", 18.0, settings=settings))
    observed_seconds, observed = best_of(
        lambda: run_single("queue-length", 18.0, settings=settings,
                           registry=MetricsRegistry(),
                           audit=RoutingAudit(),
                           tracer=Tracer(max_records=0)))

    # The observers must not have changed the run they were measuring.
    assert observed.identity_dict() == bare.identity_dict()

    overhead = observed_seconds / bare_seconds - 1.0
    assert overhead <= 0.10, (
        f"observability overhead {overhead:.1%} exceeds the 10% budget "
        f"(bare {bare_seconds:.3f}s, observed {observed_seconds:.3f}s)")


def test_bench_resource_contention(benchmark):
    """Request/queue/release cycling through a contended resource."""

    def run():
        env = Environment()
        cpu = Resource(env)
        done = []

        def user(env):
            for _ in range(100):
                with cpu.request() as req:
                    yield req
                    yield env.timeout(0.001)
            done.append(1)

        for _ in range(20):
            env.process(user(env))
        env.run()
        return len(done)

    assert benchmark(run) == 20


def test_bench_lock_manager_acquire_release(benchmark):
    """Uncontended acquire/release pairs (the protocol's hot path)."""

    env = Environment()
    manager = LockManager(env)

    def run():
        for txn in range(100):
            for entity in range(10):
                manager.acquire(txn, entity * 31 + txn, LockMode.EXCLUSIVE)
            manager.release_all(txn)
        return manager.locks_granted

    benchmark(run)


def test_bench_analytic_model_evaluate(benchmark):
    """One fixed-point solve of the Section 3.1 model."""
    model = AnalyticModel(paper_config(total_rate=20.0))
    estimate = benchmark(lambda: model.evaluate(0.5, 2.0))
    assert estimate.response_average > 0


def test_bench_static_optimizer(benchmark):
    """Full grid optimisation of p_ship (41 + 21 model solves)."""
    config = paper_config(total_rate=20.0)
    optimum = benchmark.pedantic(lambda: optimize_static(config),
                                 rounds=3, iterations=1)
    assert 0.0 <= optimum.p_ship <= 1.0


def test_bench_simulation_point(benchmark):
    """End-to-end cost of one short simulated run at 20 tps."""
    config = paper_config(total_rate=20.0, warmup_time=5.0,
                          measure_time=15.0)

    result = benchmark.pedantic(
        lambda: HybridSystem(config, lambda c, i: AlwaysLocalRouter()).run(),
        rounds=3, iterations=1)
    assert result.completed > 0
