"""Micro-benchmarks of the substrate components.

These are genuine pytest-benchmark timing runs (many rounds) for the
pieces whose speed determines how large an experiment the harness can
sweep: the DES kernel, the lock manager, the analytic model and the
static optimiser.
"""

from repro.core import AnalyticModel, optimize_static
from repro.db import LockManager, LockMode
from repro.hybrid import HybridSystem, paper_config
from repro.core.router import AlwaysLocalRouter
from repro.sim import Environment, Resource


def test_bench_engine_event_throughput(benchmark):
    """Schedule-and-dispatch cost of the raw event loop."""

    def run():
        env = Environment()

        def ping(env):
            for _ in range(2000):
                yield env.timeout(1.0)

        for _ in range(5):
            env.process(ping(env))
        env.run()
        return env.now

    assert benchmark(run) == 2000.0


def test_bench_resource_contention(benchmark):
    """Request/queue/release cycling through a contended resource."""

    def run():
        env = Environment()
        cpu = Resource(env)
        done = []

        def user(env):
            for _ in range(100):
                with cpu.request() as req:
                    yield req
                    yield env.timeout(0.001)
            done.append(1)

        for _ in range(20):
            env.process(user(env))
        env.run()
        return len(done)

    assert benchmark(run) == 20


def test_bench_lock_manager_acquire_release(benchmark):
    """Uncontended acquire/release pairs (the protocol's hot path)."""

    env = Environment()
    manager = LockManager(env)

    def run():
        for txn in range(100):
            for entity in range(10):
                manager.acquire(txn, entity * 31 + txn, LockMode.EXCLUSIVE)
            manager.release_all(txn)
        return manager.locks_granted

    benchmark(run)


def test_bench_analytic_model_evaluate(benchmark):
    """One fixed-point solve of the Section 3.1 model."""
    model = AnalyticModel(paper_config(total_rate=20.0))
    estimate = benchmark(lambda: model.evaluate(0.5, 2.0))
    assert estimate.response_average > 0


def test_bench_static_optimizer(benchmark):
    """Full grid optimisation of p_ship (41 + 21 model solves)."""
    config = paper_config(total_rate=20.0)
    optimum = benchmark.pedantic(lambda: optimize_static(config),
                                 rounds=3, iterations=1)
    assert 0.0 <= optimum.p_ship <= 1.0


def test_bench_simulation_point(benchmark):
    """End-to-end cost of one short simulated run at 20 tps."""
    config = paper_config(total_rate=20.0, warmup_time=5.0,
                          measure_time=15.0)

    result = benchmark.pedantic(
        lambda: HybridSystem(config, lambda c, i: AlwaysLocalRouter()).run(),
        rounds=3, iterations=1)
    assert result.completed > 0
