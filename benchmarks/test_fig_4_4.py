"""Figure 4.4: tuning the queue-length threshold heuristic (0.2 s delay).

Paper expectations:

* best threshold is about -0.2 (ship even when the local site looks
  *less* utilised -- the 15x central MIPS advantage dominates the 0.2 s
  delay);
* pushing further (-0.3) makes performance worse;
* the best dynamic strategy still beats the tuned heuristic.
"""

from conftest import run_once

from repro.experiments import figure_4_4, figure_report


def _rt_sum_high(curve, rates=(25.0, 30.0, 33.0)):
    return sum(p.mean_response_time for p in curve.points
               if p.total_rate in rates)


def test_figure_4_4(benchmark, settings):
    figure = run_once(benchmark, lambda: figure_4_4(settings))
    print()
    print(figure_report(figure))

    neutral = figure.curve("threshold(+0.0)")
    tuned = figure.curve("threshold(-0.2)")
    overshoot = figure.curve("threshold(-0.3)")
    dynamic = figure.curve("best-dynamic")

    # The tuned (negative) threshold beats the neutral one at high load.
    assert _rt_sum_high(tuned) < _rt_sum_high(neutral)

    # Over-negative thresholds pay at *low* load: the difference
    # rho_local - rho_central is ~0 at idle, so any negative threshold
    # ships everything and eats the communication delay.  (The paper
    # reports -0.3 also losing at high load; in this reproduction the
    # high-load gap between -0.2 and -0.3 is within noise -- see
    # EXPERIMENTS.md.)
    low = (5.0, 10.0)
    assert _rt_sum_high(overshoot, rates=low) > \
        _rt_sum_high(neutral, rates=low)

    # The best dynamic scheme is at least competitive with the tuned
    # heuristic (paper: "a better than the tuned heuristic").
    assert _rt_sum_high(dynamic) < 1.1 * _rt_sum_high(tuned)
