"""Introduction claim: distributed vs centralized execution of class B.

The paper's introduction (citing [DIAS87]) frames the hybrid design:
"the performance of the distributed system is better than the
centralized system if the number of remote calls per transaction is
significantly less than one, but is much worse otherwise."  Section 3
notes class B could run locally with remote function calls but does not
analyse it; this reproduction implements that mode
(``class_b_mode="remote-call"``) and regenerates the comparison.

The bench sweeps class B data locality (hence expected remote calls per
transaction) and checks the crossover: with many remote calls the
distributed execution is far worse than shipping to the central complex;
as remote calls fall toward zero it becomes competitive and finally
better (it avoids the two communication delays of shipping).
"""

from dataclasses import replace

from conftest import BENCH_SCALE, run_once

from repro.core import STRATEGIES
from repro.db import TransactionClass
from repro.hybrid import HybridSystem, paper_config

TOTAL_RATE = 10.0
#: p_b_local values giving ~9, 5, 2, 1, 0.5 and 0 remote calls per txn.
LOCALITIES = [None, 0.5, 0.8, 0.9, 0.95, 1.0]


def _class_b_rt(class_b_mode, p_b_local):
    config = paper_config(total_rate=TOTAL_RATE,
                          warmup_time=30.0 * BENCH_SCALE,
                          measure_time=90.0 * BENCH_SCALE,
                          class_b_mode=class_b_mode)
    if p_b_local is not None:
        config = config.with_options(
            workload=replace(config.workload, p_b_local=p_b_local))
    result = HybridSystem(config, STRATEGIES["none"](config)).run()
    return (config.workload.expected_remote_calls,
            result.response_time_by_class[TransactionClass.B])


def test_distributed_vs_centralized_crossover(benchmark):
    def run():
        rows = []
        for locality in LOCALITIES:
            remote_calls, rt_distributed = _class_b_rt("remote-call",
                                                       locality)
            _, rt_central = _class_b_rt("central", locality)
            rows.append((locality, remote_calls, rt_distributed,
                         rt_central))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"  {'p_b_local':>10} {'remote/txn':>11} "
          f"{'distributed':>12} {'centralized':>12}")
    for locality, remote_calls, rt_dist, rt_cen in rows:
        print(f"  {str(locality):>10} {remote_calls:>11.2f} "
              f"{rt_dist:>11.3f}s {rt_cen:>11.3f}s")

    by_locality = {row[0]: row for row in rows}

    # Many remote calls (~9/txn): distributed "much worse" ([DIAS87]).
    _, _, rt_dist, rt_cen = by_locality[None]
    assert rt_dist > 2.0 * rt_cen

    # Remote calls << 1: distributed at least competitive, and better
    # at zero remote calls (no communication at all).
    _, _, rt_dist_zero, rt_cen_zero = by_locality[1.0]
    assert rt_dist_zero < rt_cen_zero

    # Monotone improvement as locality rises.
    distributed_rts = [row[2] for row in rows]
    assert distributed_rts == sorted(distributed_rts, reverse=True)
