"""Model-vs-simulator validation bench (the reproduction's own check).

The paper's methodology rests on the Section 3.1 analytic model being a
usable predictor of the simulated system.  This bench evaluates both on
a stable-load grid and asserts the model tracks the simulator within a
reasonable band -- loose enough for an asymptotic fixed-point model,
tight enough to make the static optimiser and the dynamic estimates
meaningful.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments import validate_model


def test_model_tracks_simulator(benchmark):
    report = run_once(benchmark, lambda: validate_model(
        warmup_time=25.0 * BENCH_SCALE + 5.0,
        measure_time=75.0 * BENCH_SCALE + 15.0))
    print()
    print(report.to_table())
    print(f"\n  mean |error| = {report.mean_abs_error:.1%}, "
          f"max |error| = {report.max_abs_error:.1%}")

    # Aggregate agreement across the stable grid.
    assert report.mean_abs_error < 0.20
    assert report.max_abs_error < 0.45

    # The model must rank loads correctly: response increases with rate
    # at fixed p_ship, for the model exactly as for the simulator.
    by_pship: dict[float, list] = {}
    for point in report.points:
        by_pship.setdefault(point.p_ship, []).append(point)
    for points in by_pship.values():
        points.sort(key=lambda p: p.total_rate)
        model_series = [p.model_response for p in points]
        assert model_series == sorted(model_series)
