"""Figure 4.6: shipped fraction vs rate at 0.5 s delay.

Paper expectations: the static shipped-fraction curve has a point of
inflection -- a *small* fraction at low rates (the large delay penalises
shipping), a rapid rise as the local sites overload, then saturation as
the central site fills up.
"""

from conftest import run_once

from repro.experiments import figure_4_3, figure_4_6, figure_report


def _fraction_at(curve, rate):
    return [p.shipped_fraction for p in curve.points
            if p.total_rate == rate][0]


def test_figure_4_6(benchmark, settings):
    figure = run_once(benchmark, lambda: figure_4_6(settings))
    print()
    print(figure_report(figure))
    assert figure.comm_delay == 0.5

    static = figure.curve("static")
    dynamic = figure.curve("best-dynamic")

    # Small fraction at low rates, substantial at high rates.
    assert _fraction_at(static, 5.0) < 0.15
    assert _fraction_at(static, 30.0) > 0.4

    # Rapid-rise segment: the largest jump between consecutive rates is
    # in the interior (the inflection), not at the first step.
    fractions = list(static.shipped_fractions)
    jumps = [b - a for a, b in zip(fractions, fractions[1:])]
    assert max(jumps) > 0.1

    # The larger delay makes static shipping start later than at 0.2 s.
    base = figure_4_3(settings.scaled(1.0))
    static_02 = base.curve("static")
    assert _fraction_at(static, 10.0) <= \
        _fraction_at(static_02, 10.0) + 0.05

    # The good dynamic is more conservative than static at moderate load.
    assert _fraction_at(dynamic, 15.0) <= _fraction_at(static, 15.0) + 0.1
