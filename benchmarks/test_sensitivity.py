"""Sensitivity sweeps over the parameters the conclusions call out.

The paper's conclusions: the right load-sharing behaviour depends on the
communications delay, the central/local MIPS, the class A fraction, and
the number of sites.  Each bench sweeps one of these and asserts the
direction of the dependency.
"""

from conftest import BENCH_SCALE, run_once

from repro.experiments.sensitivity import sweep_parameter

WARMUP = 20.0 * BENCH_SCALE + 5.0
MEASURE = 60.0 * BENCH_SCALE + 10.0


def test_sensitivity_central_mips(benchmark):
    """More central MIPS -> ship more, perform better."""
    sweep = run_once(benchmark, lambda: sweep_parameter(
        "central_mips", [8.0, 15.0, 30.0],
        warmup_time=WARMUP, measure_time=MEASURE))
    print()
    print(sweep.to_table())
    p_ships = sweep.optimal_p_ships()
    assert p_ships == tuple(sorted(p_ships)), \
        "optimal shipping should grow with central capacity"
    dynamic = sweep.series("min-average-population")
    assert dynamic[-1] < dynamic[0], \
        "a faster central site must improve the dynamic scheme"


def test_sensitivity_p_local(benchmark):
    """A larger class A fraction gives load sharing more headroom."""
    sweep = run_once(benchmark, lambda: sweep_parameter(
        "p_local", [0.6, 0.75, 0.9],
        warmup_time=WARMUP, measure_time=MEASURE))
    print()
    print(sweep.to_table())
    # With more class B (p_local = 0.6) the central site carries a
    # larger mandatory load, so the achievable response time is worse
    # than with p_local = 0.9 under the same total rate.
    dynamic = sweep.series("min-average-population")
    assert dynamic[0] >= dynamic[-1] * 0.9


def test_sensitivity_n_sites(benchmark):
    """Fewer, relatively-stronger regions change the sharing calculus."""
    sweep = run_once(benchmark, lambda: sweep_parameter(
        "n_sites", [5, 10, 20],
        warmup_time=WARMUP, measure_time=MEASURE))
    print()
    print(sweep.to_table())
    # At constant total rate and 1 MIPS per site, fewer sites mean more
    # load per site: no-load-sharing degrades sharply as sites shrink.
    none = sweep.series("none")
    assert none[0] > none[-1]
    # Load sharing keeps every configuration serviceable.
    dynamic = sweep.series("min-average-population")
    assert max(dynamic) < min(none[0], 10.0)


def test_sensitivity_comm_delay(benchmark):
    """The evaluation's own axis, swept more finely."""
    sweep = run_once(benchmark, lambda: sweep_parameter(
        "comm_delay", [0.1, 0.2, 0.5, 0.8],
        warmup_time=WARMUP, measure_time=MEASURE))
    print()
    print(sweep.to_table())
    # Larger delays penalise shipping: optimal static fraction falls.
    p_ships = sweep.optimal_p_ships()
    assert p_ships[0] >= p_ships[-1]
    # And the best achievable response time deteriorates.
    dynamic = sweep.series("min-average-population")
    assert dynamic == tuple(sorted(dynamic))