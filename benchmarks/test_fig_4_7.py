"""Figure 4.7: threshold tuning at 0.5 s delay.

Paper expectations: the optimal threshold moves from ~-0.2 (0.2 s delay)
to about +0.1: the larger delay penalises centrally run transactions
even though the central MIPS are larger, so the heuristic must demand a
real utilisation gap before shipping.  The gap between the best dynamic
strategy and the tuned heuristic is *more* significant than at 0.2 s.
"""

from conftest import run_once

from repro.experiments import figure_4_7, figure_report


def _rt_sum_high(curve, rates=(25.0, 30.0, 33.0)):
    return sum(p.mean_response_time for p in curve.points
               if p.total_rate in rates)


def test_figure_4_7(benchmark, settings):
    figure = run_once(benchmark, lambda: figure_4_7(settings))
    print()
    print(figure_report(figure))
    assert figure.comm_delay == 0.5

    neutral = figure.curve("threshold(+0.0)")
    positive_small = figure.curve("threshold(+0.1)")
    positive_large = figure.curve("threshold(+0.2)")
    negative = figure.curve("threshold(-0.2)")
    dynamic = figure.curve("best-dynamic")

    # With a 0.5 s delay the 0.2-delay optimum (-0.2) over-ships: every
    # non-negative threshold beats it over the stable operating range.
    # (At extreme load all policies converge -- everything must ship.)
    stable = (5.0, 10.0, 15.0, 20.0, 25.0)
    negative_rt = _rt_sum_high(negative, rates=stable)
    for curve in (neutral, positive_small, positive_large):
        assert _rt_sum_high(curve, rates=stable) < negative_rt

    # The best dynamic strategy beats the best fixed threshold, and by
    # more than in the 0.2 s case (the paper's closing observation).
    best_threshold = min(
        _rt_sum_high(curve, rates=stable)
        for curve in (neutral, positive_small, positive_large, negative))
    assert _rt_sum_high(dynamic, rates=stable) < best_threshold
