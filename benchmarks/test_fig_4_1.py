"""Figure 4.1: response time vs throughput -- none / static / best dynamic.

Paper expectations (0.2 s delay):

* without load sharing the local systems overload and the supportable
  rate is limited to about 20 tps;
* static load sharing is significantly better and supports about 30 tps;
* the best dynamic scheme is better still.
"""

from conftest import run_once

from repro.experiments import figure_4_1, figure_report


def test_figure_4_1(benchmark, settings):
    figure = run_once(benchmark, lambda: figure_4_1(settings))
    print()
    print(figure_report(figure))

    none = figure.curve("no-load-sharing")
    static = figure.curve("static")
    dynamic = figure.curve("best-dynamic")

    # Saturation ordering: no sharing caps out far below the sharers.
    assert none.max_supported_rate() < 25.0
    assert static.max_supported_rate() >= 28.0
    assert dynamic.max_supported_rate() >= 28.0
    assert none.max_supported_rate() < static.max_supported_rate()

    # At every common swept rate load sharing is no worse than none, and
    # clearly better once the local sites are loaded (>= 15 tps).
    for rate in (15.0, 20.0):
        rt_none = [p.mean_response_time for p in none.points
                   if p.total_rate == rate][0]
        rt_static = [p.mean_response_time for p in static.points
                     if p.total_rate == rate][0]
        assert rt_static < rt_none

    # The best dynamic scheme dominates static at high load.
    high = [p.mean_response_time for p in dynamic.points
            if p.total_rate >= 25.0]
    high_static = [p.mean_response_time for p in static.points
                   if p.total_rate >= 25.0]
    assert sum(high) < sum(high_static)
