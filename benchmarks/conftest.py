"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` scales the simulated horizon of every figure
benchmark (default 0.3 -> 9 s warm-up + 27 s measured per point, enough
for stable qualitative shapes).  Use 1.0 or higher to regenerate the
numbers recorded in EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments import RunSettings

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))


@pytest.fixture(scope="session")
def settings() -> RunSettings:
    return RunSettings(scale=BENCH_SCALE)


def run_once(benchmark, func):
    """Run an expensive figure exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
