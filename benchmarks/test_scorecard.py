"""The reproduction scorecard: every paper claim, machine-checked.

Regenerates all seven figures and evaluates the full claim inventory
(see ``repro.experiments.scorecard``).  Every *essential* claim must
pass; *detail* claims (close orderings the paper presents without error
bars) are reported but allowed to miss -- known deviations are listed in
EXPERIMENTS.md.
"""

from conftest import run_once

from repro.experiments.scorecard import run_scorecard


def test_reproduction_scorecard(benchmark, settings):
    card = run_once(benchmark, lambda: run_scorecard(settings))
    print()
    print(card.to_text())
    assert card.all_essential_pass
    # The detail tier should mostly hold too.
    assert card.passed_count >= len(card.results) - 2
