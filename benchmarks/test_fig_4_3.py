"""Figure 4.3: fraction of class A transactions shipped vs arrival rate.

Paper expectations (0.2 s delay):

* the static scheme ships (almost) nothing below ~5 tps, an increasing
  fraction up to ~25 tps, then a gradually decreasing fraction;
* the measured-response-time heuristic ships the largest fraction;
* the (good) dynamic schemes ship less than static except at very small
  rates.
"""

from conftest import run_once

from repro.experiments import figure_4_3, figure_report


def _fraction_at(curve, rate):
    return [p.shipped_fraction for p in curve.points
            if p.total_rate == rate][0]


def test_figure_4_3(benchmark, settings):
    figure = run_once(benchmark, lambda: figure_4_3(settings))
    print()
    print(figure_report(figure))

    static = figure.curve("static")
    measured = figure.curve("A:measured-response")
    dynamic = figure.curve("best-dynamic")

    # Static ships ~nothing at 5 tps and substantially at 25 tps.
    assert _fraction_at(static, 5.0) < 0.1
    assert _fraction_at(static, 25.0) > 0.5

    # Rising-then-falling: the peak static fraction is interior.
    fractions = list(static.shipped_fractions)
    peak_index = fractions.index(max(fractions))
    assert 0 < peak_index, "static fraction should rise from ~0"
    assert fractions[-1] <= max(fractions) + 1e-9

    # The measured-RT heuristic over-ships relative to the best dynamic.
    for rate in (15.0, 25.0):
        assert _fraction_at(measured, rate) > _fraction_at(dynamic, rate)

    # The good dynamic ships less than static at moderate-to-high load.
    mid_rates = (15.0, 20.0, 25.0)
    dynamic_total = sum(_fraction_at(dynamic, r) for r in mid_rates)
    static_total = sum(_fraction_at(static, r) for r in mid_rates)
    assert dynamic_total < static_total
