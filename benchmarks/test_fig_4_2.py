"""Figure 4.2: the six dynamic schemes A-F against the static optimum.

Paper expectations (0.2 s delay):

* A (measured response time) supports more than no sharing but is the
  worst of the dynamic schemes;
* B (queue length) lands close to the static optimum;
* C/D (min incoming RT) are at least as good as static at high load;
* E/F (min average RT) are the best schemes.
"""

from conftest import run_once

from repro.experiments import figure_4_2, figure_report


def _rt_at(curve, rate):
    return [p.mean_response_time for p in curve.points
            if p.total_rate == rate][0]


def test_figure_4_2(benchmark, settings):
    figure = run_once(benchmark, lambda: figure_4_2(settings))
    print()
    print(figure_report(figure))

    measured = figure.curve("A:measured-response")
    queue = figure.curve("B:queue-length")
    min_in_q = figure.curve("C:min-incoming(q)")
    min_in_n = figure.curve("D:min-incoming(n)")
    min_avg_q = figure.curve("E:min-average(q)")
    min_avg_n = figure.curve("F:min-average(n)")
    static = figure.curve("static")

    top = 33.0
    # A is the weakest dynamic scheme at high load.
    others_at_top = [_rt_at(curve, top) for curve in
                     (queue, min_in_q, min_in_n, min_avg_q, min_avg_n)]
    assert _rt_at(measured, top) > max(others_at_top)

    # B tracks static within a modest band at high load.
    assert _rt_at(queue, top) < 1.5 * _rt_at(static, top)

    # The analytic schemes beat static at the top rate.
    assert _rt_at(min_in_q, top) < _rt_at(static, top)
    assert _rt_at(min_avg_q, top) < _rt_at(static, top)
    assert _rt_at(min_avg_n, top) < _rt_at(static, top)

    # The best analytic scheme also beats the queue-length heuristic.
    best = min(_rt_at(curve, top) for curve in
               (min_in_q, min_in_n, min_avg_q, min_avg_n))
    assert best < _rt_at(queue, top)
