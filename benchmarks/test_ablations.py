"""Ablation benchmarks for the design choices called out in DESIGN.md.

Each ablation flips one modelling/protocol choice and reports its effect
at a loaded operating point (25 tps, 0.2 s delay):

* **state staleness** -- dynamic routing with instantaneous central state
  vs the paper's delayed (authentication-piggybacked) state;
* **rerun lock retention** -- Section 3.1 models aborted transactions as
  keeping their surviving locks across the re-run; the ablation releases
  everything on abort;
* **update batching** -- the protocol permits batching asynchronous
  update messages; batching trades message count against staleness.
"""

from conftest import BENCH_SCALE, run_once

from repro.core import STRATEGIES
from repro.hybrid import HybridSystem, paper_config

RATE = 25.0


def _point(strategy_name, **overrides):
    config = paper_config(
        total_rate=RATE,
        warmup_time=30.0 * BENCH_SCALE,
        measure_time=90.0 * BENCH_SCALE,
        **overrides)
    factory = STRATEGIES[strategy_name](config)
    return HybridSystem(config, factory).run()


def test_ablation_state_staleness(benchmark):
    """Delayed vs instantaneous central state for the best dynamic."""

    def run():
        delayed = _point("min-average-population")
        instant = _point("min-average-population",
                         instant_central_state=True)
        fresher = _point("min-average-population",
                         snapshot_on_update_acks=True)
        return delayed, instant, fresher

    delayed, instant, fresher = run_once(benchmark, run)
    print(f"\n  delayed-state RT:  {delayed.mean_response_time:.3f}s "
          f"(ship {delayed.shipped_fraction:.2f})")
    print(f"  ack-refreshed RT:  {fresher.mean_response_time:.3f}s "
          f"(ship {fresher.shipped_fraction:.2f})")
    print(f"  instant-state RT:  {instant.mean_response_time:.3f}s "
          f"(ship {instant.shipped_fraction:.2f})")
    # Fresher information should not make routing substantially worse.
    assert instant.mean_response_time < delayed.mean_response_time * 1.15
    # All variants keep the system stable at this operating point.
    for result in (delayed, instant, fresher):
        assert result.throughput > RATE * 0.9


def test_ablation_rerun_lock_retention(benchmark):
    """Keep locks across re-runs (paper) vs release-all on abort."""

    def run():
        keep = _point("none")
        release = _point("none", keep_locks_on_abort=False)
        return keep, release

    keep, release = run_once(benchmark, run)
    print(f"\n  keep-locks RT:    {keep.mean_response_time:.3f}s "
          f"(aborts/txn {keep.abort_rate:.3f})")
    print(f"  release-all RT:   {release.mean_response_time:.3f}s "
          f"(aborts/txn {release.abort_rate:.3f})")
    # Both remain stable; the choice is second-order at this load.
    assert keep.throughput > RATE * 0.6   # 'none' saturates near 20 tps
    assert release.throughput > RATE * 0.6


def test_ablation_update_batching(benchmark):
    """Batched asynchronous updates trade messages for staleness."""

    def run():
        unbatched = _point("none")
        batched = _point("none", update_batching=4)
        return unbatched, batched

    unbatched, batched = run_once(benchmark, run)
    print(f"\n  batch=1 messages-to-central: "
          f"{unbatched.messages_to_central}")
    print(f"  batch=4 messages-to-central: {batched.messages_to_central}")
    assert batched.messages_to_central < unbatched.messages_to_central
    # Response time must not collapse from batching.
    assert batched.mean_response_time < \
        unbatched.mean_response_time * 1.5


def test_ablation_adaptive_threshold(benchmark):
    """Self-tuning threshold (extension) vs fixed thresholds, both delays.

    The paper's conclusion: the optimal threshold depends on the system
    parameters.  The adaptive router should land near the tuned optimum
    at each delay *without retuning* -- negative-ish at 0.2 s, higher at
    0.5 s.
    """
    from repro.core.heuristics import threshold_router_factory
    from repro.hybrid import HybridSystem

    def run():
        results = {}
        for delay in (0.2, 0.5):
            config = paper_config(
                total_rate=28.0, comm_delay=delay,
                warmup_time=30.0 * BENCH_SCALE,
                measure_time=90.0 * BENCH_SCALE)
            adaptive = HybridSystem(
                config, STRATEGIES["adaptive-threshold"](config)).run()
            fixed = {}
            for threshold in (-0.2, 0.0, 0.1):
                fixed[threshold] = HybridSystem(
                    config, threshold_router_factory(threshold)).run()
            results[delay] = (adaptive, fixed)
        return results

    results = run_once(benchmark, run)
    print()
    for delay, (adaptive, fixed) in sorted(results.items()):
        best_fixed = min(result.mean_response_time
                         for result in fixed.values())
        print(f"  delay {delay}s: adaptive "
              f"{adaptive.mean_response_time:.3f}s vs best fixed "
              f"{best_fixed:.3f}s")
        # Within 25% of the best fixed threshold, with zero tuning.
        assert adaptive.mean_response_time < best_fixed * 1.25


def test_ablation_update_mix(benchmark):
    """Share/exclusive reference mix: fewer updates, fewer aborts.

    The paper's workload is update-intensive (every collision can
    abort); lowering p_update converts cross-site conflicts into
    shareable accesses and shrinks both the abort rate and the
    propagation traffic.
    """
    from dataclasses import replace

    from repro.hybrid import HybridSystem

    def run():
        results = {}
        for p_update in (1.0, 0.5):
            config = paper_config(
                total_rate=RATE,
                warmup_time=30.0 * BENCH_SCALE,
                measure_time=90.0 * BENCH_SCALE)
            config = config.with_options(
                workload=replace(config.workload, p_update=p_update))
            factory = STRATEGIES["min-average-population"](config)
            results[p_update] = HybridSystem(config, factory).run()
        return results

    results = run_once(benchmark, run)
    print()
    for p_update, result in sorted(results.items(), reverse=True):
        print(f"  p_update={p_update}: RT="
              f"{result.mean_response_time:.3f}s aborts/txn="
              f"{result.abort_rate:.4f} msgs-to-central="
              f"{result.messages_to_central}")
    # Halving the update fraction roughly halves the cross-site
    # conflict surface (message *count* is unchanged -- one propagation
    # per committing transaction -- only its contents shrink).
    assert results[0.5].abort_rate < results[1.0].abort_rate


def test_ablation_local_fraction(benchmark):
    """Sensitivity to the class A fraction (p_local)."""

    def run():
        results = {}
        for p_local in (0.6, 0.75, 0.9):
            config = paper_config(
                total_rate=RATE,
                warmup_time=30.0 * BENCH_SCALE,
                measure_time=90.0 * BENCH_SCALE)
            config = config.with_options(
                workload=config.workload.__class__(
                    n_sites=config.workload.n_sites,
                    lockspace=config.workload.lockspace,
                    locks_per_txn=config.workload.locks_per_txn,
                    p_local=p_local,
                    p_update=config.workload.p_update,
                    arrival_rate_per_site=(
                        config.workload.arrival_rate_per_site)))
            factory = STRATEGIES["min-average-population"](config)
            results[p_local] = HybridSystem(config, factory).run()
        return results

    results = run_once(benchmark, run)
    print()
    for p_local, result in sorted(results.items()):
        print(f"  p_local={p_local}: RT={result.mean_response_time:.3f}s "
              f"ship={result.shipped_fraction:.2f} "
              f"u_c={result.mean_central_utilization:.2f}")
    # More class B work (lower p_local) pushes more load to the central
    # site.
    assert results[0.6].mean_central_utilization > \
        results[0.9].mean_central_utilization
