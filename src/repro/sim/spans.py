"""Per-entity lifecycle spans: a phase-attributed timeline.

A :class:`SpanRecorder` decomposes the lifetime of a simulated entity
(here: one transaction) into named, non-overlapping *phases*.  At any
instant the entity is in exactly one phase; :meth:`SpanRecorder.enter`
atomically closes the current phase and opens the next, so the phase
totals always sum to the elapsed lifetime exactly -- the invariant the
response-time decomposition in :mod:`repro.hybrid.metrics` relies on.

The recorder is deliberately tiny: a dictionary of accumulated seconds
per phase plus the currently open phase.  It allocates no per-interval
objects, so attaching one to every transaction costs a few hundred bytes
and two float operations per phase transition.

Phase vocabulary (see ``docs/OBSERVABILITY.md``):

* ``comm``        -- in transit on a site<->central link (shipping, the
  response message, remote-call round trips) or queued in a mailbox.
* ``cpu-wait``    -- queued for a site CPU.
* ``cpu-service`` -- holding a site CPU.
* ``io``          -- in a synchronous I/O (CPU released).
* ``lock-wait``   -- blocked on a lock grant.
* ``auth``        -- a central/shipped transaction's authentication
  round trip (master-site checking plus both message legs).
* ``other``       -- any residue not claimed by the above (abort/rerun
  handling instants, dispatch bookkeeping).  Kept explicit so the
  decomposition is exhaustive rather than silently lossy.
"""

from __future__ import annotations

__all__ = [
    "PHASE_COMM",
    "PHASE_CPU_WAIT",
    "PHASE_CPU_SERVICE",
    "PHASE_IO",
    "PHASE_LOCK_WAIT",
    "PHASE_AUTH",
    "PHASE_OTHER",
    "PHASES",
    "SpanRecorder",
]

PHASE_COMM = "comm"
PHASE_CPU_WAIT = "cpu-wait"
PHASE_CPU_SERVICE = "cpu-service"
PHASE_IO = "io"
PHASE_LOCK_WAIT = "lock-wait"
PHASE_AUTH = "auth"
PHASE_OTHER = "other"

#: Every phase a :class:`SpanRecorder` may report, in reporting order.
PHASES = (
    PHASE_COMM,
    PHASE_CPU_WAIT,
    PHASE_CPU_SERVICE,
    PHASE_IO,
    PHASE_LOCK_WAIT,
    PHASE_AUTH,
    PHASE_OTHER,
)


class SpanRecorder:
    """Accumulates time per named phase over one entity's lifetime.

    The recorder anchors itself at the first :meth:`enter` call; from
    then on every instant is attributed to exactly one phase until
    :meth:`close`.  Re-entering a phase accumulates into the same total
    (reruns of an aborted transaction simply add to the existing
    buckets).
    """

    __slots__ = ("totals", "transitions", "started_at", "closed_at",
                 "_phase", "_since")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.transitions = 0
        self.started_at: float | None = None
        self.closed_at: float | None = None
        self._phase: str | None = None
        self._since = 0.0

    # -- recording -----------------------------------------------------------

    def enter(self, phase: str, now: float) -> None:
        """Close the open phase (if any) and open ``phase`` at ``now``."""
        if self.started_at is None:
            self.started_at = now
        else:
            self._accumulate(now)
        self._phase = phase
        self._since = now
        self.transitions += 1

    def exit(self, now: float, fallback: str = PHASE_OTHER) -> None:
        """Close the open phase, attributing subsequent time to
        ``fallback`` (the catch-all ``other`` phase by default)."""
        self.enter(fallback, now)

    def close(self, now: float) -> None:
        """Stop recording; the timeline is complete at ``now``."""
        if self.started_at is None:
            self.started_at = now
        self._accumulate(now)
        self._phase = None
        self.closed_at = now

    def _accumulate(self, now: float) -> None:
        if self._phase is not None:
            elapsed = now - self._since
            if elapsed > 0.0:
                self.totals[self._phase] = \
                    self.totals.get(self._phase, 0.0) + elapsed

    # -- inspection ----------------------------------------------------------

    @property
    def current_phase(self) -> str | None:
        """The open phase (``None`` before the first enter / after close)."""
        return self._phase

    @property
    def total(self) -> float:
        """Sum of all phase totals (== lifetime once closed)."""
        return sum(self.totals.values())

    def get(self, phase: str) -> float:
        """Accumulated seconds in ``phase`` (0.0 if never entered)."""
        return self.totals.get(phase, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Totals for every phase in :data:`PHASES` (zeros included)."""
        return {phase: self.totals.get(phase, 0.0) for phase in PHASES}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = " ".join(f"{phase}={seconds:.4f}"
                         for phase, seconds in sorted(self.totals.items()))
        state = "open" if self.closed_at is None else "closed"
        return f"<SpanRecorder {state} {parts}>"
