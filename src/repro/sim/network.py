"""Communication links: constant or degraded delay, loss, reliability.

The paper models the long-haul network between each local site and the
central complex as a fixed communications delay (0.2 s in the base case,
0.5 s in the sensitivity study) and *requires* that asynchronous update
messages from a given site are processed at the central site in the order
they were originated (Section 2).  :class:`Link` provides exactly that:
constant latency and FIFO delivery per link.

Messages are arbitrary Python objects; delivery deposits them into the
destination's :class:`~repro.sim.resources.Store` mailbox, or invokes a
callback for request/response patterns.

Two extensions support the fault-injection subsystem
(:mod:`repro.sim.faults`):

* a link can be *degraded* (:meth:`Link.set_fault`): messages are dropped
  with a given probability at send time and delivery delays gain a
  multiplicative factor plus uniform jitter.  Jittered delays can overtake
  one another, so delivery runs through a sequence-numbered re-order
  buffer that restores per-link FIFO order (sequence numbers are assigned
  only to messages that survive the drop decision, so the buffer never
  waits for a message that will not arrive);
* :class:`ReliableEndpoint` layers a TCP-like reliability protocol over a
  lossy link pair: per-message sequence numbers, cumulative
  acknowledgements, timeout-based retransmission with exponential backoff,
  and receiver-side deduplication plus hold-back reassembly -- giving
  exactly-once, in-order delivery of application messages no matter how
  lossy the underlying links are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .engine import Environment
from .resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

__all__ = ["Link", "Message", "DuplexChannel", "ReliableEndpoint",
           "ACK_KIND"]

#: Message kind used by :class:`ReliableEndpoint` acknowledgement frames.
ACK_KIND = "chan-ack"


@dataclass
class Message:
    """An envelope carried over a :class:`Link`.

    ``kind`` is a short tag used by the receiver's dispatch loop,
    ``payload`` carries protocol-specific content, ``sent_at`` is stamped
    by the link for latency accounting.  ``rel_seq`` is the reliability
    sequence number stamped by a :class:`ReliableEndpoint` (``None`` for
    messages sent outside a reliable channel).
    """

    kind: str
    payload: Any = None
    source: Any = None
    sent_at: float = field(default=0.0)
    sequence: int = field(default=0)
    rel_seq: int | None = field(default=None)
    #: Channel incarnation the frame belongs to.  A crashed node loses
    #: its channel state; on rejoin both ends :meth:`ReliableEndpoint.reset`
    #: to a new incarnation and frames (including acks) from the old one
    #: are discarded rather than confused with the fresh sequence space.
    rel_inc: int = field(default=0)


class Link:
    """One-way link with propagation delay and FIFO delivery.

    With a constant delay FIFO ordering is automatic (the event calendar
    is stable).  Under fault injection delays are randomised and messages
    may be dropped; sequence numbers plus a re-order buffer guarantee
    that whatever *is* delivered still arrives in send order, preserving
    the protocol's per-link ordering requirement.
    """

    def __init__(self, env: Environment, delay: float,
                 name: str = "link") -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.delay = float(delay)
        self.name = name
        self.mailbox = Store(env)
        self._next_seq = 0
        self._last_delivered = -1
        #: Out-of-order arrivals parked until their predecessors arrive:
        #: sequence -> (message, on_delivery).
        self._reorder: dict[int, tuple[Message, Callable | None]] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_reordered = 0
        # Degradation state (set by the fault injector).
        self._drop_probability = 0.0
        self._jitter = 0.0
        self._delay_factor = 1.0
        self._rng: "random.Random | None" = None
        #: Optional observer invoked with each dropped message.
        self.on_drop: Callable[[Message], None] | None = None

    # -- degradation ---------------------------------------------------------

    def set_fault(self, drop_probability: float = 0.0, jitter: float = 0.0,
                  delay_factor: float = 1.0,
                  rng: "random.Random | None" = None) -> None:
        """Degrade the link (probabilistic loss, jittered/scaled delay).

        ``rng`` supplies the randomness for drop decisions and jitter;
        it must be provided whenever ``drop_probability`` or ``jitter``
        is non-zero so runs stay deterministic under a fixed seed.
        """
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], "
                f"got {drop_probability}")
        if jitter < 0 or delay_factor <= 0:
            raise ValueError(
                f"invalid degradation (jitter {jitter}, "
                f"delay_factor {delay_factor})")
        if rng is None and (0.0 < drop_probability < 1.0 or jitter > 0):
            raise ValueError("randomised degradation requires an rng")
        self._drop_probability = drop_probability
        self._jitter = jitter
        self._delay_factor = delay_factor
        self._rng = rng

    def clear_fault(self) -> None:
        """Restore the healthy constant-delay, loss-free behaviour."""
        self._drop_probability = 0.0
        self._jitter = 0.0
        self._delay_factor = 1.0
        self._rng = None

    @property
    def degraded(self) -> bool:
        return (self._drop_probability > 0.0 or self._jitter > 0.0 or
                self._delay_factor != 1.0)

    # -- transmission --------------------------------------------------------

    def send(self, message: Message,
             on_delivery: Callable[[Message], None] | None = None) -> None:
        """Transmit ``message``; it arrives ``delay`` time units later.

        By default the message lands in :attr:`mailbox`; passing
        ``on_delivery`` routes it to a callback instead (used for
        responses that complete a pending event).
        """
        message.sent_at = self.env.now
        self.messages_sent += 1
        delay = self.delay
        if self.degraded:
            # Drop decision *before* a sequence number is consumed, so
            # the delivered sequence remains gap-free and the re-order
            # buffer never stalls waiting for a lost message.
            if self._drop_probability >= 1.0 or (
                    self._drop_probability > 0.0 and
                    self._rng.random() < self._drop_probability):
                self.messages_dropped += 1
                if self.on_drop is not None:
                    self.on_drop(message)
                return
            delay = delay * self._delay_factor
            if self._jitter > 0.0:
                delay += self._rng.uniform(0.0, self._jitter)
        message.sequence = self._next_seq
        self._next_seq += 1
        self.env.process(self._deliver(message, on_delivery, delay),
                         name=f"{self.name}:deliver")

    def _deliver(self, message: Message,
                 on_delivery: Callable[[Message], None] | None,
                 delay: float):
        yield self.env.timeout(delay)
        self._arrive(message, on_delivery)

    def _arrive(self, message: Message,
                on_delivery: Callable[[Message], None] | None) -> None:
        expected = self._last_delivered + 1
        if message.sequence > expected:
            # Overtaken by jitter: park until the predecessors arrive.
            self.messages_reordered += 1
            self._reorder[message.sequence] = (message, on_delivery)
            return
        if message.sequence < expected:  # pragma: no cover - invariant
            raise RuntimeError(
                f"{self.name}: duplicate delivery of {message}")
        self._hand_over(message, on_delivery)
        # Flush any parked successors that are now in order.
        while self._last_delivered + 1 in self._reorder:
            parked, callback = self._reorder.pop(self._last_delivered + 1)
            self._hand_over(parked, callback)

    def _hand_over(self, message: Message,
                   on_delivery: Callable[[Message], None] | None) -> None:
        self._last_delivered = message.sequence
        self.messages_delivered += 1
        if on_delivery is not None:
            on_delivery(message)
        else:
            self.mailbox.put(message)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered (dropped ones excluded)."""
        return (self.messages_sent - self.messages_delivered -
                self.messages_dropped)


class DuplexChannel:
    """A pair of opposite-direction links between two endpoints."""

    def __init__(self, env: Environment, delay: float,
                 name: str = "channel") -> None:
        self.forward = Link(env, delay, name=f"{name}:fwd")
        self.backward = Link(env, delay, name=f"{name}:bwd")

    @property
    def delay(self) -> float:
        return self.forward.delay

    def round_trip(self) -> float:
        """Nominal round-trip time."""
        return self.forward.delay + self.backward.delay


class ReliableEndpoint:
    """One end of a reliable, in-order message channel over lossy links.

    Both ends of a site<->central link pair own a ``ReliableEndpoint``
    whose ``out_link`` is their sending link.  Application messages get a
    per-channel sequence number (``rel_seq``) and are retransmitted on a
    timeout with exponential backoff (capped, *unbounded* retries: the
    protocol's commit/release orders must eventually arrive or master
    locks would leak forever -- bounded give-up belongs at the
    transaction level, not the transport level).  The receiver
    deduplicates, reassembles in order through a hold-back buffer, and
    answers every incoming frame with a cumulative acknowledgement.

    The owner's dispatch loop feeds every raw frame from its inbound
    mailbox to :meth:`pump`, which returns the application messages that
    became deliverable (in order, exactly once).
    """

    def __init__(self, env: Environment, out_link: Link, name: str,
                 timeout: float, backoff: float = 2.0,
                 max_timeout: float = 8.0,
                 on_retransmit: Callable[[Message], None] | None = None,
                 on_duplicate: Callable[[Message], None] | None = None):
        if timeout <= 0 or backoff < 1.0 or max_timeout < timeout:
            raise ValueError(
                f"invalid retransmission policy (timeout {timeout}, "
                f"backoff {backoff}, max {max_timeout})")
        self.env = env
        self.out_link = out_link
        self.name = name
        self.timeout = float(timeout)
        self.backoff = float(backoff)
        self.max_timeout = float(max_timeout)
        self.on_retransmit = on_retransmit
        self.on_duplicate = on_duplicate
        self._next_seq = 0
        #: Unacknowledged sends: rel_seq -> (kind, payload, source).
        self._unacked: dict[int, tuple[str, Any, Any]] = {}
        self._recv_delivered = -1
        self._holdback: dict[int, Message] = {}
        self.incarnation = 0
        self.retransmits = 0
        self.duplicates_discarded = 0
        self.acks_sent = 0
        self.stale_frames = 0

    # -- sending -------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Transmit an application message reliably."""
        seq = self._next_seq
        self._next_seq += 1
        message.rel_seq = seq
        message.rel_inc = self.incarnation
        self._unacked[seq] = (message.kind, message.payload, message.source)
        self.out_link.send(message)
        self.env.process(self._watch(seq, self.incarnation),
                         name=f"{self.name}:retransmit-{seq}")

    def _watch(self, seq: int, incarnation: int):
        """Retransmission timer for one message (exponential backoff)."""
        delay = self.timeout
        while True:
            yield self.env.timeout(delay)
            if incarnation != self.incarnation:
                return
            entry = self._unacked.get(seq)
            if entry is None:
                return
            kind, payload, source = entry
            # A fresh Message each resend: the link stamps per-transmission
            # state (sequence, sent_at) on the envelope, so reusing the
            # original object would alias in-flight deliveries.
            resend = Message(kind=kind, payload=payload, source=source,
                             rel_seq=seq, rel_inc=incarnation)
            self.retransmits += 1
            if self.on_retransmit is not None:
                self.on_retransmit(resend)
            self.out_link.send(resend)
            delay = min(delay * self.backoff, self.max_timeout)

    @property
    def unacked(self) -> int:
        """Application messages sent but not yet acknowledged."""
        return len(self._unacked)

    def abandon(self) -> None:
        """Give up on every unacknowledged send (peer is gone for good).

        Used at failover: once a site re-points at the standby it will
        never talk to the dead primary again, so retransmitting to it
        forever is pure noise.  Retransmission timers see the empty
        table and exit at their next firing.
        """
        self._unacked.clear()

    def reset(self, incarnation: int) -> None:
        """Restart the channel in a new incarnation (crash recovery).

        Drops all send *and* receive state: unacked messages of the old
        incarnation are gone (application-level recovery decides what to
        resend), the sequence spaces restart at zero, and frames still
        in flight from the old incarnation -- including its acks, whose
        cumulative sequence numbers would otherwise retire fresh sends
        -- are discarded by :meth:`pump`.  Both ends of a channel must
        be reset to the same incarnation together.
        """
        self.incarnation = incarnation
        self._unacked.clear()
        self._holdback.clear()
        self._next_seq = 0
        self._recv_delivered = -1

    # -- receiving -----------------------------------------------------------

    def pump(self, message: Message) -> list[Message]:
        """Process one raw inbound frame; return deliverable app messages.

        Acknowledgement frames retire unacked sends and yield nothing.
        Application frames are deduplicated and reassembled in ``rel_seq``
        order; every one (fresh or duplicate) triggers a cumulative ack
        so the peer's retransmission timers converge.
        """
        if message.kind == ACK_KIND:
            if message.rel_inc != self.incarnation:
                self.stale_frames += 1
                return []
            acked_through = message.payload
            for seq in [s for s in self._unacked if s <= acked_through]:
                del self._unacked[seq]
            return []
        seq = message.rel_seq
        if seq is None:
            # Not channel-framed (sent before reliability was enabled,
            # or deliberately unreliable, e.g. heartbeats); pass through
            # untouched.
            return [message]
        if message.rel_inc != self.incarnation:
            # A frame from a previous channel incarnation (pre-crash);
            # its sequence numbers mean nothing now.  Drop without ack:
            # the old incarnation's timers are already abandoned.
            self.stale_frames += 1
            return []
        deliverable: list[Message] = []
        if seq <= self._recv_delivered or seq in self._holdback:
            self.duplicates_discarded += 1
            if self.on_duplicate is not None:
                self.on_duplicate(message)
        else:
            self._holdback[seq] = message
            while self._recv_delivered + 1 in self._holdback:
                self._recv_delivered += 1
                deliverable.append(
                    self._holdback.pop(self._recv_delivered))
        self._send_ack()
        return deliverable

    def _send_ack(self) -> None:
        self.acks_sent += 1
        self.out_link.send(Message(kind=ACK_KIND,
                                   payload=self._recv_delivered,
                                   rel_inc=self.incarnation))
