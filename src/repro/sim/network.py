"""Constant-delay, order-preserving communication links.

The paper models the long-haul network between each local site and the
central complex as a fixed communications delay (0.2 s in the base case,
0.5 s in the sensitivity study) and *requires* that asynchronous update
messages from a given site are processed at the central site in the order
they were originated (Section 2).  :class:`Link` provides exactly that:
constant latency and FIFO delivery per link.

Messages are arbitrary Python objects; delivery deposits them into the
destination's :class:`~repro.sim.resources.Store` mailbox, or invokes a
callback for request/response patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .engine import Environment
from .resources import Store

__all__ = ["Link", "Message", "DuplexChannel"]


@dataclass
class Message:
    """An envelope carried over a :class:`Link`.

    ``kind`` is a short tag used by the receiver's dispatch loop,
    ``payload`` carries protocol-specific content, ``sent_at`` is stamped
    by the link for latency accounting.
    """

    kind: str
    payload: Any = None
    source: Any = None
    sent_at: float = field(default=0.0)
    sequence: int = field(default=0)


class Link:
    """One-way link with constant propagation delay and FIFO ordering.

    With a constant delay FIFO ordering is automatic (the event calendar
    is stable), but the class still tracks sequence numbers and asserts
    in-order delivery so that experiments with randomised delays (an
    extension hook) cannot silently violate the protocol's ordering
    requirement.
    """

    def __init__(self, env: Environment, delay: float,
                 name: str = "link") -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.delay = float(delay)
        self.name = name
        self.mailbox = Store(env)
        self._next_seq = 0
        self._last_delivered = -1
        self.messages_sent = 0
        self.messages_delivered = 0

    def send(self, message: Message,
             on_delivery: Callable[[Message], None] | None = None) -> None:
        """Transmit ``message``; it arrives ``delay`` time units later.

        By default the message lands in :attr:`mailbox`; passing
        ``on_delivery`` routes it to a callback instead (used for
        responses that complete a pending event).
        """
        message.sent_at = self.env.now
        message.sequence = self._next_seq
        self._next_seq += 1
        self.messages_sent += 1
        self.env.process(self._deliver(message, on_delivery),
                         name=f"{self.name}:deliver")

    def _deliver(self, message: Message,
                 on_delivery: Callable[[Message], None] | None):
        yield self.env.timeout(self.delay)
        if message.sequence <= self._last_delivered:
            raise AssertionError(
                f"{self.name}: out-of-order delivery of {message}")
        self._last_delivered = message.sequence
        self.messages_delivered += 1
        if on_delivery is not None:
            on_delivery(message)
        else:
            self.mailbox.put(message)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered."""
        return self.messages_sent - self.messages_delivered


class DuplexChannel:
    """A pair of opposite-direction links between two endpoints."""

    def __init__(self, env: Environment, delay: float,
                 name: str = "channel") -> None:
        self.forward = Link(env, delay, name=f"{name}:fwd")
        self.backward = Link(env, delay, name=f"{name}:bwd")

    @property
    def delay(self) -> float:
        return self.forward.delay

    def round_trip(self) -> float:
        """Nominal round-trip time."""
        return self.forward.delay + self.backward.delay
