"""Discrete-event simulation substrate (engine, resources, RNG, stats).

This package is self-contained and domain-agnostic: the hybrid database
model in :mod:`repro.hybrid` is built entirely on these primitives.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .network import DuplexChannel, Link, Message
from .resources import PriorityResource, Request, Resource, Store
from .spans import PHASES, SpanRecorder
from .rng import ExponentialSampler, RandomStreams, UniformIntSampler, \
    crn_seed
from .stats import (
    BatchMeans,
    ControlVariateEstimate,
    IntervalEstimate,
    PairedDifference,
    ReplicationSummary,
    RunningStat,
    TimeWeightedStat,
    paired_difference,
)
from .trace import NullTracer, TraceRecord, Tracer, make_tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopSimulation",
    "Timeout",
    "DuplexChannel",
    "Link",
    "Message",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
    "ExponentialSampler",
    "RandomStreams",
    "UniformIntSampler",
    "crn_seed",
    "BatchMeans",
    "ControlVariateEstimate",
    "IntervalEstimate",
    "PairedDifference",
    "paired_difference",
    "ReplicationSummary",
    "RunningStat",
    "TimeWeightedStat",
    "NullTracer",
    "TraceRecord",
    "Tracer",
    "make_tracer",
    "PHASES",
    "SpanRecorder",
]
