"""Streaming quantile estimation (the P-squared algorithm).

Simulation runs produce hundreds of thousands of response-time
observations; storing them all to compute tail percentiles is wasteful.
The P^2 algorithm (Jain & Chlamtac, CACM 1985 -- conveniently, a
contemporary of the reproduced paper) maintains a five-marker parabolic
approximation of a single quantile in O(1) memory with O(1) update cost.

:class:`P2Quantile` tracks one quantile; :class:`QuantileSet` bundles the
usual reporting set (p50/p90/p95/p99) plus exact min/max.
"""

from __future__ import annotations

import math

__all__ = ["P2Quantile", "QuantileSet"]


class P2Quantile:
    """P^2 estimator of a single quantile ``p`` (0 < p < 1)."""

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._initial: list[float] = []
        # Marker heights (q), positions (n) and desired positions (np).
        self._q: list[float] = []
        self._n: list[float] = []
        self._np: list[float] = []
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        """Feed one observation."""
        if math.isnan(value):
            raise ValueError("NaN observation")
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._q = list(self._initial)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1.0 + 2.0 * self.p, 1.0 + 4.0 * self.p,
                            3.0 + 2.0 * self.p, 5.0]
            return
        # Locate the cell containing the observation; update extremes.
        if value < self._q[0]:
            self._q[0] = value
            cell = 0
        elif value >= self._q[4]:
            self._q[4] = value
            cell = 3
        else:
            cell = 0
            while value >= self._q[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            self._n[index] += 1.0
        for index in range(5):
            self._np[index] += self._dn[index]
        # Adjust interior markers toward their desired positions.
        for index in (1, 2, 3):
            delta = self._np[index] - self._n[index]
            if (delta >= 1.0 and self._n[index + 1] - self._n[index] > 1.0) \
                    or (delta <= -1.0 and
                        self._n[index - 1] - self._n[index] < -1.0):
                direction = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(index, direction)
                if self._q[index - 1] < candidate < self._q[index + 1]:
                    self._q[index] = candidate
                else:
                    self._q[index] = self._linear(index, direction)
                self._n[index] += direction

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) /
            (n[i + 1] - n[i]) +
            (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) /
            (n[i] - n[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        j = i + int(d)
        return self._q[i] + d * (self._q[j] - self._q[i]) / \
            (self._n[j] - self._n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN until observations arrive)."""
        if not self._initial:
            return math.nan
        if len(self._initial) < 5:
            ordered = sorted(self._initial)
            index = min(int(self.p * len(ordered)), len(ordered) - 1)
            return ordered[index]
        return self._q[2]


class QuantileSet:
    """Standard reporting quantiles plus exact extremes."""

    DEFAULT = (0.50, 0.90, 0.95, 0.99)

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT):
        self._estimators = {p: P2Quantile(p) for p in quantiles}
        self.minimum = math.inf
        self.maximum = -math.inf
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for estimator in self._estimators.values():
            estimator.add(value)

    def quantile(self, p: float) -> float:
        """Estimate for one of the tracked quantiles."""
        try:
            return self._estimators[p].value
        except KeyError:
            raise KeyError(f"quantile {p} is not tracked") from None

    def summary(self) -> dict[str, float]:
        result = {f"p{int(p * 100):02d}": estimator.value
                  for p, estimator in sorted(self._estimators.items())}
        result["min"] = self.minimum if self.count else math.nan
        result["max"] = self.maximum if self.count else math.nan
        return result
