"""Discrete-event simulation kernel.

A small, self-contained process-based DES engine in the style of SimPy,
built from scratch for this reproduction (SimPy is not a dependency).

The kernel provides:

* :class:`Environment` -- the simulated clock and the event calendar.
* :class:`Event` -- a one-shot occurrence that processes can wait on.
* :class:`Timeout` -- an event that fires after a fixed simulated delay.
* :class:`Process` -- a generator-driven simulated activity.  A process
  function ``yield``\\ s events; the kernel resumes the generator when the
  yielded event fires, sending the event's value back into the generator.
* :class:`Interrupt` -- an exception thrown *into* a process by another
  process (used by the hybrid protocol to abort transactions that are
  waiting on a lock or sleeping in an I/O phase).
* :class:`AllOf` / :class:`AnyOf` -- composite condition events.

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (a monotonically increasing sequence number breaks
ties), so simulations are exactly reproducible for a fixed RNG seed.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

# Bound at module level: the scheduler calls these once per event, and a
# global lookup is measurably cheaper than ``heapq.heappush`` attribute
# traversal in the hot loop.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "StopSimulation",
    "PENDING",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run`."""


class _Pending:
    """Sentinel for an event value that has not been decided yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event is triggered.
PENDING = _Pending()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries an arbitrary object describing why the
    interrupt happened (the hybrid protocol passes abort reasons here).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt({self.cause!r})"


class Event:
    """A one-shot occurrence that processes may wait for.

    An event moves through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled to fire, value decided) and
    *processed* (callbacks have run).  Waiting processes register
    callbacks; when the event fires, each callback receives the event.

    ``__slots__`` keeps instances dict-free: millions of events are
    allocated per run, and slotted attribute access is the kernel's
    hottest path.  Subclasses outside this module that add attributes
    still work (they simply regain a ``__dict__``).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: True once a failure value has been retrieved or defused.
        self._defused = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a decided value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._enqueue(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.env._enqueue(self)

    def defused(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    # -- internal ---------------------------------------------------------

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: schedule an immediate wake-up that
            # re-delivers this event (with its original identity and
            # outcome) to the late subscriber.
            mirror = Event(self.env)
            mirror.callbacks.append(lambda _mirror: callback(self))
            mirror._ok = True
            mirror._value = None
            self.env._enqueue(mirror)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined Event.__init__ -- timeouts are the most frequently
        # allocated event kind, so skip the extra method call.
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay}>"


class _ConditionValue:
    """Mapping of event -> value for the events a condition collected."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, Any]:
        return {event: event._value for event in self.events}


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("_evaluate", "_events", "_fired", "_count")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list[Event], int], bool],
                 events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._fired: set[int] = set()
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for event in self._events:
            # _add_callback is correct for every state: pending and
            # triggered-but-scheduled events fire later; already-processed
            # events are re-delivered via an immediate mirror event.
            event._add_callback(self._check)

    def _collect_value(self) -> _ConditionValue:
        value = _ConditionValue()
        for event in self._events:
            if id(event) in self._fired:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused()
            return
        self._fired.add(id(event))
        self._count += 1
        if not event._ok:
            event.defused()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_value())


class AllOf(Condition):
    """Fires when *all* constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count == len(events),
                         events)


class AnyOf(Condition):
    """Fires when *any* constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= 1, events)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A simulated activity driven by a generator.

    The generator yields :class:`Event` instances; the kernel resumes it
    with the event's value once the event fires (or throws the event's
    exception into it if the event failed).  A ``Process`` is itself an
    event that fires when the generator returns, carrying the return
    value -- so processes can wait for other processes.
    """

    __slots__ = ("name", "_generator", "_target", "_started")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str | None = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"{generator!r} is not a generator; did you call the "
                "process function?")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Event | None = None
        self._started = False
        # Kick off at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._enqueue(init)

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for (if any)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is allowed (the interrupt is delivered
        first and the original event's outcome is discarded for this
        wake-up -- the event itself still fires for other waiters).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self._generator is self.env.active_process_generator:
            raise SimulationError("a process cannot interrupt itself")
        failure = Event(self.env)
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        failure.callbacks.append(self._resume)
        # Interrupts normally pre-empt same-time events (priority 0),
        # but a not-yet-started process must be initialised first --
        # throwing into an unstarted generator would bypass its try
        # blocks -- so such interrupts are sequenced after the init event.
        self.env._enqueue(failure, priority=0 if self._started else 2)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Process already finished (e.g. interrupt raced completion).
            if not event._ok:
                event.defused()
            return
        # Detach from the event we were waiting on.
        self._target = None
        env = self.env
        env._active = self
        self._started = True
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                # Mark the failure as handled before delivery: whether
                # it is an Interrupt or an ordinary exception, reaching
                # the waiting process *is* its handling.
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active = None
            self.succeed(stop.value)
            return
        except BaseException as error:
            env._active = None
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            self._ok = False
            self._value = error
            env._enqueue(self)
            return
        env._active = None
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}")
        self._target = next_event
        next_event._add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Environment:
    """Simulation environment: clock, event calendar and run loop."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Process | None = None
        #: Profiling counters (cheap; read by the run instrumentation).
        self.events_processed = 0
        self.heap_peak = 0

    @property
    def events_scheduled(self) -> int:
        """Total events placed on the calendar.

        Every enqueue consumes one tie-breaking sequence number, so the
        sequence counter *is* the schedule counter -- no separate
        increment in the hot path.
        """
        return self._seq

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed (``None`` between events)."""
        return self._active

    @property
    def active_process_generator(self):
        return self._active._generator if self._active is not None else None

    # -- event construction helpers ----------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = 1) -> None:
        """Place a triggered event on the calendar.

        ``priority`` 0 is used for interrupts so that they pre-empt
        same-time normal events.

        Heap-peak tracking is *lazy*: the calendar only grows between
        pops, so every local maximum of the heap size is visible at the
        start of the next :meth:`step` (or at the end of :meth:`run`) --
        sampling there is exact and keeps this, the single hottest
        function in the kernel, branch-free.
        """
        seq = self._seq + 1
        self._seq = seq
        _heappush(self._queue, (self._now + delay, priority, seq, event))

    def _sample_heap_peak(self) -> None:
        size = len(self._queue)
        if size > self.heap_peak:
            self.heap_peak = size

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def next_event(self) -> "Event | None":
        """The event at the calendar head, or ``None`` when empty.

        Read-only companion to :meth:`peek` for observers (the engine
        profiler classifies the head before dispatch); the calendar is
        not modified.
        """
        return self._queue[0][3] if self._queue else None

    def step(self) -> None:
        """Process the next scheduled event."""
        queue = self._queue
        if not queue:
            raise StopSimulation("event calendar is empty")
        size = len(queue)
        if size > self.heap_peak:
            self.heap_peak = size
        when, _priority, _seq, event = _heappop(queue)
        self._now = when
        self.events_processed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            # An un-handled failure crashes the simulation, as it would in
            # SimPy: errors should never pass silently.
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be a simulated time (run up to that time), an
        :class:`Event` (run until it fires, returning its value), or
        ``None`` (run until the calendar drains).
        """
        stop_event: Event | None = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value

            def _halt(event: Event) -> None:
                raise StopSimulation(event)

            stop_event._add_callback(_halt)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon} lies in the past (now={self._now})")
        try:
            step = self.step
            queue = self._queue
            bounded = stop_event is None and until is not None
            while queue:
                if bounded and queue[0][0] > horizon:
                    self._now = horizon
                    self._sample_heap_peak()
                    return None
                step()
        except StopSimulation as stop:
            self._sample_heap_peak()
            if stop_event is not None and stop.args and \
                    stop.args[0] is stop_event:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            return None
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run(until=event) ended before the event fired")
        if until is not None and stop_event is None:
            self._now = horizon
        return None
