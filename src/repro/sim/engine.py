"""Discrete-event simulation kernel.

A small, self-contained process-based DES engine in the style of SimPy,
built from scratch for this reproduction (SimPy is not a dependency).

The kernel provides:

* :class:`Environment` -- the simulated clock and the event calendar.
* :class:`Event` -- a one-shot occurrence that processes can wait on.
* :class:`Timeout` -- an event that fires after a fixed simulated delay.
* :class:`Process` -- a generator-driven simulated activity.  A process
  function ``yield``\\ s events; the kernel resumes the generator when the
  yielded event fires, sending the event's value back into the generator.
* :class:`Interrupt` -- an exception thrown *into* a process by another
  process (used by the hybrid protocol to abort transactions that are
  waiting on a lock or sleeping in an I/O phase).
* :class:`AllOf` / :class:`AnyOf` -- composite condition events.

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (a monotonically increasing sequence number breaks
ties), so simulations are exactly reproducible for a fixed RNG seed.

Event calendar
--------------

The calendar realises the total order ``(time, priority, seq)`` without
a global heap.  Three bands cover the three regimes of a discrete-event
run:

* **Immediate band** -- zero-delay events (``succeed``/``fail``,
  process start-ups, interrupts) fire at the current clock reading and
  in scheduling order, so they live in plain FIFO deques (one per
  priority level) with no sort key at all.  This is the kernel's
  dominant traffic and costs one ``append``/``popleft`` per event.
* **Calendar window** -- future events within ``nbuckets * width`` of
  the window origin are hashed by timestamp into an array of buckets
  (a calendar queue).  Each bucket is kept sorted by the
  ``(time, priority, seq)`` tuple via C-level ``insort``, so the head
  of the first occupied bucket *is* the calendar head: enqueue is O(1)
  amortised, dequeue pops the front, and the cached head entry stays
  valid across enqueues and same-bucket pops (a full rescan happens
  only when a bucket drains or the window resizes).  The width and
  bucket count resize automatically when occupancy degenerates.
* **Overflow band** -- events beyond the window land in a sorted
  (heap-ordered) far-future band and are promoted in bulk whenever the
  window drains past them.

Every enqueue still consumes one monotonically increasing sequence
number, and the dispatch order is bit-for-bit the order the previous
binary-heap calendar produced.
"""

from __future__ import annotations

import heapq
from bisect import insort as _insort
from collections import deque
from collections.abc import Callable, Generator, Iterable
from sys import getrefcount as _getrefcount
from typing import Any

# Bound at module level: the far-future band pushes/pops are the only
# heap operations left, but a global lookup is still cheaper than
# attribute traversal where they do happen.
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Bucket-occupancy watermark above which the calendar window re-spreads
#: itself with a finer bucket width (unless all entries share one
#: timestamp, which no width can separate).
_SPLIT_FLOOR = 48

#: Cap on each free list when event pooling is enabled.
_POOL_LIMIT = 512

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "StopSimulation",
    "PENDING",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run`."""


class _Pending:
    """Sentinel for an event value that has not been decided yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event is triggered.
PENDING = _Pending()


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries an arbitrary object describing why the
    interrupt happened (the hybrid protocol passes abort reasons here).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interrupt({self.cause!r})"


class Event:
    """A one-shot occurrence that processes may wait for.

    An event moves through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled to fire, value decided) and
    *processed* (callbacks have run).  Waiting processes register
    callbacks; when the event fires, each callback receives the event.

    ``__slots__`` keeps instances dict-free: millions of events are
    allocated per run, and slotted attribute access is the kernel's
    hottest path.  Subclasses outside this module that add attributes
    still work (they simply regain a ``__dict__``).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: True once a failure value has been retrieved or defused.
        self._defused = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a decided value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        The zero-delay enqueue is inlined (peak bookkeeping included,
        mirroring :meth:`Environment._enqueue`): succeeding an event is
        the kernel's hottest trigger path.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        size = env._size = env._size + 1
        if size > env.heap_peak:
            env.heap_peak = size
        env._imm1.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._enqueue(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = event._ok
        self._value = event._value
        self.env._enqueue(self)

    def defused(self) -> None:
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    # -- internal ---------------------------------------------------------

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: schedule an immediate wake-up that
            # re-delivers this event (with its original identity and
            # outcome) to the late subscriber.
            mirror = self.env.event()
            mirror.callbacks.append(lambda _mirror: callback(self))
            mirror._ok = True
            mirror._value = None
            self.env._enqueue(mirror)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined Event.__init__ -- timeouts are the most frequently
        # allocated event kind, so skip the extra method call.
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Timeout delay={self.delay}>"


class _ConditionValue:
    """Mapping of event -> value for the events a condition collected."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, Any]:
        return {event: event._value for event in self.events}


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("_evaluate", "_events", "_fired", "_count")

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list[Event], int], bool],
                 events: Iterable[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._fired: set[int] = set()
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for event in self._events:
            # _add_callback is correct for every state: pending and
            # triggered-but-scheduled events fire later; already-processed
            # events are re-delivered via an immediate mirror event.
            event._add_callback(self._check)

    def _collect_value(self) -> _ConditionValue:
        value = _ConditionValue()
        for event in self._events:
            if id(event) in self._fired:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused()
            return
        self._fired.add(id(event))
        self._count += 1
        if not event._ok:
            event.defused()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_value())


class AllOf(Condition):
    """Fires when *all* constituent events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count == len(events),
                         events)


class AnyOf(Condition):
    """Fires when *any* constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, count: count >= 1, events)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A simulated activity driven by a generator.

    The generator yields :class:`Event` instances; the kernel resumes it
    with the event's value once the event fires (or throws the event's
    exception into it if the event failed).  A ``Process`` is itself an
    event that fires when the generator returns, carrying the return
    value -- so processes can wait for other processes.
    """

    __slots__ = ("name", "_generator", "_send", "_throw", "_target",
                 "_started")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str | None = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"{generator!r} is not a generator; did you call the "
                "process function?")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Bound resume entry points, looked up once: _resume runs for
        # every wake-up of every process.
        self._send = generator.send
        self._throw = generator.throw
        self._target: Event | None = None
        self._started = False
        # Kick off at the current simulation time.
        init = env.event()
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._enqueue(init)

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for (if any)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is allowed (the interrupt is delivered
        first and the original event's outcome is discarded for this
        wake-up -- the event itself still fires for other waiters).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self._generator is self.env.active_process_generator:
            raise SimulationError("a process cannot interrupt itself")
        failure = self.env.event()
        failure._ok = False
        failure._value = Interrupt(cause)
        failure._defused = True
        failure.callbacks.append(self._resume)
        # Interrupts normally pre-empt same-time events (priority 0),
        # but a not-yet-started process must be initialised first --
        # throwing into an unstarted generator would bypass its try
        # blocks -- so such interrupts are sequenced after the init event.
        self.env._enqueue(failure, priority=0 if self._started else 2)

    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:  # inlined `triggered` (hot path)
            # Process already finished (e.g. interrupt raced completion).
            if not event._ok:
                event.defused()
            return
        # Detach from the event we were waiting on.
        self._target = None
        env = self.env
        env._active = self
        self._started = True
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                # Mark the failure as handled before delivery: whether
                # it is an Interrupt or an ordinary exception, reaching
                # the waiting process *is* its handling.
                event._defused = True
                next_event = self._throw(event._value)
        except StopIteration as stop:
            env._active = None
            self.succeed(stop.value)
            return
        except BaseException as error:
            env._active = None
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            self._ok = False
            self._value = error
            env._enqueue(self)
            return
        env._active = None
        self._target = next_event
        # Duck-typed validation (anything without a ``callbacks``
        # attribute is not an event) plus the inlined _add_callback
        # fast path: yielding an unprocessed event is the
        # overwhelmingly common case, and the try costs nothing when
        # no exception is raised.
        try:
            callbacks = next_event.callbacks
        except AttributeError:
            self._target = None
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: "
                f"{next_event!r}") from None
        if callbacks is None:
            next_event._add_callback(self._resume)
        else:
            callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Environment:
    """Simulation environment: clock, event calendar and run loop.

    ``event_pooling=True`` turns on free-list recycling of the kernel's
    own short-lived objects (:class:`Timeout` and bare :class:`Event`
    instances): an event that is provably unreferenced once its
    callbacks have run is reset and reused instead of re-allocated.
    Recycling never changes scheduling order, event counts or values --
    it only skips allocator work -- and it is off by default so
    interactive code that keeps dispatched events around for inspection
    is never surprised.
    """

    def __init__(self, initial_time: float = 0.0,
                 event_pooling: bool = False):
        now = float(initial_time)
        self._now = now
        self._seq = 0
        self._size = 0
        self._active: Process | None = None
        # Immediate band: zero-delay events at the current clock
        # reading, one FIFO per priority level (0 = interrupts,
        # 1 = normal, 2 = deferred interrupts for unstarted processes).
        self._imm0: deque[Event] = deque()
        self._imm1: deque[Event] = deque()
        self._imm2: deque[Event] = deque()
        # Calendar window: buckets of (time, priority, seq, event)
        # entries covering [t0, t0 + nbuckets * width).  width == 0.0
        # means "not yet calibrated" (calibrated by the first future
        # enqueue, from its delay).
        self._t0 = now
        self._width = 0.0
        self._inv_width = 0.0
        self._nbuckets = 0
        self._buckets: list[list[tuple[float, int, int, Event]]] = []
        self._cursor = 0
        self._win_count = 0
        self._win_end = now
        #: Watermark above which an over-full head bucket triggers a
        #: re-spread; raised after a failed split (all-equal timestamps)
        #: so the scan does not retry on every refresh.
        self._split_floor = _SPLIT_FLOOR
        # Far-future band: heap of the same entry tuples.
        self._overflow: list[tuple[float, int, int, Event]] = []
        # Cached window head (entry tuple) and its bucket index;
        # ``None`` means "recompute on next access".
        self._head: tuple[float, int, int, Event] | None = None
        self._head_bucket = -1
        # Event pooling (kernel flag; see class docstring).
        self._pooling = bool(event_pooling)
        self._timeout_pool: list[Timeout] = []
        self._event_pool: list[Event] = []
        #: Profiling counters (cheap; read by the run instrumentation).
        self.heap_peak = 0
        #: Calendar rebuilds (resizes/re-spreads) over the run --
        #: structural churn the profiler reports alongside depth.
        self.calendar_rebuilds = 0

    @property
    def events_scheduled(self) -> int:
        """Total events placed on the calendar.

        Every enqueue consumes one tie-breaking sequence number, so the
        sequence counter *is* the schedule counter -- no separate
        increment in the hot path.
        """
        return self._seq

    @property
    def events_processed(self) -> int:
        """Total events dispatched so far.

        Every scheduled event is dispatched exactly once, so processed
        = scheduled - pending; deriving it spares :meth:`step` a
        counter increment on every event.
        """
        return self._seq - self._size

    @property
    def calendar_depth(self) -> int:
        """Events currently pending across all calendar bands."""
        return self._size

    def calendar_stats(self) -> dict:
        """Structural snapshot of the calendar (profiler/debug aid)."""
        occupancies = [len(bucket) for bucket in self._buckets if bucket]
        return {
            "depth": self._size,
            "immediate": (len(self._imm0) + len(self._imm1) +
                          len(self._imm2)),
            "window": self._win_count,
            "overflow": len(self._overflow),
            "buckets": self._nbuckets,
            "buckets_used": len(occupancies),
            "max_bucket_occupancy": max(occupancies, default=0),
            "bucket_width": self._width,
            "rebuilds": self.calendar_rebuilds,
        }

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed (``None`` between events)."""
        return self._active

    @property
    def active_process_generator(self):
        return self._active._generator if self._active is not None else None

    # -- event construction helpers ----------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`.

        Construction is inlined (``__new__`` plus field writes) on both
        the pooled and fresh paths -- this factory sits on the condition
        and mailbox hot paths.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
        else:
            event = Event.__new__(Event)
            event.env = self
        event.callbacks = []
        event._value = PENDING
        event._ok = True
        event._defused = False
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now.

        Timeouts are the most frequently allocated event kind, so the
        constructor is inlined here (recycling a pooled instance when
        one is free) and the calendar insert is a single call.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
        timeout.callbacks = []
        timeout._value = value
        timeout._ok = True
        timeout._defused = False
        timeout.delay = delay
        # Inlined :meth:`_enqueue` (delay >= 0, priority 1): timeouts
        # are ~40% of all dispatches, so they skip the extra call
        # frame.  Mirror any scheduling change made here in _enqueue
        # (and vice versa); the peak bookkeeping below is the same
        # single-site accounting documented there.
        self._seq += 1
        size = self._size = self._size + 1
        if size > self.heap_peak:
            self.heap_peak = size
        now = self._now
        time = now + delay
        if time <= now:
            self._imm1.append(timeout)
            return timeout
        if self._width == 0.0:
            self._calibrate(now, time - now)
        if time >= self._win_end:
            _heappush(self._overflow, (time, 1, self._seq, timeout))
            return timeout
        idx = int((time - self._t0) * self._inv_width)
        if idx >= self._nbuckets:
            idx = self._nbuckets - 1
        elif idx < self._cursor:
            idx = self._cursor
        entry = (time, 1, self._seq, timeout)
        _insort(self._buckets[idx], entry)
        self._win_count += 1
        head = self._head
        if head is not None and idx == self._head_bucket and entry < head:
            self._head = entry
        if self._win_count > (self._nbuckets << 1):
            self._rebuild_window()
        return timeout

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = 1) -> None:
        """Place a triggered event on the calendar.

        ``priority`` 0 is used for interrupts so that they pre-empt
        same-time normal events; priority 2 sequences an interrupt
        *after* the target's start-up.  Non-default priorities are a
        zero-delay facility -- only same-time pre-emption is meaningful.

        This is also the *single* peak-depth bookkeeping site: the
        calendar only ever grows here, one event at a time, so every
        local maximum of its size is observed exactly at the increment
        below -- no sampling in :meth:`step` or :meth:`run` needed.
        """
        self._seq += 1
        size = self._size = self._size + 1
        if size > self.heap_peak:
            self.heap_peak = size
        now = self._now
        time = now + delay
        if time <= now:
            # Zero-delay (including the float-degenerate ``now + tiny ==
            # now`` case): fires at the current clock reading, and the
            # FIFO append order *is* the sequence order.
            if priority == 1:
                self._imm1.append(event)
            elif priority == 0:
                self._imm0.append(event)
            else:
                self._imm2.append(event)
            return
        if priority != 1:
            raise SimulationError(
                "non-default priorities are only supported for "
                "zero-delay events")
        if self._width == 0.0:
            # First future event calibrates the window: its delay is the
            # natural scale of the workload's near-term traffic.
            self._calibrate(now, time - now)
        if time >= self._win_end:
            _heappush(self._overflow, (time, 1, self._seq, event))
            return
        idx = int((time - self._t0) * self._inv_width)
        if idx >= self._nbuckets:
            idx = self._nbuckets - 1
        elif idx < self._cursor:
            idx = self._cursor
        entry = (time, 1, self._seq, event)
        _insort(self._buckets[idx], entry)
        self._win_count += 1
        # The cursor never trails the head bucket, so an insert can only
        # displace a *valid* cached head from its own bucket -- in which
        # case the smaller entry simply replaces it, keeping the cache
        # warm without any rescan.
        head = self._head
        if head is not None and idx == self._head_bucket and entry < head:
            self._head = entry
        if self._win_count > (self._nbuckets << 1):
            self._rebuild_window()

    # -- calendar internals -------------------------------------------------

    def _calibrate(self, t0: float, width: float) -> None:
        """Open the first calendar window at origin ``t0``."""
        if width < 1e-12:
            # Also floors subnormal widths, whose reciprocal would
            # overflow to infinity.
            width = 1e-12
        self._t0 = t0
        self._width = width
        self._inv_width = 1.0 / width
        self._nbuckets = 256
        self._buckets = [[] for _ in range(256)]
        self._cursor = 0
        self._win_end = t0 + 256 * width
        self._head = None
        self._head_bucket = -1

    def _refresh_head(self) -> "tuple[float, int, int, Event] | None":
        """Locate (and cache) the earliest window entry.

        Promotes the overflow band when the window has drained, and
        re-spreads a degenerated window (over-full head bucket) with a
        finer width.  Returns ``None`` only when no future event exists
        anywhere.
        """
        while True:
            if self._win_count:
                buckets = self._buckets
                n = self._nbuckets
                cursor = self._cursor
                while cursor < n:
                    bucket = buckets[cursor]
                    if bucket:
                        if len(bucket) > self._split_floor and \
                                self._rebuild_window():
                            break  # re-spread; rescan from new cursor
                        self._cursor = cursor
                        entry = bucket[0]  # buckets are kept sorted
                        self._head = entry
                        self._head_bucket = cursor
                        return entry
                    cursor += 1
                else:  # pragma: no cover - accounting invariant
                    raise SimulationError("calendar accounting corrupted")
                continue
            if not self._overflow:
                self._head = None
                self._head_bucket = -1
                return None
            self._advance_window()

    def _place(self, entry: "tuple[float, int, int, Event]") -> None:
        """Drop an entry into its window bucket (rebuild/promotion path)."""
        idx = int((entry[0] - self._t0) * self._inv_width)
        if idx >= self._nbuckets:
            idx = self._nbuckets - 1
        elif idx < 0:
            idx = 0
        _insort(self._buckets[idx], entry)
        self._win_count += 1

    def _advance_window(self) -> None:
        """Move the drained window up to the overflow band's head and
        promote every overflow entry the new span covers."""
        overflow = self._overflow
        t0 = overflow[0][0]
        self._t0 = t0
        self._cursor = 0
        self._win_end = end = t0 + self._nbuckets * self._width
        self._head = None
        self._head_bucket = -1
        while overflow and overflow[0][0] < end:
            self._place(_heappop(overflow))
        if self._win_count > (self._nbuckets << 1):
            self._rebuild_window()

    def _rebuild_window(self) -> bool:
        """Re-spread the window with a width matched to its occupancy.

        Width targets one entry per bucket over the occupied span; the
        bucket count covers twice that span so near-term enqueues keep
        landing inside the window.  Returns ``False`` (and raises the
        split floor) when every entry shares one timestamp -- no width
        can separate those.
        """
        entries: list[tuple[float, int, int, Event]] = []
        for bucket in self._buckets:
            if bucket:
                entries.extend(bucket)
        count = len(entries)
        if not count:
            return False
        tmin = tmax = entries[0][0]
        for entry in entries:
            time = entry[0]
            if time < tmin:
                tmin = time
            elif time > tmax:
                tmax = time
        span = tmax - tmin
        if span <= 0.0 and count > 1:
            # Indivisible cluster: no width can separate entries that
            # all share one timestamp.  Stop trying to split until the
            # window grows substantially (buckets are untouched).
            self._split_floor = max(count * 2, self._split_floor)
            return False
        nbuckets = 256
        while nbuckets < count * 2 and nbuckets < 131_072:
            nbuckets <<= 1
        width = span / count if span > 0.0 else self._width
        if width < 1e-12:  # incl. subnormals: 1/width must stay finite
            width = 1e-12
        if tmin == self._t0 and width == self._width \
                and nbuckets == self._nbuckets:
            # The re-spread would reproduce this exact layout: the
            # over-full bucket is a sub-width cluster (e.g. thousands
            # of retry timers sharing one deadline) that no rebuild
            # can separate.  Raise the floor so the head scan stops
            # asking -- retrying here would loop forever.
            self._split_floor = max(count * 2, self._split_floor)
            return False
        for bucket in self._buckets:
            if bucket:
                bucket.clear()
        self._split_floor = _SPLIT_FLOOR
        self._t0 = tmin
        self._width = width
        self._inv_width = 1.0 / width
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        self._cursor = 0
        self._win_end = end = tmin + nbuckets * width
        self._win_count = 0
        for entry in entries:
            self._place(entry)
        overflow = self._overflow
        while overflow and overflow[0][0] < end:
            self._place(_heappop(overflow))
        self._head = None
        self._head_bucket = -1
        self.calendar_rebuilds += 1
        return True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._imm0 or self._imm1 or self._imm2:
            return self._now
        if self._win_count or self._overflow:
            head = self._head
            if head is None:
                head = self._refresh_head()
            return head[0]
        return float("inf")

    def next_event(self) -> "Event | None":
        """The event at the calendar head, or ``None`` when empty.

        Read-only companion to :meth:`peek` for observers (the engine
        profiler classifies the head before dispatch); the calendar is
        not modified and the returned event is exactly the one the next
        :meth:`step` will dispatch.
        """
        if self._imm0:
            return self._imm0[0]
        head = None
        if self._win_count or self._overflow:
            head = self._head
            if head is None:
                head = self._refresh_head()
        if self._imm1:
            if head is not None and head[0] <= self._now:
                return head[3]
            return self._imm1[0]
        if head is not None:
            if self._imm2 and head[0] > self._now:
                return self._imm2[0]
            return head[3]
        return self._imm2[0] if self._imm2 else None

    def step(self) -> None:
        """Process the next scheduled event.

        The head pop is inlined at both window-dispatch sites: the front
        of the head bucket is removed and its successor -- if the bucket
        still has one -- becomes the new cached head (everything in
        earlier buckets is gone, everything in later buckets is later),
        so only a drained bucket forces a cursor rescan.
        """
        if self._imm0:
            event = self._imm0.popleft()
        elif self._imm1:
            # A window entry at exactly the current time was scheduled
            # before the clock reached it, so its sequence number --
            # and with it, its turn -- precedes every immediate event.
            if self._win_count:
                head = self._head
                if head is None:
                    head = self._refresh_head()
                if head[0] <= self._now:
                    bucket = self._buckets[self._head_bucket]
                    del bucket[0]
                    self._win_count -= 1
                    self._head = bucket[0] if bucket else None
                    event = head[3]
                    head = None
                else:
                    event = self._imm1.popleft()
            else:
                event = self._imm1.popleft()
        elif self._win_count or self._overflow:
            head = self._head
            if head is None:
                head = self._refresh_head()
            if self._imm2 and head[0] > self._now:
                event = self._imm2.popleft()
            else:
                self._now = head[0]
                bucket = self._buckets[self._head_bucket]
                del bucket[0]
                self._win_count -= 1
                self._head = bucket[0] if bucket else None
                event = head[3]
                head = None
        elif self._imm2:
            event = self._imm2.popleft()
        else:
            raise StopSimulation("event calendar is empty")
        self._size -= 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            # Nearly every event has exactly one callback (its waiting
            # process); skip the iterator for that case.
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
        if not event._ok and not event._defused:
            # An un-handled failure crashes the simulation, as it would in
            # SimPy: errors should never pass silently.
            raise event._value
        if self._pooling:
            # Recycle kernel-owned events that are provably unreferenced
            # (the two counted references are this frame's local and the
            # getrefcount argument itself).  Exact type checks keep
            # subclasses -- which may carry extra state -- out of the
            # free lists.
            cls = type(event)
            if cls is Timeout:
                pool = self._timeout_pool
                if len(pool) < _POOL_LIMIT and _getrefcount(event) == 2:
                    event._value = None
                    pool.append(event)
            elif cls is Event:
                pool = self._event_pool
                if len(pool) < _POOL_LIMIT and _getrefcount(event) == 2:
                    event._value = None
                    pool.append(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be a simulated time (run up to that time), an
        :class:`Event` (run until it fires, returning its value), or
        ``None`` (run until the calendar drains).
        """
        stop_event: Event | None = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                return stop_event.value

            def _halt(event: Event) -> None:
                raise StopSimulation(event)

            stop_event._add_callback(_halt)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"until={horizon} lies in the past (now={self._now})")
        try:
            step = self.step
            bounded = stop_event is None and until is not None
            # The immediate deques are created once in __init__ and
            # never replaced, so locals stay valid across steps.
            #
            # Dispatch stays a per-event *call* to :meth:`step` on
            # purpose: CPython 3.11 specialises a code object only
            # after several calls, so ``step`` -- invoked once per
            # event -- runs fully quickened, whereas this loop's body
            # (entered once per simulation) never would.  Inlining the
            # dispatch here measures ~20% slower for exactly that
            # reason.  The bound-method binding also keeps the engine
            # profiler's instance-attribute wrapping of ``step``
            # effective.
            imm0, imm1, imm2 = self._imm0, self._imm1, self._imm2
            while self._size:
                if bounded and not (imm0 or imm1 or imm2):
                    head = self._head
                    if head is None:
                        head = self._refresh_head()
                    if head[0] > horizon:
                        self._now = horizon
                        return None
                step()
        except StopSimulation as stop:
            if stop_event is not None and stop.args and \
                    stop.args[0] is stop_event:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            return None
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run(until=event) ended before the event fired")
        if until is not None and stop_event is None:
            self._now = horizon
        return None
