"""Output-analysis statistics for simulation runs.

The estimators here implement the standard machinery of a credible
simulation study:

* :class:`RunningStat` -- Welford accumulator for means/variances of
  observation streams (response times, abort counts).
* :class:`TimeWeightedStat` -- time-integral averages for state variables
  (queue lengths, number in system, utilisation).
* :class:`BatchMeans` -- batch-means confidence intervals from a single
  long run (used after warm-up deletion).
* :class:`ReplicationSummary` -- t-based confidence intervals across
  independent replications (used by the experiment harness), optionally
  tightened by a jackknifed linear control-variate adjustment
  (:meth:`ReplicationSummary.adjusted_interval`).
* :func:`paired_difference` -- paired-t estimation of a strategy-vs-
  strategy delta when both strategies ran on common random numbers.
* :class:`IntervalEstimate` -- a point estimate plus half-width.

All confidence intervals use the Student-t quantile from scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "RunningStat",
    "TimeWeightedStat",
    "BatchMeans",
    "ReplicationSummary",
    "IntervalEstimate",
    "ControlVariateEstimate",
    "PairedDifference",
    "paired_difference",
    "control_variate_interval",
]


@dataclass(frozen=True)
class IntervalEstimate:
    """A point estimate with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (``inf`` for zero mean)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        return (f"{self.mean:.4g} +/- {self.half_width:.2g} "
                f"({self.confidence:.0%}, n={self.n})")


def _t_half_width(std: float, n: int, confidence: float) -> float:
    if n < 2 or std == 0.0:
        return 0.0
    quantile = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, n - 1))
    return quantile * std / math.sqrt(n)


@dataclass(frozen=True)
class PairedDifference:
    """Paired-t estimate of ``mean(a) - mean(b)`` across replications.

    The point estimate equals the difference of the two sample means
    *exactly* (an algebraic identity of pairing), so pairing never
    biases the delta -- it only changes the half-width.  When the two
    strategies ran on common random numbers their per-replication
    outputs are positively correlated and ``interval`` is far tighter
    than ``unpaired`` (the CI the same data would give under the
    independent-streams assumption); on genuinely independent streams
    the two agree in expectation.
    """

    interval: IntervalEstimate
    #: The same point estimate judged as if the streams were
    #: independent: ``var(a)/m + var(b)/m`` with ``m-1`` df.
    unpaired: IntervalEstimate
    #: ``var_unpaired / var_paired`` of the delta estimator -- how many
    #: times fewer replications pairing needs for the same precision
    #: (``inf`` when the paired differences have zero variance).
    variance_reduction: float
    n_pairs: int


def paired_difference(a: Sequence[float], b: Sequence[float],
                      confidence: float = 0.95) -> PairedDifference:
    """Estimate ``mean(a) - mean(b)`` pairing replication ``r`` with ``r``.

    Pairs up to ``min(len(a), len(b))`` observations (adaptive runs may
    have replicated the two points unequally; the common prefix is the
    paired part).  Raises on fewer than two pairs -- no variance
    information exists below that.
    """
    m = min(len(a), len(b))
    if m < 2:
        raise ValueError(f"need at least 2 paired replications, got {m}")
    a_stat, b_stat, d_stat = RunningStat(), RunningStat(), RunningStat()
    for x, y in zip(list(a)[:m], list(b)[:m]):
        a_stat.add(x)
        b_stat.add(y)
        d_stat.add(x - y)
    paired = IntervalEstimate(
        d_stat.mean, _t_half_width(d_stat.std, m, confidence),
        confidence, m)
    unpaired_var = (a_stat.variance + b_stat.variance) / m
    quantile = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, m - 1))
    unpaired = IntervalEstimate(
        d_stat.mean, quantile * math.sqrt(max(unpaired_var, 0.0)),
        confidence, m)
    var_sum = a_stat.variance + b_stat.variance
    if d_stat.variance > 0.0:
        reduction = var_sum / d_stat.variance
    else:
        reduction = math.inf if var_sum > 0.0 else 1.0
    return PairedDifference(interval=paired, unpaired=unpaired,
                            variance_reduction=reduction, n_pairs=m)


@dataclass(frozen=True)
class ControlVariateEstimate:
    """Outcome of a control-variate adjustment attempt.

    ``interval`` is the estimate to *use*: the jackknifed
    regression-adjusted interval when the adjustment engaged and
    actually tightened the CI, otherwise the plain cross-replication
    interval (``used`` records which).  ``variance_reduction`` is
    ``var(plain mean) / var(adjusted mean)`` -- 1.0 whenever the
    adjustment was skipped or rejected.
    """

    interval: IntervalEstimate
    plain: IntervalEstimate
    variance_reduction: float
    used: bool
    #: Covariates that entered the regression (after dropping
    #: zero-variance columns); empty when the adjustment was skipped.
    covariates: tuple[str, ...] = ()


def _cv_theta(y: np.ndarray, centered: np.ndarray) -> float:
    """Regression-adjusted mean of ``y`` given mean-deviation columns.

    ``centered[r, j]`` is covariate ``j``'s observed value in
    replication ``r`` minus its *known* expectation.  Least squares via
    ``lstsq`` tolerates exactly collinear covariate columns (e.g. a
    summed-demand column that is a multiple of the arrival counts): any
    minimum-norm coefficient vector yields the same adjusted mean.
    """
    deviation = centered - centered.mean(axis=0)
    beta, *_ = np.linalg.lstsq(deviation, y - y.mean(), rcond=None)
    return float(y.mean() - centered.mean(axis=0) @ beta)


def control_variate_interval(
        values: Sequence[float],
        covariates: Sequence[Mapping[str, tuple[float, float]]],
        confidence: float = 0.95) -> ControlVariateEstimate:
    """Jackknifed linear control-variate interval for the mean.

    ``covariates[r]`` maps covariate names to ``(observed, expected)``
    pairs for replication ``r``; the expectations must be analytically
    known (Poisson arrival counts, deterministic demand sums, the
    analytic model's plug-in prediction).  The regression coefficient is
    estimated from the same replications it adjusts, which biases the
    naive estimator; the jackknife (leave-one-out pseudo-values, the
    Lavenberg-Welch construction) removes that first-order bias and
    yields an honest t-interval on the pseudo-values.

    Safety guards -- control variates can *inflate* variance when
    replications are few or the covariate correlation is weak:

    * covariate columns with zero sample variance are dropped;
    * with fewer than ``k + 3`` replications, where ``k`` is the *rank*
      of the centred covariate matrix (exactly collinear columns --
      e.g. a demand sum that is a multiple of the arrival counts -- do
      not consume degrees of freedom), the regression is not attempted
      (returns the plain interval);
    * if the jackknife half-width is not strictly tighter than the
      plain one, the plain interval is returned (``used=False``).
    """
    n = len(values)
    stat = RunningStat()
    stat.extend(values)
    plain = IntervalEstimate(
        stat.mean, _t_half_width(stat.std if stat.std == stat.std else 0.0,
                                 n, confidence), confidence, n)

    def fallback() -> ControlVariateEstimate:
        return ControlVariateEstimate(interval=plain, plain=plain,
                                      variance_reduction=1.0, used=False)

    if n < 3 or len(covariates) != n:
        return fallback()
    names = sorted(set.intersection(*(set(row) for row in covariates)))
    if not names:
        return fallback()
    y = np.asarray(list(values), dtype=float)
    observed = np.array([[row[name][0] for name in names]
                         for row in covariates], dtype=float)
    expected = np.array([[row[name][1] for name in names]
                         for row in covariates], dtype=float)
    if not (np.isfinite(y).all() and np.isfinite(observed).all()
            and np.isfinite(expected).all()):
        return fallback()
    keep = [j for j in range(len(names))
            if float(observed[:, j].std()) > 0.0]
    if not keep:
        return fallback()
    names = tuple(names[j] for j in keep)
    centered = observed[:, keep] - expected[:, keep]
    rank = int(np.linalg.matrix_rank(centered - centered.mean(axis=0)))
    if rank < 1 or n < rank + 3:
        return fallback()

    theta = _cv_theta(y, centered)
    index = np.arange(n)
    pseudo = np.empty(n)
    for r in range(n):
        rest = index != r
        theta_r = _cv_theta(y[rest], centered[rest])
        pseudo[r] = n * theta - (n - 1) * theta_r
    mean = float(pseudo.mean())
    std = float(pseudo.std(ddof=1))
    if not (math.isfinite(mean) and math.isfinite(std)):
        return fallback()
    half = _t_half_width(std, n, confidence)
    if half <= 0.0 or half >= plain.half_width:
        return fallback()
    adjusted = IntervalEstimate(mean, half, confidence, n)
    reduction = (plain.half_width / half) ** 2 \
        if plain.half_width > 0.0 else 1.0
    return ControlVariateEstimate(interval=adjusted, plain=plain,
                                  variance_reduction=reduction,
                                  used=True, covariates=names)


class RunningStat:
    """Welford's online mean/variance accumulator.

    Numerically stable for long observation streams, O(1) memory.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStat()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = (self._m2 + other._m2 +
                      delta * delta * self._n * other._n / n)
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self._n < 2:
            return math.nan
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n else math.nan

    def interval(self, confidence: float = 0.95) -> IntervalEstimate:
        """Confidence interval treating observations as i.i.d.

        For autocorrelated within-run data prefer :class:`BatchMeans`.
        """
        std = self.std
        half = _t_half_width(std if std == std else 0.0, self._n, confidence)
        return IntervalEstimate(self.mean, half, confidence, self._n)


class TimeWeightedStat:
    """Time-average of a piecewise-constant state variable.

    Call :meth:`record` whenever the tracked quantity changes; the mean is
    the integral of the level over time divided by elapsed time.
    """

    def __init__(self, initial_time: float = 0.0, initial_level: float = 0.0):
        self._start = initial_time
        self._last_time = initial_time
        self._level = initial_level
        self._integral = 0.0
        self._peak = initial_level

    def record(self, now: float, level: float) -> None:
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}")
        self._integral += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        if level > self._peak:
            self._peak = level

    def reset(self, now: float) -> None:
        """Restart integration at ``now`` keeping the current level."""
        self._start = now
        self._last_time = now
        self._integral = 0.0
        self._peak = self._level

    @property
    def level(self) -> float:
        return self._level

    @property
    def peak(self) -> float:
        return self._peak

    def mean(self, now: float) -> float:
        """Time-average level over ``[start, now]``."""
        elapsed = now - self._start
        if elapsed <= 0:
            return self._level
        total = self._integral + self._level * (now - self._last_time)
        return total / elapsed


class BatchMeans:
    """Batch-means interval estimation from one long (post-warm-up) run.

    Observations are grouped into ``n_batches`` contiguous batches; batch
    averages are approximately independent for long batches, so a t-based
    interval over them is valid despite within-run autocorrelation.
    """

    def __init__(self, n_batches: int = 20):
        if n_batches < 2:
            raise ValueError("need at least 2 batches")
        self.n_batches = n_batches
        self._values: list[float] = []

    def add(self, value: float) -> None:
        self._values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self._values.extend(values)

    @property
    def count(self) -> int:
        return len(self._values)

    def batch_averages(self) -> list[float]:
        n = len(self._values)
        if n < self.n_batches:
            raise ValueError(
                f"only {n} observations for {self.n_batches} batches")
        size = n // self.n_batches
        averages = []
        for index in range(self.n_batches):
            start = index * size
            # The last batch absorbs the n % n_batches remainder, so no
            # observation is ever silently discarded.
            end = start + size if index < self.n_batches - 1 else n
            chunk = self._values[start:end]
            averages.append(sum(chunk) / len(chunk))
        return averages

    def interval(self, confidence: float = 0.95) -> IntervalEstimate:
        batches = self.batch_averages()
        stat = RunningStat()
        stat.extend(batches)
        half = _t_half_width(stat.std, len(batches), confidence)
        return IntervalEstimate(stat.mean, half, confidence, len(batches))


class ReplicationSummary:
    """Cross-replication estimator: one observation per independent run.

    :meth:`interval` is memoised per confidence level (the adaptive
    replication scheduler and the report layer both query it repeatedly
    between additions); adding a replication invalidates the cache.

    Replications may carry *control variates* -- quantities observed in
    the same run whose expectations are analytically known (see
    :func:`control_variate_interval`).  :meth:`adjusted_interval` then
    returns the regression-adjusted estimate; without covariates it
    degrades to the plain interval, so callers can use it
    unconditionally.
    """

    def __init__(self) -> None:
        self._per_rep: list[float] = []
        self._covariates: list[Mapping[str, tuple[float, float]]] = []
        self._intervals: dict[float, IntervalEstimate] = {}
        self._adjusted: dict[float, ControlVariateEstimate] = {}

    def add_replication(
            self, value: float,
            covariates: Mapping[str, tuple[float, float]] | None = None,
    ) -> None:
        """Record one replication's output (and optional covariates).

        ``covariates`` maps names to ``(observed, expected)`` pairs;
        only covariates present in *every* replication enter the
        adjustment.
        """
        self._per_rep.append(value)
        self._covariates.append(dict(covariates or {}))
        self._intervals.clear()
        self._adjusted.clear()

    @property
    def replications(self) -> Sequence[float]:
        return tuple(self._per_rep)

    def interval(self, confidence: float = 0.95) -> IntervalEstimate:
        cached = self._intervals.get(confidence)
        if cached is not None:
            return cached
        stat = RunningStat()
        stat.extend(self._per_rep)
        half = _t_half_width(stat.std if stat.std == stat.std else 0.0,
                             stat.count, confidence)
        estimate = IntervalEstimate(stat.mean, half, confidence, stat.count)
        self._intervals[confidence] = estimate
        return estimate

    def adjusted_interval(
            self, confidence: float = 0.95) -> ControlVariateEstimate:
        """Control-variate-adjusted interval (plain when not applicable)."""
        cached = self._adjusted.get(confidence)
        if cached is not None:
            return cached
        estimate = control_variate_interval(
            self._per_rep, self._covariates, confidence=confidence)
        self._adjusted[confidence] = estimate
        return estimate
