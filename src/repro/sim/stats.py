"""Output-analysis statistics for simulation runs.

The estimators here implement the standard machinery of a credible
simulation study:

* :class:`RunningStat` -- Welford accumulator for means/variances of
  observation streams (response times, abort counts).
* :class:`TimeWeightedStat` -- time-integral averages for state variables
  (queue lengths, number in system, utilisation).
* :class:`BatchMeans` -- batch-means confidence intervals from a single
  long run (used after warm-up deletion).
* :class:`ReplicationSummary` -- t-based confidence intervals across
  independent replications (used by the experiment harness).
* :class:`IntervalEstimate` -- a point estimate plus half-width.

All confidence intervals use the Student-t quantile from scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from scipy import stats as _scipy_stats

__all__ = [
    "RunningStat",
    "TimeWeightedStat",
    "BatchMeans",
    "ReplicationSummary",
    "IntervalEstimate",
]


@dataclass(frozen=True)
class IntervalEstimate:
    """A point estimate with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (``inf`` for zero mean)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        return (f"{self.mean:.4g} +/- {self.half_width:.2g} "
                f"({self.confidence:.0%}, n={self.n})")


def _t_half_width(std: float, n: int, confidence: float) -> float:
    if n < 2 or std == 0.0:
        return 0.0
    quantile = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, n - 1))
    return quantile * std / math.sqrt(n)


class RunningStat:
    """Welford's online mean/variance accumulator.

    Numerically stable for long observation streams, O(1) memory.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two accumulators (parallel Welford merge)."""
        merged = RunningStat()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = (self._m2 + other._m2 +
                      delta * delta * self._n * other._n / n)
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self._n < 2:
            return math.nan
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._n else math.nan

    def interval(self, confidence: float = 0.95) -> IntervalEstimate:
        """Confidence interval treating observations as i.i.d.

        For autocorrelated within-run data prefer :class:`BatchMeans`.
        """
        std = self.std
        half = _t_half_width(std if std == std else 0.0, self._n, confidence)
        return IntervalEstimate(self.mean, half, confidence, self._n)


class TimeWeightedStat:
    """Time-average of a piecewise-constant state variable.

    Call :meth:`record` whenever the tracked quantity changes; the mean is
    the integral of the level over time divided by elapsed time.
    """

    def __init__(self, initial_time: float = 0.0, initial_level: float = 0.0):
        self._start = initial_time
        self._last_time = initial_time
        self._level = initial_level
        self._integral = 0.0
        self._peak = initial_level

    def record(self, now: float, level: float) -> None:
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}")
        self._integral += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        if level > self._peak:
            self._peak = level

    def reset(self, now: float) -> None:
        """Restart integration at ``now`` keeping the current level."""
        self._start = now
        self._last_time = now
        self._integral = 0.0
        self._peak = self._level

    @property
    def level(self) -> float:
        return self._level

    @property
    def peak(self) -> float:
        return self._peak

    def mean(self, now: float) -> float:
        """Time-average level over ``[start, now]``."""
        elapsed = now - self._start
        if elapsed <= 0:
            return self._level
        total = self._integral + self._level * (now - self._last_time)
        return total / elapsed


class BatchMeans:
    """Batch-means interval estimation from one long (post-warm-up) run.

    Observations are grouped into ``n_batches`` contiguous batches; batch
    averages are approximately independent for long batches, so a t-based
    interval over them is valid despite within-run autocorrelation.
    """

    def __init__(self, n_batches: int = 20):
        if n_batches < 2:
            raise ValueError("need at least 2 batches")
        self.n_batches = n_batches
        self._values: list[float] = []

    def add(self, value: float) -> None:
        self._values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self._values.extend(values)

    @property
    def count(self) -> int:
        return len(self._values)

    def batch_averages(self) -> list[float]:
        n = len(self._values)
        if n < self.n_batches:
            raise ValueError(
                f"only {n} observations for {self.n_batches} batches")
        size = n // self.n_batches
        averages = []
        for index in range(self.n_batches):
            start = index * size
            # The last batch absorbs the n % n_batches remainder, so no
            # observation is ever silently discarded.
            end = start + size if index < self.n_batches - 1 else n
            chunk = self._values[start:end]
            averages.append(sum(chunk) / len(chunk))
        return averages

    def interval(self, confidence: float = 0.95) -> IntervalEstimate:
        batches = self.batch_averages()
        stat = RunningStat()
        stat.extend(batches)
        half = _t_half_width(stat.std, len(batches), confidence)
        return IntervalEstimate(stat.mean, half, confidence, len(batches))


class ReplicationSummary:
    """Cross-replication estimator: one observation per independent run.

    :meth:`interval` is memoised per confidence level (the adaptive
    replication scheduler and the report layer both query it repeatedly
    between additions); adding a replication invalidates the cache.
    """

    def __init__(self) -> None:
        self._per_rep: list[float] = []
        self._intervals: dict[float, IntervalEstimate] = {}

    def add_replication(self, value: float) -> None:
        self._per_rep.append(value)
        self._intervals.clear()

    @property
    def replications(self) -> Sequence[float]:
        return tuple(self._per_rep)

    def interval(self, confidence: float = 0.95) -> IntervalEstimate:
        cached = self._intervals.get(confidence)
        if cached is not None:
            return cached
        stat = RunningStat()
        stat.extend(self._per_rep)
        half = _t_half_width(stat.std if stat.std == stat.std else 0.0,
                             stat.count, confidence)
        estimate = IntervalEstimate(stat.mean, half, confidence, stat.count)
        self._intervals[confidence] = estimate
        return estimate
