"""Shared resources for the DES kernel: servers, stores and mailboxes.

Three primitives cover every queueing station in the hybrid system model:

* :class:`Resource` -- a multi-server FCFS resource with an explicit wait
  queue (models CPUs; the hybrid sites use capacity-1 resources since the
  paper's sites are single processors).
* :class:`PriorityResource` -- the same, with numeric priorities (lower is
  served first); used for giving commit processing precedence experiments.
* :class:`Store` -- an unbounded FIFO store of items with blocking ``get``;
  used for message mailboxes between sites.

Requests are events, so a process can combine them with timeouts or be
interrupted while queued; cancelling a queued request removes it from the
wait queue (used when a transaction waiting for the CPU is aborted).
"""

from __future__ import annotations

import itertools
from collections import deque
from operator import attrgetter
from typing import Any

from .engine import Environment, Event, Interrupt, SimulationError

__all__ = ["Resource", "PriorityResource", "Request", "Store"]

#: Grant scan key, bound once: reading a precomputed tuple attribute is
#: several times cheaper than rebuilding it per comparison inside
#: ``min`` on the grant hot path.
_REQUEST_KEY = attrgetter("_key")


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req            # wait until granted
            yield env.timeout(s) # hold the resource
        # released on exit
    """

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = next(resource._ticket)
        self._key = (priority, self._order)
        resource._enqueue_request(self)

    # Sort key: priority first, then FIFO within a priority level.
    @property
    def key(self) -> tuple[float, int]:
        return self._key

    def cancel(self) -> None:
        """Withdraw this request.

        If still queued it is removed from the wait queue; if already
        granted the resource slot is released.  Safe to call more than
        once.
        """
        self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()


class Resource:
    """Multi-server FCFS resource with an observable wait queue.

    The queue length (``len(resource.queue)``) plus the number of busy
    servers (``resource.count``) is exactly the "CPU queue length
    including any running jobs" statistic the paper's dynamic strategies
    sample.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []
        #: Total service grants over the resource's lifetime (plain int
        #: on the hot path; harvested into the metrics registry at
        #: run end).
        self.grants = 0
        self._ticket = itertools.count()
        # Cumulative busy time bookkeeping for utilisation measurement.
        self._busy_integral = 0.0
        self._last_change = env.now

    # -- public API ---------------------------------------------------------

    def request(self, priority: float = 0.0) -> Request:
        """Claim one server; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Release a granted request (idempotent via :meth:`Request.cancel`)."""
        self._cancel(request)

    @property
    def count(self) -> int:
        """Number of servers currently in use."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Waiting plus in-service jobs (the paper's ``q`` statistic)."""
        return len(self.queue) + len(self.users)

    def utilization(self, since: float = 0.0) -> float:
        """Time-average fraction of capacity busy since time ``since``."""
        self._account()
        horizon = self.env.now - since
        if horizon <= 0:
            return 0.0
        return self._busy_integral / (horizon * self.capacity)

    def busy_time(self) -> float:
        """Cumulative busy server-seconds since creation or the last
        :meth:`reset_utilization` (used for windowed utilisation)."""
        self._account()
        return self._busy_integral

    def reset_utilization(self) -> None:
        """Restart the utilisation integral (e.g. after warm-up)."""
        self._account()
        self._busy_integral = 0.0

    # -- internals ----------------------------------------------------------

    def _account(self) -> None:
        now = self.env.now
        self._busy_integral += len(self.users) * (now - self._last_change)
        self._last_change = now

    def _enqueue_request(self, request: Request) -> None:
        self._account()
        self.queue.append(request)
        self._grant_waiters()

    def _cancel(self, request: Request) -> None:
        self._account()
        if request in self.users:
            self.users.remove(request)
            self._grant_waiters()
        elif request in self.queue:
            self.queue.remove(request)

    def _grant_waiters(self) -> None:
        queue = self.queue
        users = self.users
        capacity = self.capacity
        while queue and len(users) < capacity:
            if len(queue) == 1:
                # Single waiter (the common case under light
                # contention): no ordering to resolve.
                nxt = queue.pop()
            else:
                nxt = min(queue, key=_REQUEST_KEY)
                queue.remove(nxt)
            users.append(nxt)
            self.grants += 1
            nxt.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose requests honour the ``priority`` argument.

    Functionally identical to :class:`Resource` (priority ordering is
    already implemented in the request key); this subclass exists to make
    intent explicit at call sites.
    """


class Store:
    """Unbounded FIFO store of items with blocking retrieval.

    Used as a one-way mailbox: producers :meth:`put` items (never blocks),
    consumers ``yield store.get()`` and receive items in insertion order.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self.items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = self.env.event()
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self.items)
