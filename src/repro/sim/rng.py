"""Reproducible random-number streams for simulations.

Every stochastic component of a simulation (arrivals per site, class
choice, lock-reference draws, ...) draws from its *own* named stream, all
derived from a single master seed via :class:`numpy.random.SeedSequence`
spawning.  This gives two properties that matter for simulation studies:

* **Reproducibility** -- the same master seed reproduces the same sample
  path exactly, independent of dict ordering or call interleaving.
* **Common random numbers** -- comparing two routing strategies under the
  same seed exposes them to the same arrival pattern and data references,
  which sharpens paired comparisons (a classic variance-reduction
  technique and the reason the paper can rank closely-spaced curves).

The samplers pre-draw in growing vectorised batches: one
``Generator.exponential(size=n)`` call is bit-identical to ``n`` scalar
calls on the same generator (and likewise for ``integers``), so the
*delivered* per-stream draw order -- the only thing the simulation ever
observes -- is unchanged by buffering.  The buffer travels with the
sampler through pickling, so a sampler restored inside a
:class:`~repro.experiments.parallel.ParallelRunner` worker continues the
exact sequence.  A sampler therefore assumes *exclusive* ownership of
its generator: drawing from the underlying stream directly while a
sampler holds buffered values would desynchronise the two.  Every
sampler in this codebase is built on a name no other component touches.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams", "ExponentialSampler", "UniformIntSampler",
           "crn_seed"]


def crn_seed(base_seed: int, point_key: str, replication: int) -> int:
    """Master seed for one ``(experiment point, replication)`` pair.

    Common random numbers across *strategies*: the derivation hashes the
    base seed, a strategy-free point key (the arrival rate) and the
    replication index -- and deliberately nothing else -- so every
    strategy evaluated at the same load runs replication ``r`` on the
    **same** master seed, hence the same arrival pattern, class choices
    and lock references.  Positively correlated event streams make
    strategy-vs-strategy differences far less noisy than independent
    runs (see :func:`repro.sim.stats.paired_difference`).

    Unlike the legacy ``base_seed + replication`` scheme -- which reuses
    the *identical* sample path at every rate of a sweep -- distinct
    point keys and replication indices get independent entropy, so
    cross-replication variance estimates stay honest.

    The value is a 63-bit non-negative integer (blake2b digest of the
    joined material), stable across platforms and Python versions.
    """
    material = f"{base_seed}|{point_key}|{replication}".encode("utf-8")
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "little") >> 1


def _name_key(name: str) -> tuple[int, ...]:
    """Spawn-key words derived from the *full* stream name.

    A fixed-length blake2b digest keyed by every byte of the name: two
    distinct names always get distinct keys (up to hash collisions on a
    256-bit digest).  The previous derivation truncated the name to its
    first 16 bytes, silently aliasing any streams whose names shared a
    16-byte prefix -- e.g. two long per-site stream families.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=32).digest()
    return tuple(int.from_bytes(digest[i:i + 4], "little")
                 for i in range(0, 32, 4))

#: Pre-draw batch sizing: start small so short-lived samplers do not
#: waste entropy (the unused tail of a batch is simply never observed,
#: which is harmless for determinism but costs the vector-draw time),
#: then double up to the limit so long-running arrival streams amortise
#: the numpy call overhead over ~a thousand draws.
_BATCH_START = 64
_BATCH_LIMIT = 1024


class RandomStreams:
    """A factory of named, independent random generators.

    Streams are created lazily and cached by name; the same name always
    returns the same generator object within one :class:`RandomStreams`
    instance, and the same sequence of draws across instances built from
    the same master seed.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it if needed."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from the stream name so
            # that creation *order* does not matter.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + _name_key(name))
            gen = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = gen
        return gen

    def exponential(self, name: str, rate: float) -> "ExponentialSampler":
        """Sampler of exponential inter-arrival times with the given rate."""
        return ExponentialSampler(self.stream(name), rate)

    def uniform_int(self, name: str, low: int,
                    high: int) -> "UniformIntSampler":
        """Sampler of uniform integers in ``[low, high)``."""
        return UniformIntSampler(self.stream(name), low, high)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child :class:`RandomStreams`."""
        child = RandomStreams.__new__(RandomStreams)
        child.seed = self.seed
        child._root = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(0xFFFF,) + _name_key(name))
        child._streams = {}
        return child


class ExponentialSampler:
    """Draws exponential variates with a fixed rate (mean ``1/rate``).

    Draws are pre-computed in growing vectorised batches; the delivered
    sequence is bit-identical to scalar-by-scalar draws on the same
    generator (see the module docstring for the ownership contract).
    """

    def __init__(self, generator: np.random.Generator, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._generator = generator
        self.rate = float(rate)
        self._scale = 1.0 / self.rate
        self._buffer: list[float] = []
        self._next = 0
        self._batch = _BATCH_START

    def _refill(self) -> None:
        self._buffer = self._generator.exponential(
            self._scale, size=self._batch).tolist()
        self._next = 0
        if self._batch < _BATCH_LIMIT:
            self._batch = min(self._batch * 2, _BATCH_LIMIT)

    def __call__(self) -> float:
        i = self._next
        buffer = self._buffer
        if i >= len(buffer):
            self._refill()
            buffer = self._buffer
            i = 0
        self._next = i + 1
        return buffer[i]


class UniformIntSampler:
    """Draws uniform integers from ``[low, high)``.

    Scalar calls and :meth:`sample` vectors are served from one shared
    pre-draw buffer, so the delivered order matches an unbuffered
    sampler draw-for-draw no matter how the two entry points interleave.
    """

    def __init__(self, generator: np.random.Generator, low: int, high: int):
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        self._generator = generator
        self.low = int(low)
        self.high = int(high)
        self._buffer: list[int] = []
        self._next = 0
        self._batch = _BATCH_START

    def _refill(self, need: int = 1) -> None:
        size = max(self._batch, need)
        self._buffer = self._generator.integers(
            self.low, self.high, size=size).tolist()
        self._next = 0
        if self._batch < _BATCH_LIMIT:
            self._batch = min(self._batch * 2, _BATCH_LIMIT)

    def __call__(self) -> int:
        i = self._next
        buffer = self._buffer
        if i >= len(buffer):
            self._refill()
            buffer = self._buffer
            i = 0
        self._next = i + 1
        return buffer[i]

    def sample(self, size: int) -> np.ndarray:
        """Vector of ``size`` draws (used for per-transaction lock sets)."""
        out: list[int] = []
        while len(out) < size:
            if self._next >= len(self._buffer):
                self._refill(size - len(out))
            take = min(len(self._buffer) - self._next, size - len(out))
            out.extend(self._buffer[self._next:self._next + take])
            self._next += take
        return np.asarray(out, dtype=np.int64)
