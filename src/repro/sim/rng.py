"""Reproducible random-number streams for simulations.

Every stochastic component of a simulation (arrivals per site, class
choice, lock-reference draws, ...) draws from its *own* named stream, all
derived from a single master seed via :class:`numpy.random.SeedSequence`
spawning.  This gives two properties that matter for simulation studies:

* **Reproducibility** -- the same master seed reproduces the same sample
  path exactly, independent of dict ordering or call interleaving.
* **Common random numbers** -- comparing two routing strategies under the
  same seed exposes them to the same arrival pattern and data references,
  which sharpens paired comparisons (a classic variance-reduction
  technique and the reason the paper can rank closely-spaced curves).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams", "ExponentialSampler", "UniformIntSampler"]


class RandomStreams:
    """A factory of named, independent random generators.

    Streams are created lazily and cached by name; the same name always
    returns the same generator object within one :class:`RandomStreams`
    instance, and the same sequence of draws across instances built from
    the same master seed.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it if needed."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from the stream name so
            # that creation *order* does not matter.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) +
                tuple(int(x) for x in digest))
            gen = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = gen
        return gen

    def exponential(self, name: str, rate: float) -> "ExponentialSampler":
        """Sampler of exponential inter-arrival times with the given rate."""
        return ExponentialSampler(self.stream(name), rate)

    def uniform_int(self, name: str, low: int,
                    high: int) -> "UniformIntSampler":
        """Sampler of uniform integers in ``[low, high)``."""
        return UniformIntSampler(self.stream(name), low, high)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child :class:`RandomStreams`."""
        child = RandomStreams.__new__(RandomStreams)
        child.seed = self.seed
        digest = np.frombuffer(
            name.encode("utf-8").ljust(16, b"\0")[:16], dtype=np.uint32)
        child._root = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(0xFFFF,) + tuple(int(x) for x in digest))
        child._streams = {}
        return child


class ExponentialSampler:
    """Draws exponential variates with a fixed rate (mean ``1/rate``)."""

    def __init__(self, generator: np.random.Generator, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._generator = generator
        self.rate = float(rate)

    def __call__(self) -> float:
        return float(self._generator.exponential(1.0 / self.rate))


class UniformIntSampler:
    """Draws uniform integers from ``[low, high)``."""

    def __init__(self, generator: np.random.Generator, low: int, high: int):
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        self._generator = generator
        self.low = int(low)
        self.high = int(high)

    def __call__(self) -> int:
        return int(self._generator.integers(self.low, self.high))

    def sample(self, size: int) -> np.ndarray:
        """Vector of ``size`` draws (used for per-transaction lock sets)."""
        return self._generator.integers(self.low, self.high, size=size)
