"""Deterministic, seeded fault injection for hybrid-system simulations.

The paper's model assumes a perfect environment; this module supplies
the machinery to take it away on a schedule.  A :class:`FaultPlan` is an
immutable list of typed :class:`FaultEpisode` entries on the simulated
clock:

* ``central-outage``   -- the central complex becomes unreachable: every
  site<->central link drops all traffic for the episode (messages already
  in flight still arrive -- an outage severs the medium, it does not
  vaporise propagating signals);
* ``site-crash``       -- one local site stops accepting arrivals and its
  links go dark; transactions already running there continue (a modelling
  simplification documented in ``docs/ROBUSTNESS.md``);
* ``link-degradation`` -- the links of one site (or all sites) drop
  messages with a given probability and their delay is scaled and
  jittered;
* ``cpu-slowdown``     -- the CPU service times of the central complex
  (or one site) stretch by a factor.

A :class:`FaultInjector` process applies and reverts episodes at runtime.
Overlapping episodes compose: the effective state of every link and CPU
is recomputed from the currently active set (most degraded wins), so a
revert never accidentally heals a resource another episode still holds
down.

All randomness (drop decisions, jitter) flows from named
:class:`~repro.sim.rng.RandomStreams` substreams keyed by link name, so
two runs with the same seed and the same plan are bit-identical -- and a
run with an *empty* plan never touches a random stream, schedules no
events, and is bit-identical to a run without any plan at all.

:class:`RetryPolicy` collects the protocol-hardening knobs (channel
retransmission timeouts, the transaction-level shipment retry budget and
the snapshot staleness bound) so :class:`~repro.hybrid.config.SystemConfig`
-- and therefore every existing result-cache key -- stays untouched.
:class:`RecoveryPolicy` does the same for the recovery subsystem
(hot-standby failover, site rejoin with catch-up, and overload control);
all of its features default to *off*, and a plan whose recovery policy
is disabled serialises exactly as before, so failover-disabled runs stay
bit-identical to the pre-recovery behaviour.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hybrid.system import HybridSystem

__all__ = [
    "CENTRAL_OUTAGE", "SITE_CRASH", "LINK_DEGRADATION", "CPU_SLOWDOWN",
    "FAULT_KINDS", "FaultEpisode", "RetryPolicy", "RecoveryPolicy",
    "FaultPlan", "FaultInjector", "EpisodeReport", "RecoveryRecord",
    "episode_reports", "effective_central_state", "effective_site_state",
    "standard_outage_plan", "lossy_links_plan", "site_crash_plan",
    "chaos_plan", "failover_outage_plan", "rejoin_crash_plan",
    "breaker_flap_plan", "NAMED_PLANS", "resolve_fault_plan",
]

CENTRAL_OUTAGE = "central-outage"
SITE_CRASH = "site-crash"
LINK_DEGRADATION = "link-degradation"
CPU_SLOWDOWN = "cpu-slowdown"

FAULT_KINDS = (CENTRAL_OUTAGE, SITE_CRASH, LINK_DEGRADATION, CPU_SLOWDOWN)


@dataclass(frozen=True)
class FaultEpisode:
    """One scheduled fault: a kind, a target, a window and parameters.

    ``site`` selects the target where it matters: the crashing site for
    ``site-crash``; one site's link pair for ``link-degradation`` (or
    ``None`` for every pair); the slowed site for ``cpu-slowdown`` (or
    ``None`` for the central complex).
    """

    kind: str
    start: float
    duration: float
    site: int | None = None
    #: link-degradation parameters
    drop_probability: float = 0.0
    jitter: float = 0.0
    delay_factor: float = 1.0
    #: cpu-slowdown parameter (service-time multiplier, > 1 is slower)
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}")
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"episode window must satisfy start >= 0, duration > 0 "
                f"(got start={self.start}, duration={self.duration})")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], "
                f"got {self.drop_probability}")
        if self.jitter < 0:
            raise ValueError(f"negative jitter {self.jitter}")
        if self.delay_factor <= 0:
            raise ValueError(
                f"delay_factor must be positive, got {self.delay_factor}")
        if self.slowdown <= 0:
            raise ValueError(
                f"slowdown must be positive, got {self.slowdown}")
        if self.kind == SITE_CRASH and self.site is None:
            raise ValueError("site-crash episodes need a target site")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class RetryPolicy:
    """Protocol-hardening parameters used when a fault plan is active.

    ``message_timeout``/``backoff``/``max_message_timeout`` drive the
    reliable channel's retransmission timers (unbounded retries, capped
    backoff).  ``shipment_timeout``/``shipment_attempts`` bound the
    *transaction-level* wait for a shipped transaction's response: after
    the budget is exhausted the home site suspects the central complex,
    cancels the shipment, and -- for class A -- falls back to local
    execution.  ``snapshot_max_age`` ages out stale central state: a
    site whose :class:`~repro.hybrid.protocol.CentralSnapshot` is older
    routes class A work locally instead of trusting it.
    """

    message_timeout: float = 1.0
    backoff: float = 2.0
    max_message_timeout: float = 8.0
    shipment_timeout: float = 2.0
    shipment_attempts: int = 3
    snapshot_max_age: float = 10.0

    def __post_init__(self) -> None:
        if self.message_timeout <= 0:
            raise ValueError(
                f"message_timeout must be positive, "
                f"got {self.message_timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_message_timeout < self.message_timeout:
            raise ValueError("max_message_timeout < message_timeout")
        if self.shipment_timeout <= 0 or self.shipment_attempts < 1:
            raise ValueError(
                f"invalid shipment retry budget "
                f"(timeout {self.shipment_timeout}, "
                f"attempts {self.shipment_attempts})")
        if self.snapshot_max_age <= 0:
            raise ValueError(
                f"snapshot_max_age must be positive, "
                f"got {self.snapshot_max_age}")


@dataclass(frozen=True)
class RecoveryPolicy:
    """Recovery and overload-control knobs (everything defaults to off).

    Like :class:`RetryPolicy`, this rides on the :class:`FaultPlan`
    rather than on :class:`~repro.hybrid.config.SystemConfig`, so plain
    runs and existing cache keys are untouched.  Three independent
    feature groups:

    * ``failover`` -- wire a hot-standby central that receives the
      primary's update stream over a reliable log channel, detects
      primary death by heartbeat lease (``heartbeat_interval`` /
      ``lease_timeout``) and deterministically takes over
      (``instr_takeover`` CPU instructions, ``instr_log_replay`` per
      shipped log record applied).
    * ``rejoin`` -- a crashed site loses its volatile state (running
      transactions, lock table, replica, update buffers) and on episode
      end runs an explicit catch-up: snapshot request to the active
      central (``instr_snapshot`` to build, ``instr_snapshot_apply`` to
      install) before queued arrivals are admitted.
    * overload control -- ``admission_limit`` bounds each node's
      resident transaction set (excess arrivals are shed);
      ``deadline`` > 0 stamps every transaction with an end-to-end
      deadline propagated through shipment/auth messages and cancelled
      early via the ``ShipmentCancel`` handshake;
      ``breaker_threshold`` > 0 arms a circuit breaker on the
      site->central path that opens after that many consecutive
      shipment timeouts and half-opens after ``breaker_cooldown``
      seconds, admitting probe shipments with probability
      ``breaker_probe`` drawn from the named ``breaker:site-N`` stream.
    """

    failover: bool = False
    heartbeat_interval: float = 0.5
    lease_timeout: float = 2.0
    instr_takeover: int = 150_000
    instr_log_replay: int = 15_000
    rejoin: bool = False
    instr_snapshot: int = 60_000
    instr_snapshot_apply: int = 60_000
    admission_limit: int = 0
    deadline: float = 0.0
    breaker_threshold: int = 0
    breaker_cooldown: float = 4.0
    breaker_probe: float = 0.5

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, "
                f"got {self.heartbeat_interval}")
        if self.lease_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"lease_timeout ({self.lease_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval})")
        for name in ("instr_takeover", "instr_log_replay",
                     "instr_snapshot", "instr_snapshot_apply"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.admission_limit < 0:
            raise ValueError(
                f"admission_limit must be >= 0, got {self.admission_limit}")
        if self.deadline < 0:
            raise ValueError(f"deadline must be >= 0, got {self.deadline}")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, "
                f"got {self.breaker_threshold}")
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, "
                f"got {self.breaker_cooldown}")
        if not 0.0 < self.breaker_probe <= 1.0:
            raise ValueError(
                f"breaker_probe must be in (0, 1], "
                f"got {self.breaker_probe}")

    @property
    def enabled(self) -> bool:
        """True when any recovery/overload feature is switched on."""
        return bool(self.failover or self.rejoin or
                    self.admission_limit > 0 or self.deadline > 0 or
                    self.breaker_threshold > 0)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault episodes plus the retry policy."""

    episodes: tuple[FaultEpisode, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "episodes", tuple(self.episodes))

    @staticmethod
    def empty() -> "FaultPlan":
        return FaultPlan()

    @property
    def is_empty(self) -> bool:
        return not self.episodes

    def scaled(self, factor: float) -> "FaultPlan":
        """Stretch or shrink every episode's schedule by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(self, episodes=tuple(
            replace(ep, start=ep.start * factor,
                    duration=ep.duration * factor)
            for ep in self.episodes))

    def with_recovery(self, recovery: RecoveryPolicy) -> "FaultPlan":
        """The same schedule with a different recovery policy."""
        return replace(self, recovery=recovery)

    # -- serialisation -------------------------------------------------------

    def as_dict(self) -> dict:
        """Canonical plain-data rendering (cache keys, JSON export).

        The ``recovery`` block is emitted only when the policy differs
        from the all-defaults one, so plans that predate the recovery
        subsystem keep byte-identical renderings (and JSON round-trip
        stays the identity in both directions).
        """
        data = {
            "episodes": [
                {
                    "kind": ep.kind, "start": ep.start,
                    "duration": ep.duration, "site": ep.site,
                    "drop_probability": ep.drop_probability,
                    "jitter": ep.jitter,
                    "delay_factor": ep.delay_factor,
                    "slowdown": ep.slowdown,
                }
                for ep in self.episodes
            ],
            "retry": {
                "message_timeout": self.retry.message_timeout,
                "backoff": self.retry.backoff,
                "max_message_timeout": self.retry.max_message_timeout,
                "shipment_timeout": self.retry.shipment_timeout,
                "shipment_attempts": self.retry.shipment_attempts,
                "snapshot_max_age": self.retry.snapshot_max_age,
            },
        }
        if self.recovery != RecoveryPolicy():
            data["recovery"] = {
                name: getattr(self.recovery, name)
                for name in ("failover", "heartbeat_interval",
                             "lease_timeout", "instr_takeover",
                             "instr_log_replay", "rejoin",
                             "instr_snapshot", "instr_snapshot_apply",
                             "admission_limit", "deadline",
                             "breaker_threshold", "breaker_cooldown",
                             "breaker_probe")
            }
        return data

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        episodes = tuple(FaultEpisode(**entry)
                         for entry in data.get("episodes", ()))
        retry = RetryPolicy(**data.get("retry", {}))
        recovery = RecoveryPolicy(**data.get("recovery", {}))
        return FaultPlan(episodes=episodes, retry=retry, recovery=recovery)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        return FaultPlan.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Canned plans.  Schedules are phrased relative to the run's horizon so the
# same plan name works at any --scale.
# ---------------------------------------------------------------------------


def standard_outage_plan(warmup_time: float = 30.0,
                         measure_time: float = 90.0,
                         retry: RetryPolicy | None = None) -> FaultPlan:
    """The standard availability scenario: one total central outage.

    The outage opens a quarter of the way into the measurement window
    and lasts a fifth of it, leaving room to observe degraded operation
    *and* recovery before the horizon.
    """
    start = warmup_time + 0.25 * measure_time
    duration = 0.20 * measure_time
    return FaultPlan(
        episodes=(FaultEpisode(kind=CENTRAL_OUTAGE, start=start,
                               duration=duration),),
        retry=retry or RetryPolicy())


def lossy_links_plan(warmup_time: float = 30.0,
                     measure_time: float = 90.0,
                     drop_probability: float = 0.2,
                     retry: RetryPolicy | None = None) -> FaultPlan:
    """Every link drops messages and jitters for the middle half."""
    start = warmup_time + 0.25 * measure_time
    duration = 0.50 * measure_time
    return FaultPlan(
        episodes=(FaultEpisode(kind=LINK_DEGRADATION, start=start,
                               duration=duration,
                               drop_probability=drop_probability,
                               jitter=0.1, delay_factor=1.5),),
        retry=retry or RetryPolicy())


def site_crash_plan(warmup_time: float = 30.0,
                    measure_time: float = 90.0, site: int = 0,
                    retry: RetryPolicy | None = None) -> FaultPlan:
    """One local site crashes and later recovers."""
    start = warmup_time + 0.25 * measure_time
    duration = 0.25 * measure_time
    return FaultPlan(
        episodes=(FaultEpisode(kind=SITE_CRASH, start=start,
                               duration=duration, site=site),),
        retry=retry or RetryPolicy())


def chaos_plan(warmup_time: float = 30.0, measure_time: float = 90.0,
               retry: RetryPolicy | None = None) -> FaultPlan:
    """The CI chaos scenario: lossy links plus a central outage.

    The link degradation brackets the outage so recovery happens into a
    still-imperfect network, plus a central CPU slowdown on re-entry
    (a 'cold cache' approximation).
    """
    lossy_start = warmup_time + 0.10 * measure_time
    outage_start = warmup_time + 0.35 * measure_time
    return FaultPlan(
        episodes=(
            FaultEpisode(kind=LINK_DEGRADATION, start=lossy_start,
                         duration=0.60 * measure_time,
                         drop_probability=0.15, jitter=0.05,
                         delay_factor=1.2),
            FaultEpisode(kind=CENTRAL_OUTAGE, start=outage_start,
                         duration=0.15 * measure_time),
            FaultEpisode(kind=CPU_SLOWDOWN,
                         start=outage_start + 0.15 * measure_time,
                         duration=0.10 * measure_time, slowdown=2.0),
        ),
        retry=retry or RetryPolicy())


def failover_outage_plan(warmup_time: float = 30.0,
                         measure_time: float = 90.0,
                         retry: RetryPolicy | None = None) -> FaultPlan:
    """The standard central outage, survived by hot-standby failover.

    Identical schedule to :func:`standard_outage_plan`; the recovery
    policy arms the standby so class-B work keeps completing during the
    episode instead of failing permanently.
    """
    plan = standard_outage_plan(warmup_time, measure_time, retry)
    return plan.with_recovery(RecoveryPolicy(failover=True))


def rejoin_crash_plan(warmup_time: float = 30.0,
                      measure_time: float = 90.0, site: int = 0,
                      retry: RetryPolicy | None = None) -> FaultPlan:
    """A site crash with volatile-state loss and explicit rejoin.

    Identical schedule to :func:`site_crash_plan`; the recovery policy
    makes the crash lose volatile state, queue arrivals (bounded) and
    run the snapshot catch-up protocol at episode end.
    """
    plan = site_crash_plan(warmup_time, measure_time, site, retry)
    return plan.with_recovery(RecoveryPolicy(rejoin=True,
                                             admission_limit=64))


def breaker_flap_plan(warmup_time: float = 30.0,
                      measure_time: float = 90.0,
                      retry: RetryPolicy | None = None) -> FaultPlan:
    """Heavy link loss exercising the full overload-control stack.

    Lossy enough that shipments repeatedly time out, tripping the
    site->central circuit breaker, which then half-opens into a network
    that is still degraded (flapping).  Deadlines and admission bounds
    are armed so shedding and early cancellation fire too.
    """
    start = warmup_time + 0.15 * measure_time
    duration = 0.60 * measure_time
    plan = FaultPlan(
        episodes=(FaultEpisode(kind=LINK_DEGRADATION, start=start,
                               duration=duration,
                               drop_probability=0.35, jitter=0.1,
                               delay_factor=1.5),),
        retry=retry or RetryPolicy())
    return plan.with_recovery(RecoveryPolicy(
        breaker_threshold=2, breaker_cooldown=3.0, breaker_probe=0.5,
        admission_limit=96, deadline=12.0))


NAMED_PLANS = {
    "central-outage": standard_outage_plan,
    "lossy-links": lossy_links_plan,
    "site-crash": site_crash_plan,
    "chaos": chaos_plan,
    "central-outage-failover": failover_outage_plan,
    "site-crash-rejoin": rejoin_crash_plan,
    "breaker-flap": breaker_flap_plan,
}


def resolve_fault_plan(spec: str, warmup_time: float,
                       measure_time: float) -> FaultPlan:
    """Turn a ``--fault-plan`` argument into a plan.

    ``spec`` is either a canned plan name (see :data:`NAMED_PLANS`,
    scheduled relative to the given horizon) or the path of a JSON file
    produced by :meth:`FaultPlan.to_json` (absolute simulated times).
    """
    builder = NAMED_PLANS.get(spec)
    if builder is not None:
        return builder(warmup_time=warmup_time, measure_time=measure_time)
    try:
        with open(spec, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ValueError(
            f"--fault-plan {spec!r} is neither a canned plan "
            f"({', '.join(sorted(NAMED_PLANS))}) nor a readable JSON "
            f"file: {exc}") from exc
    return FaultPlan.from_json(text)


# ---------------------------------------------------------------------------
# Runtime injection.
# ---------------------------------------------------------------------------


def effective_central_state(active: Sequence[FaultEpisode]
                            ) -> tuple[bool, float]:
    """Compose the central complex's ``(down, slowdown)`` state.

    Pure function of the currently active episode set; order-independent
    (overlap composition is commutative), which the property suite
    checks directly.
    """
    down = any(ep.kind == CENTRAL_OUTAGE for ep in active)
    slow = 1.0
    for ep in active:
        if ep.kind == CPU_SLOWDOWN and ep.site is None:
            slow = max(slow, ep.slowdown)
    return down, slow


def effective_site_state(active: Sequence[FaultEpisode], site_id: int,
                         central_down: bool | None = None
                         ) -> tuple[bool, float, float, float, float]:
    """Compose one site's ``(down, slow, drop, jitter, delay_factor)``.

    Pure and order-independent, like :func:`effective_central_state`.
    ``central_down`` may be precomputed; ``None`` derives it from
    ``active``.
    """
    if central_down is None:
        central_down = any(ep.kind == CENTRAL_OUTAGE for ep in active)
    site_down = any(ep.kind == SITE_CRASH and ep.site == site_id
                    for ep in active)
    slow = 1.0
    drop = 1.0 if (central_down or site_down) else 0.0
    jitter = 0.0
    factor = 1.0
    for ep in active:
        if ep.kind == CPU_SLOWDOWN and ep.site == site_id:
            slow = max(slow, ep.slowdown)
        if ep.kind == LINK_DEGRADATION and ep.site in (None, site_id):
            drop = max(drop, ep.drop_probability)
            jitter = max(jitter, ep.jitter)
            factor = max(factor, ep.delay_factor)
    return site_down, slow, drop, jitter, factor


class FaultInjector:
    """Applies and reverts a :class:`FaultPlan` against a live system.

    One simulation process per episode sleeps until the episode's start,
    recomputes the affected resources' effective state, sleeps through
    the duration and recomputes again.  The effective state of a link or
    CPU is always derived from the full set of *currently active*
    episodes, so overlapping faults compose (most degraded wins) and
    reverting one never heals a resource another still degrades.
    """

    def __init__(self, system: "HybridSystem", plan: FaultPlan):
        self.system = system
        self.env = system.env
        self.plan = plan
        self._active: list[FaultEpisode] = []
        #: Episodes whose full apply/revert cycle has run (for reports).
        self.applied: list[FaultEpisode] = []
        for index, episode in enumerate(plan.episodes):
            self.env.process(self._drive(episode),
                             name=f"fault-{index}:{episode.kind}")

    def _drive(self, episode: FaultEpisode):
        if episode.start > 0:
            yield self.env.timeout(episode.start)
        self._active.append(episode)
        self.system.metrics.record_fault(episode.kind, "apply",
                                         site=episode.site)
        self._refresh()
        if episode.kind == SITE_CRASH and self._rejoin_enabled():
            self.system.sites[episode.site].on_crash()
        yield self.env.timeout(episode.duration)
        self._active.remove(episode)
        self.applied.append(episode)
        self.system.metrics.record_fault(episode.kind, "revert",
                                         site=episode.site)
        self._refresh()
        if episode.kind == SITE_CRASH and self._rejoin_enabled():
            self.system.sites[episode.site].begin_rejoin()

    def _rejoin_enabled(self) -> bool:
        return self.plan.recovery.rejoin

    # -- effective-state computation ----------------------------------------

    def _set_link_fault(self, link, drop: float, jitter: float,
                        factor: float) -> None:
        if drop == 0.0 and jitter == 0.0 and factor == 1.0:
            link.clear_fault()
        else:
            rng = (self.system.streams.stream(f"fault-link:{link.name}")
                   if (0.0 < drop < 1.0 or jitter > 0.0) else None)
            link.set_fault(drop_probability=drop, jitter=jitter,
                           delay_factor=factor, rng=rng)

    def _refresh(self) -> None:
        system = self.system
        central_down, central_slow = effective_central_state(self._active)
        system.central.down = central_down
        system.central.service_scale = central_slow

        # A central outage also severs the primary<->standby log links
        # (the standby's own site links stay up -- that is the point of
        # a *hot* standby on independent infrastructure).
        standby = getattr(system, "standby", None)
        if standby is not None:
            for link in standby.log_links:
                self._set_link_fault(link, 1.0 if central_down else 0.0,
                                     0.0, 1.0)

        for site in system.sites:
            site_down, slow, drop, jitter, factor = effective_site_state(
                self._active, site.site_id, central_down=central_down)
            site.down = site_down
            site.service_scale = slow
            for link in (site.to_central, site.from_central):
                self._set_link_fault(link, drop, jitter, factor)
            # The site's standby links share the site's fate (crash,
            # degradation) but not the central outage: the standby is
            # reachable while the primary is dark.
            if standby is not None:
                _, _, sdrop, sjitter, sfactor = effective_site_state(
                    self._active, site.site_id, central_down=False)
                for link in site.standby_links:
                    self._set_link_fault(link, sdrop, sjitter, sfactor)


# ---------------------------------------------------------------------------
# Availability reporting.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryRecord:
    """One completed recovery-protocol run (failover or rejoin).

    ``started`` anchors the measurement at the failure: for a failover
    it is the last heartbeat the standby heard before declaring the
    primary dead (within one heartbeat interval of the actual outage
    start); for a rejoin it is the moment the crash episode ended and
    repair could begin.  ``completed`` is when service was restored
    (failover notices broadcast / catch-up snapshot installed), so
    ``duration`` is the protocol-level repair time the MTTR averages.
    """

    kind: str  # "failover" | "rejoin"
    site: int | None
    started: float
    completed: float

    @property
    def duration(self) -> float:
        return self.completed - self.started


@dataclass(frozen=True)
class EpisodeReport:
    """Availability summary of one completed fault episode.

    ``baseline_throughput`` averages the committed throughput of the
    telemetry windows immediately before the episode,
    ``degraded_throughput`` the windows overlapping it, and
    ``time_to_recover`` is the delay from the episode's end until a
    window's throughput first regains ``recovery_fraction`` of the
    baseline (``None`` when the run ended first or no baseline exists).
    ``recovery_time`` is the protocol-level repair duration of the
    matched :class:`RecoveryRecord` (``None`` when no recovery protocol
    ran for this episode).
    """

    kind: str
    site: int | None
    start: float
    end: float
    baseline_throughput: float
    degraded_throughput: float
    time_to_recover: float | None
    recovery_time: float | None = None


def _match_recovery(episode: FaultEpisode,
                    recoveries: list[RecoveryRecord]
                    ) -> RecoveryRecord | None:
    """Pop the recovery record belonging to ``episode``, if any."""
    for index, rec in enumerate(recoveries):
        if rec.kind == "failover" and episode.kind == CENTRAL_OUTAGE and \
                episode.start - 1e-9 <= rec.completed and \
                rec.started <= episode.end + 1e-9:
            return recoveries.pop(index)
        if rec.kind == "rejoin" and episode.kind == SITE_CRASH and \
                rec.site == episode.site and \
                rec.started >= episode.end - 1e-9:
            return recoveries.pop(index)
    return None


def episode_reports(episodes: Sequence[FaultEpisode], windows: Sequence,
                    baseline_windows: int = 10,
                    recovery_fraction: float = 0.7,
                    recoveries: Sequence[RecoveryRecord] = ()
                    ) -> tuple[EpisodeReport, ...]:
    """Compute per-episode availability summaries from telemetry windows.

    ``windows`` is any sequence with ``start``/``end``/``throughput``
    attributes (duck-typed so this module needs no import from
    :mod:`repro.hybrid`).  ``recoveries`` are the recovery-protocol
    completions observed during the run; each is matched to its episode
    (first unmatched record wins) to fill ``recovery_time``.
    """
    reports = []
    unmatched = list(recoveries)
    for episode in episodes:
        before = [w.throughput for w in windows if w.end <= episode.start]
        during = [w.throughput for w in windows
                  if w.end > episode.start and w.start < episode.end]
        baseline = (sum(before[-baseline_windows:]) /
                    len(before[-baseline_windows:])) if before else 0.0
        degraded = sum(during) / len(during) if during else 0.0
        recovery: float | None = None
        if baseline > 0.0:
            target = recovery_fraction * baseline
            for window in windows:
                if window.start >= episode.end and \
                        window.throughput >= target:
                    recovery = window.end - episode.end
                    break
        matched = _match_recovery(episode, unmatched)
        reports.append(EpisodeReport(
            kind=episode.kind, site=episode.site, start=episode.start,
            end=episode.end, baseline_throughput=baseline,
            degraded_throughput=degraded, time_to_recover=recovery,
            recovery_time=matched.duration if matched else None))
    return tuple(reports)
