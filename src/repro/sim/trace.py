"""Structured event tracing for simulations.

A :class:`Tracer` records timestamped, typed trace records.  Tracing is
off by default (a :class:`NullTracer` swallows records with near-zero
cost) and can be enabled per-run for debugging protocol interactions or
producing event logs for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer", "NullTracer", "make_tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, what kind of event, and free-form details."""

    time: float
    kind: str
    details: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        parts = " ".join(f"{key}={value}" for key, value in
                         sorted(self.details.items()))
        return f"[{self.time:12.6f}] {self.kind:<24} {parts}"


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by kind."""

    enabled = True

    def __init__(self, kinds: set[str] | None = None,
                 sink: Callable[[TraceRecord], None] | None = None,
                 max_records: int | None = None):
        self.kinds = kinds
        self.sink = sink
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.dropped = 0

    def emit(self, time: float, kind: str, **details: Any) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        record = TraceRecord(time, kind, details)
        if self.max_records is not None and \
                len(self.records) >= self.max_records:
            self.dropped += 1
        else:
            self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def filter(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate over records of one kind."""
        return (record for record in self.records if record.kind == kind)

    def counts(self) -> dict[str, int]:
        """Histogram of record kinds."""
        histogram: dict[str, int] = {}
        for record in self.records:
            histogram[record.kind] = histogram.get(record.kind, 0) + 1
        return histogram

    def dump(self) -> str:
        return "\n".join(record.format() for record in self.records)


class NullTracer:
    """A tracer that records nothing (the default)."""

    enabled = False
    records: list[TraceRecord] = []

    def emit(self, time: float, kind: str, **details: Any) -> None:
        return

    def filter(self, kind: str) -> Iterator[TraceRecord]:
        return iter(())

    def counts(self) -> dict[str, int]:
        return {}

    def dump(self) -> str:
        return ""


def make_tracer(enabled: bool = False, *,
                kinds: set[str] | None = None,
                max_records: int | None = 100_000) -> Tracer | NullTracer:
    """Factory: a real :class:`Tracer` if ``enabled`` else a null one."""
    if enabled:
        return Tracer(kinds=kinds, max_records=max_records)
    return NullTracer()
