"""Structured event tracing for simulations.

A :class:`Tracer` records timestamped, typed trace records.  Tracing is
off by default (a :class:`NullTracer` swallows records with near-zero
cost) and can be enabled per-run for debugging protocol interactions or
producing event logs for the examples.

Memory bounding and sinks
-------------------------

``max_records`` caps the *in-memory* buffer only: once the cap is
reached further records are counted in :attr:`Tracer.dropped` instead of
buffered.  A ``sink`` callback, by contrast, receives **every** record
that passes the kind filter -- including those dropped from the buffer.
Combining a streaming sink (e.g. a JSONL file writer, see
:func:`repro.experiments.export.write_trace_jsonl`) with a small
``max_records`` therefore gives a complete on-disk trace with bounded
memory.  :meth:`Tracer.counts` and :meth:`Tracer.dump` surface the
dropped count so a truncated buffer is never mistaken for a complete
log.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer", "NullTracer", "make_tracer",
           "TraceDigest"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, what kind of event, and free-form details."""

    time: float
    kind: str
    details: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        parts = " ".join(f"{key}={value}" for key, value in
                         sorted(self.details.items()))
        return f"[{self.time:12.6f}] {self.kind:<24} {parts}"

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable flat form (used by the JSONL exporter)."""
        return {"time": self.time, "kind": self.kind, **self.details}


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by kind."""

    enabled = True

    def __init__(self, kinds: set[str] | None = None,
                 sink: Callable[[TraceRecord], None] | None = None,
                 max_records: int | None = None):
        self.kinds = kinds
        self.sink = sink
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.dropped = 0

    def emit(self, time: float, kind: str, **details: Any) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        record = TraceRecord(time, kind, details)
        if self.max_records is not None and \
                len(self.records) >= self.max_records:
            self.dropped += 1
        else:
            self.records.append(record)
        # The sink sees every record, buffered or dropped (see module
        # docstring): streaming exporters must not be truncated by the
        # in-memory cap.
        if self.sink is not None:
            self.sink(record)

    def filter(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate over records of one kind."""
        return (record for record in self.records if record.kind == kind)

    def counts(self) -> dict[str, int]:
        """Histogram of buffered record kinds.

        When the ``max_records`` cap truncated the buffer, the histogram
        carries an extra ``"dropped"`` pseudo-kind so consumers see that
        the log is incomplete.
        """
        histogram: dict[str, int] = {}
        for record in self.records:
            histogram[record.kind] = histogram.get(record.kind, 0) + 1
        if self.dropped:
            histogram["dropped"] = self.dropped
        return histogram

    def dump(self) -> str:
        lines = [record.format() for record in self.records]
        if self.dropped:
            lines.append(f"... {self.dropped} record(s) dropped "
                         f"(max_records={self.max_records})")
        return "\n".join(lines)


class NullTracer:
    """A tracer that records nothing (the default).

    ``records`` is a fresh per-instance list (never written to), so two
    runs sharing the default tracer can never alias state through a
    mutable class attribute.
    """

    enabled = False

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self.dropped = 0

    def emit(self, time: float, kind: str, **details: Any) -> None:
        return

    def filter(self, kind: str) -> Iterator[TraceRecord]:
        return iter(())

    def counts(self) -> dict[str, int]:
        return {}

    def dump(self) -> str:
        return ""


class TraceDigest:
    """Streaming SHA-256 fingerprint of a trace (a :class:`Tracer` sink).

    Records are hashed in their canonical JSON form (sorted keys, times
    rounded to nanosecond-scale precision so the digest is insensitive to
    sub-rounding float-repr noise but still pins the full event stream).
    Because sinks see *every* record -- including those dropped from the
    in-memory buffer -- the digest covers the complete run even with a
    small ``max_records``.  Used by the golden-trace regression checks
    (:mod:`repro.verify.golden`).
    """

    #: Decimal places timestamps / float payloads are rounded to.
    PRECISION = 9

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.records = 0

    def __call__(self, record: TraceRecord) -> None:
        self.records += 1
        payload = {"time": round(record.time, self.PRECISION),
                   "kind": record.kind}
        for key, value in record.details.items():
            if isinstance(value, float):
                value = round(value, self.PRECISION)
            payload[key] = value
        self._hash.update(json.dumps(payload, sort_keys=True,
                                     default=str).encode("utf-8"))
        self._hash.update(b"\n")

    def hexdigest(self) -> str:
        """Digest over every record seen so far."""
        return self._hash.hexdigest()


def make_tracer(enabled: bool = False, *,
                kinds: set[str] | None = None,
                sink: Callable[[TraceRecord], None] | None = None,
                max_records: int | None = 100_000) -> Tracer | NullTracer:
    """Factory: a real :class:`Tracer` if ``enabled`` else a null one."""
    if enabled:
        return Tracer(kinds=kinds, sink=sink, max_records=max_records)
    return NullTracer()
