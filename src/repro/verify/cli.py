"""``hybriddb-verify``: run the correctness-verification suite.

Examples::

    hybriddb-verify --list             # enumerate every check
    hybriddb-verify --quick            # shortened horizons, all checks
    hybriddb-verify --only md1-response-time --only golden-baseline-none
    hybriddb-verify --kind oracle      # one family only
    hybriddb-verify --update-golden    # regenerate tests/golden/*.json

Exit status is 0 when every selected check passes, 1 otherwise.  The
same registries back the pytest wiring (``tests/test_verify_*.py``), so
the CLI and the test suite can never drift apart on what is checked.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..obs.logconf import add_logging_flags, setup_cli_logging
from .base import Check, CheckResult, VerifySettings
from .differential import DIFFERENTIAL_PAIRS
from .golden import GOLDEN_DIR_ENV, GOLDEN_SCENARIOS, update_goldens
from .metamorphic import RELATIONS
from .oracle import ORACLES

__all__ = ["main", "all_checks", "run_selected"]

#: Horizon scale used by ``--quick`` (goldens pin their own horizons and
#: are unaffected).
QUICK_SCALE = 0.5

KINDS = ("oracle", "relation", "golden", "differential")


def all_checks() -> dict[str, Check]:
    """Every registered check, name-keyed (names are globally unique)."""
    combined: dict[str, Check] = {}
    for family in (ORACLES, RELATIONS, GOLDEN_SCENARIOS,
                   DIFFERENTIAL_PAIRS):
        for name, check in family.items():
            if name in combined:
                raise ValueError(f"duplicate check name {name!r}")
            combined[name] = check
    return combined


def _select(names: list[str] | None, kinds: list[str] | None) -> list[Check]:
    checks = all_checks()
    if names:
        unknown = [name for name in names if name not in checks]
        if unknown:
            raise SystemExit(
                f"unknown check(s): {', '.join(unknown)} "
                f"(see hybriddb-verify --list)")
        selected = [checks[name] for name in names]
    else:
        selected = list(checks.values())
    if kinds:
        selected = [check for check in selected if check.kind in kinds]
    order = {kind: index for index, kind in enumerate(KINDS)}
    return sorted(selected, key=lambda c: (order[c.kind], c.name))


def run_selected(checks: list[Check],
                 settings: VerifySettings,
                 stream=None) -> list[CheckResult]:
    """Run checks in order, reporting each as it finishes."""
    stream = stream or sys.stdout
    results = []
    for check in checks:
        result = check.run(settings)
        results.append(result)
        print(f"{result.status:4s} [{result.kind:>12s}] "
              f"{result.name:<28s} ({result.elapsed:6.1f}s)", file=stream)
        if not result.passed:
            for line in result.details.splitlines():
                print(f"       {line}", file=stream)
    return results


def _list_checks(stream=None) -> None:
    stream = stream or sys.stdout
    checks = _select(None, None)
    current_kind = None
    for check in checks:
        if check.kind != current_kind:
            current_kind = check.kind
            print(f"\n{current_kind}s:", file=stream)
        print(f"  {check.name:<28s} {check.description}", file=stream)
    print(f"\n{len(checks)} check(s) registered", file=stream)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hybriddb-verify",
        description="Run the correctness-verification suite: analytic "
                    "oracles, metamorphic relations, golden-trace "
                    "fingerprints, and differential run pairs.")
    parser.add_argument("--list", action="store_true",
                        help="enumerate the registered checks and exit")
    parser.add_argument("--quick", action="store_true",
                        help=f"shorten simulated horizons (scale "
                             f"{QUICK_SCALE}); goldens are unaffected")
    parser.add_argument("--update-golden", action="store_true",
                        help="regenerate the golden fingerprint files "
                             "and exit")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="run only the named check (repeatable)")
    parser.add_argument("--kind", action="append", choices=KINDS,
                        help="run only checks of this family "
                             "(repeatable)")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed for the simulated checks "
                             "(goldens pin their own seeds)")
    parser.add_argument("--scale", type=float, default=None,
                        help="explicit horizon scale (overrides --quick)")
    parser.add_argument("--golden-dir", metavar="DIR", default=None,
                        help="directory for golden files (default: the "
                             "repo's tests/golden)")
    add_logging_flags(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_cli_logging(args)

    if args.golden_dir:
        os.environ[GOLDEN_DIR_ENV] = args.golden_dir

    if args.list:
        _list_checks()
        return 0

    if args.update_golden:
        written = update_goldens(names=[
            name.removeprefix("golden-") for name in (args.only or [])
        ] or None)
        for path in written:
            print(f"wrote {path}")
        if not written:
            print("no golden scenarios matched", file=sys.stderr)
            return 1
        return 0

    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.scale is not None:
        overrides["scale"] = args.scale
    elif args.quick:
        overrides["scale"] = QUICK_SCALE
    settings = VerifySettings(**overrides)

    try:
        checks = _select(args.only, args.kind)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    if not checks:
        print("no checks selected", file=sys.stderr)
        return 2

    print(f"running {len(checks)} check(s) "
          f"(seed={settings.seed}, scale={settings.scale:g})")
    results = run_selected(checks, settings)
    failed = [result for result in results if not result.passed]
    total_time = sum(result.elapsed for result in results)
    print(f"\n{len(results)} check(s) in {total_time:.1f}s: "
          f"{len(results) - len(failed)} passed, {len(failed)} failed")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
