"""Golden-trace regression: canonical run fingerprints pinned to JSON.

Each :class:`Scenario` pins one exact simulation -- strategy, rate,
horizon and seed are all fixed (``VerifySettings.scale`` is deliberately
ignored) -- and summarises it into a *fingerprint*: event counts,
response-time summaries, utilisations, and a SHA-256 digest of the full
trace stream (:class:`~repro.sim.trace.TraceDigest`).  The fingerprints
live in ``tests/golden/*.json``; a golden check re-simulates the
scenario and demands byte-level agreement, reporting discrepancies as a
diff of flattened paths.

The digest makes the check sensitive to *any* reordering or change of
the event stream, while the structured counters localise what changed
when it fires.  ``hybriddb-verify --update-golden`` regenerates the
files; regeneration is deterministic, so two consecutive updates are
byte-identical.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, replace
from pathlib import Path

from ..experiments.runner import RunSettings, run_single
from ..sim.trace import TraceDigest, Tracer
from .base import Check, VerifySettings, registry
from .compare import diff, format_diff

__all__ = ["Scenario", "SCENARIOS", "GOLDEN_SCENARIOS", "golden_dir",
           "fingerprint", "golden_path", "update_goldens", "run_goldens"]

#: Environment variable overriding where golden files are read/written.
GOLDEN_DIR_ENV = "HYBRIDDB_GOLDEN_DIR"

#: Decimal places floats are rounded to before serialisation, so the
#: stored JSON is stable under float-repr differences while still far
#: below any behavioural change.
FLOAT_PRECISION = 12


@dataclass(frozen=True)
class Scenario:
    """One pinned simulation whose fingerprint is kept under version
    control.  Horizons and seed are scenario-owned (never scaled): the
    stored fingerprint describes exactly one sample path."""

    name: str
    strategy: str
    total_rate: float
    comm_delay: float = 0.2
    warmup_time: float = 5.0
    measure_time: float = 30.0
    seed: int = 20_240_601
    #: Optional lockspace shrink (None keeps the paper default): the hot
    #: scenario shrinks the database so every abort cause actually fires
    #: inside the fingerprinted horizon.
    lockspace: int | None = None
    #: Commit protocol under test (registry name).  The default keeps
    #: the pre-existing scenarios on the optimistic path, fingerprinted
    #: byte-identically to before the protocol extraction.
    protocol: str = "optimistic"
    description: str = ""


#: The canonical scenarios.  ``baseline-none`` pins the no-load-sharing
#: reference path; ``queue-length-hot`` runs hot enough that shipping,
#: deadlock aborts and authentication NAKs all appear in the counters,
#: so a protocol regression cannot hide in an exercised-but-unasserted
#: path.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(name="baseline-none",
             strategy="none", total_rate=12.0,
             description="no load sharing at a moderate load: the "
                         "Figure 4.1 baseline sample path"),
    Scenario(name="queue-length-hot",
             strategy="queue-length", total_rate=25.0, lockspace=2_000,
             description="queue-length routing, heavy load, shrunken "
                         "lockspace: shipping, deadlocks, invalidations "
                         "and NAKs all active"),
    Scenario(name="twophase-hot",
             strategy="queue-length", total_rate=18.0, lockspace=2_000,
             protocol="2pc",
             description="primary-copy 2PC under the hot workload: "
                         "prepare/vote/decision rounds and in-doubt "
                         "refusals pinned"),
    Scenario(name="epoch-hot",
             strategy="queue-length", total_rate=18.0, lockspace=2_000,
             protocol="epoch",
             description="epoch-batched group commit under the hot "
                         "workload: epoch flushes, batch ordering and "
                         "deferred completions pinned"),
)


def golden_dir() -> Path:
    """Directory holding the golden fingerprints.

    Resolution order: ``$HYBRIDDB_GOLDEN_DIR``, then the repo's
    ``tests/golden`` (located relative to this file), then
    ``./tests/golden`` as a last resort for installed copies.
    """
    override = os.environ.get(GOLDEN_DIR_ENV)
    if override:
        return Path(override)
    repo_candidate = Path(__file__).resolve().parents[3] / "tests" / "golden"
    if repo_candidate.parent.is_dir():
        return repo_candidate
    return Path.cwd() / "tests" / "golden"


def golden_path(scenario: Scenario, directory: Path | None = None) -> Path:
    return (directory or golden_dir()) / f"{scenario.name}.json"


def _rounded(value):
    if isinstance(value, float):
        return round(value, FLOAT_PRECISION)
    if isinstance(value, dict):
        return {_key(k): _rounded(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(item) for item in value]
    return value


def _key(key):
    return str(key.value) if isinstance(key, enum.Enum) else str(key)


def fingerprint(scenario: Scenario) -> dict:
    """Simulate the scenario and summarise it into its fingerprint."""
    digest = TraceDigest()
    # max_records=0: every record streams through the digest sink and
    # none are buffered, so fingerprinting stays memory-bounded.
    tracer = Tracer(sink=digest, max_records=0)
    settings = RunSettings(warmup_time=scenario.warmup_time,
                           measure_time=scenario.measure_time,
                           base_seed=scenario.seed,
                           protocol=scenario.protocol)
    overrides = {}
    if scenario.lockspace is not None:
        config = settings.config_for(scenario.total_rate,
                                     scenario.comm_delay)
        overrides["workload"] = replace(config.workload,
                                        lockspace=scenario.lockspace)
    result = run_single(scenario.strategy, scenario.total_rate,
                        scenario.comm_delay, settings=settings,
                        tracer=tracer, **overrides)
    pinned = {
        "name": scenario.name,
        "strategy": scenario.strategy,
        "total_rate": scenario.total_rate,
        "comm_delay": scenario.comm_delay,
        "warmup_time": scenario.warmup_time,
        "measure_time": scenario.measure_time,
        "seed": scenario.seed,
        "lockspace": scenario.lockspace,
    }
    if scenario.protocol != "optimistic":
        # Only recorded when non-default, so the pre-extraction golden
        # files for the optimistic scenarios stay byte-identical.
        pinned["protocol"] = scenario.protocol
    return {
        "scenario": pinned,
        "counts": {
            "completed": result.completed,
            "class_a_arrivals": result.class_a_arrivals,
            "class_a_shipped": result.class_a_shipped,
            "aborts_total": result.aborts_total,
            "aborts_deadlock": result.aborts_deadlock,
            "aborts_local_invalidated": result.aborts_local_invalidated,
            "aborts_central_invalidated":
                result.aborts_central_invalidated,
            "auth_negative_acks": result.auth_negative_acks,
            "messages_to_central": result.messages_to_central,
            "messages_to_sites": result.messages_to_sites,
            "engine_events": result.engine_events,
        },
        "response": _rounded({
            "mean": result.mean_response_time,
            "by_class": result.response_time_by_class,
            "by_kind": result.response_time_by_kind,
            "percentiles": result.response_time_percentiles,
            "decomposition": result.response_time_decomposition,
            "by_placement": result.decomposition_by_placement,
        }),
        "utilization": _rounded({
            "local": result.mean_local_utilization,
            "central": result.mean_central_utilization,
            "local_queue": result.mean_local_queue_length,
            "central_queue": result.mean_central_queue_length,
        }),
        "trace": {
            "records": digest.records,
            "sha256": digest.hexdigest(),
        },
    }


def serialize(data: dict) -> str:
    """Canonical byte form of a fingerprint (stable across runs)."""
    return json.dumps(data, sort_keys=True, indent=2) + "\n"


def load_golden(scenario: Scenario,
                directory: Path | None = None) -> dict | None:
    path = golden_path(scenario, directory)
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def update_goldens(names: list[str] | None = None,
                   directory: Path | None = None) -> list[Path]:
    """(Re)write the golden files; returns the written paths."""
    directory = directory or golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for scenario in SCENARIOS:
        if names and scenario.name not in names:
            continue
        path = golden_path(scenario, directory)
        path.write_text(serialize(fingerprint(scenario)))
        written.append(path)
    return written


def _make_check(scenario: Scenario) -> Check:
    def _run(settings: VerifySettings) -> tuple[bool, str]:
        stored = load_golden(scenario)
        if stored is None:
            return False, (
                f"golden file {golden_path(scenario)} missing; generate "
                f"it with `hybriddb-verify --update-golden`")
        current = json.loads(serialize(fingerprint(scenario)))
        lines = diff(stored, current, labels=("golden", "current"))
        if lines:
            return False, (
                f"fingerprint of {scenario.name!r} deviates from "
                f"{golden_path(scenario).name} in {len(lines)} "
                f"field(s):\n{format_diff(lines)}\n"
                f"(if the change is intended, refresh with "
                f"`hybriddb-verify --update-golden`)")
        trace = stored["trace"]
        return True, (
            f"{scenario.name}: {stored['counts']['completed']} "
            f"completion(s), {trace['records']} trace record(s), digest "
            f"{trace['sha256'][:12]}... all match")

    return Check(name=f"golden-{scenario.name}", kind="golden",
                 description=scenario.description or
                 f"pinned fingerprint of scenario {scenario.name}",
                 _run=_run)


GOLDEN_SCENARIOS = registry([_make_check(s) for s in SCENARIOS])


def run_goldens(settings: VerifySettings | None = None,
                names: list[str] | None = None):
    """Run (a subset of) the golden fingerprint checks."""
    settings = settings or VerifySettings()
    selected = names or sorted(GOLDEN_SCENARIOS)
    return [GOLDEN_SCENARIOS[name].run(settings) for name in selected]
