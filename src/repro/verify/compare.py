"""Structure flattening and diff reporting for paired-run comparisons.

Bit-identity checks compare deep ``SimulationResult.identity_dict()``
structures; when they disagree the raw ``!=`` is useless for debugging.
:func:`flatten` turns a nested dict/tuple/dataclass-dump structure into
one flat ``path -> scalar`` mapping and :func:`diff` renders the
discrepancies as readable ``path: left != right`` lines -- the same
diff-style report the golden checks use against their stored JSON.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable

__all__ = ["flatten", "diff", "format_diff"]

#: Failure reports list at most this many differing paths.
MAX_REPORTED = 25


def _key_str(key: Any) -> str:
    if isinstance(key, enum.Enum):
        return str(key.value)
    return str(key)


def flatten(value: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten nested dicts/sequences into ``dotted.path -> scalar``.

    Dict keys (including enum keys from ``dataclasses.asdict`` dumps)
    are stringified; list/tuple elements get numeric path components.
    Scalars (including ``None`` and strings) are kept as-is.
    """
    flat: dict[str, Any] = {}
    if isinstance(value, dict):
        for key, item in value.items():
            path = f"{prefix}.{_key_str(key)}" if prefix else _key_str(key)
            flat.update(flatten(item, path))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            path = f"{prefix}[{index}]"
            flat.update(flatten(item, path))
        if not value:
            flat[prefix or "<root>"] = type(value)()
    else:
        flat[prefix or "<root>"] = value
    return flat


def _equal(left: Any, right: Any, rel_tolerance: float) -> bool:
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) and math.isnan(right):
            return True
        if rel_tolerance > 0:
            return math.isclose(left, right, rel_tol=rel_tolerance,
                                abs_tol=rel_tolerance * 1e-9)
        return left == right
    return left == right


def diff(left: Any, right: Any, *, rel_tolerance: float = 0.0,
         labels: tuple[str, str] = ("left", "right")) -> list[str]:
    """Readable discrepancy lines between two nested structures.

    ``rel_tolerance = 0`` demands bit-identity on floats (NaN == NaN, so
    an unmeasured statistic on both sides is not a discrepancy); a
    positive tolerance allows bounded relative drift.  Returns an empty
    list when the structures agree.
    """
    flat_left = flatten(left)
    flat_right = flatten(right)
    lines: list[str] = []
    for path in sorted(set(flat_left) | set(flat_right)):
        if path not in flat_left:
            lines.append(f"{path}: missing in {labels[0]} "
                         f"({labels[1]}={flat_right[path]!r})")
        elif path not in flat_right:
            lines.append(f"{path}: missing in {labels[1]} "
                         f"({labels[0]}={flat_left[path]!r})")
        elif not _equal(flat_left[path], flat_right[path], rel_tolerance):
            lines.append(f"{path}: {labels[0]}={flat_left[path]!r} != "
                         f"{labels[1]}={flat_right[path]!r}")
    return lines


def format_diff(lines: Iterable[str], *, limit: int = MAX_REPORTED) -> str:
    """Join diff lines, truncating very long reports."""
    lines = list(lines)
    shown = lines[:limit]
    if len(lines) > limit:
        shown.append(f"... and {len(lines) - limit} more difference(s)")
    return "\n".join(shown)
