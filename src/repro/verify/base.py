"""Shared plumbing of the verification subsystem.

Every check family (oracles, metamorphic relations, goldens,
differential pairs) exposes named :class:`Check` objects built from a
plain function ``run(settings) -> CheckResult``.  The CLI and the pytest
wiring both iterate the same registries, so a check can never pass in
one harness and silently not exist in the other.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

__all__ = ["VerifySettings", "CheckResult", "Check", "registry"]


@dataclass(frozen=True)
class VerifySettings:
    """Knobs shared by every verification check.

    ``scale`` stretches or shrinks the simulated horizons of the checks
    that simulate (oracles, relations, differential pairs) -- ``--quick``
    uses a small scale.  Golden scenarios deliberately ignore it: their
    fingerprints pin one exact horizon.  ``seed`` seeds every simulated
    check; golden checks override it with the scenario's pinned seed.
    """

    seed: int = 9_101
    scale: float = 1.0
    #: Confidence level for the oracle interval checks.
    confidence: float = 0.95
    #: Relative tolerance applied on top of the confidence half-width
    #: when comparing a simulated mean against an analytic prediction.
    rel_tolerance: float = 0.08

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}")
        if self.rel_tolerance < 0:
            raise ValueError(
                f"rel_tolerance must be >= 0, got {self.rel_tolerance}")

    def scaled(self, factor: float) -> "VerifySettings":
        return replace(self, scale=self.scale * factor)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one verification check."""

    name: str
    kind: str                      # oracle | relation | golden | differential
    passed: bool
    #: Human-readable evidence: the compared quantities on success, a
    #: diff-style discrepancy report on failure.
    details: str = ""
    elapsed: float = 0.0

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


@dataclass(frozen=True)
class Check:
    """One named, runnable verification check."""

    name: str
    kind: str
    description: str
    _run: Callable[[VerifySettings], tuple[bool, str]] = field(repr=False)

    def run(self, settings: VerifySettings | None = None) -> CheckResult:
        """Execute the check, timing it and capturing its verdict."""
        settings = settings or VerifySettings()
        started = time.perf_counter()
        passed, details = self._run(settings)
        return CheckResult(name=self.name, kind=self.kind, passed=passed,
                           details=details,
                           elapsed=time.perf_counter() - started)


def registry(checks: list[Check]) -> dict[str, Check]:
    """Freeze a check list into a name-keyed registry (names unique)."""
    by_name: dict[str, Check] = {}
    for check in checks:
        if check.name in by_name:
            raise ValueError(f"duplicate check name {check.name!r}")
        by_name[check.name] = check
    return by_name
