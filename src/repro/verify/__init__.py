"""Correctness-verification subsystem: executable correctness beliefs.

The repo's load-bearing layers (DES kernel, hybrid protocol, analytic
model, experiment runner) must keep agreeing with each other and with
the paper's model across refactors.  This package turns those agreement
beliefs into four families of runnable checks, wired into pytest
(``tests/test_verify_*.py``) and the ``hybriddb-verify`` CLI:

* :mod:`repro.verify.oracle` -- **analytic oracles**: run the simulator
  in degenerate regimes (single site, no collisions, no I/O) and assert
  convergence to M/D/1 / Little's-law / utilisation-law / fixed-point
  predictions within confidence-interval tolerances.
* :mod:`repro.verify.metamorphic` -- **metamorphic relations**: declare
  a config transform plus the expected result relation (bit-identity or
  bounded drift) and check it on paired runs.
* :mod:`repro.verify.golden` -- **golden-trace regression**: canonical
  run fingerprints (event counts, response-time summaries, trace digest)
  pinned in ``tests/golden/*.json`` with diff-style failure reports and
  deterministic ``--update-golden`` regeneration.
* :mod:`repro.verify.differential` -- **differential runs**: paired
  executions that must agree field-for-field (checker-attached vs bare,
  tracer-attached vs null, degenerate class-B-mode overlap) or within
  an analytic tolerance (distributed model vs simulated remote calls).

See ``docs/TESTING.md`` for the test taxonomy and how the families fit
together.
"""

from .base import CheckResult, VerifySettings, registry
from .differential import DIFFERENTIAL_PAIRS
from .golden import GOLDEN_SCENARIOS
from .metamorphic import RELATIONS
from .oracle import ORACLES

__all__ = [
    "CheckResult",
    "VerifySettings",
    "registry",
    "ORACLES",
    "RELATIONS",
    "GOLDEN_SCENARIOS",
    "DIFFERENTIAL_PAIRS",
]
