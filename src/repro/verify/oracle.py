"""Analytic oracles: the simulator versus closed-form queueing theory.

Each oracle drives the discrete-event simulator into a *degenerate
regime* in which an exact (or operationally exact) prediction exists,
and asserts convergence within confidence-interval tolerances:

* **md1-response-time** -- one site, no locks, no I/O, no commit burst:
  each transaction is a single deterministic CPU burst under Poisson
  arrivals, i.e. exactly an M/D/1 FCFS queue.  The simulated mean
  response time must match the Pollaczek-Khinchine prediction
  (:func:`repro.analysis.mm1.md1_response_time`) within the
  cross-replication confidence half-width plus the settings tolerance.
* **utilization-law** -- in the same regime the utilisation law
  ``rho = lambda * S`` is exact; the measured CPU utilisation must obey
  it.
* **littles-law** -- ``N = X * R`` holds for any stable system
  regardless of distributions; the time-averaged population must match
  throughput times mean response time.
* **fixed-point-model** -- the Section 3.1 analytic model (fixed-point
  iteration over the collision/response equations, via
  :mod:`repro.analysis`) must track the full hybrid simulator over a
  small stable-load grid within the historically validated error band.

The degenerate regimes intentionally exercise the *same* engine, site,
metrics and workload code paths as the paper experiments -- an oracle
failure therefore localises a behavioural regression in the substrate,
not in a test double.
"""

from __future__ import annotations

from ..analysis.mm1 import md1_response_time
from ..core.router import AlwaysLocalRouter
from ..db.workload import WorkloadParams
from ..experiments.runner import RunSettings, run_point
from ..experiments.validation import validate_model
from ..hybrid.config import SystemConfig
from ..hybrid.system import HybridSystem
from .base import Check, VerifySettings, registry

__all__ = ["ORACLES", "degenerate_md1_config", "run_oracles"]

#: Arrival rate of the degenerate single-site regime.  The service time
#: there is 0.15 s (150 K instructions at 1 MIPS), so rho = 0.6: loaded
#: enough that queueing dominates, far enough from saturation that the
#: finite horizon estimates the steady state well.
MD1_RATE = 4.0

#: Error band of the fixed-point model oracle (matches the long-standing
#: thresholds of ``benchmarks/test_model_validation.py``).
MODEL_MEAN_ERROR_LIMIT = 0.20
MODEL_MAX_ERROR_LIMIT = 0.45


def degenerate_md1_config(settings: VerifySettings,
                          rate: float = MD1_RATE) -> SystemConfig:
    """One site, zero locks, zero I/O, zero commit pathlength.

    In this configuration ``LocalSite._run_local`` reduces to a single
    ``cpu_burst(instr_txn_overhead)``: deterministic service under
    Poisson arrivals on a FIFO CPU -- the textbook M/D/1 queue.
    """
    workload = WorkloadParams(n_sites=1, lockspace=1024, locks_per_txn=0,
                              p_local=1.0, arrival_rate_per_site=rate)
    return SystemConfig(
        workload=workload,
        io_initial=0.0, io_per_db_call=0.0, instr_commit=0,
        warmup_time=30.0 * settings.scale,
        measure_time=240.0 * settings.scale,
        seed=settings.seed,
    )


def _md1_prediction(config: SystemConfig) -> tuple[float, float, float]:
    """(service time, utilisation, predicted mean response time)."""
    service = config.local_service_time
    rho = config.workload.arrival_rate_per_site * service
    return service, rho, md1_response_time(service, rho)


def _check_md1_response(settings: VerifySettings) -> tuple[bool, str]:
    config = degenerate_md1_config(settings)
    service, rho, predicted = _md1_prediction(config)
    run = RunSettings(warmup_time=config.warmup_time,
                      measure_time=config.measure_time,
                      replications=3, base_seed=settings.seed)
    point = run_point("none", MD1_RATE, settings=run,
                      workload=config.workload,
                      io_initial=0.0, io_per_db_call=0.0, instr_commit=0)
    interval = point.response_time_interval(settings.confidence)
    tolerance = interval.half_width + settings.rel_tolerance * predicted
    error = abs(point.mean_response_time - predicted)
    passed = error <= tolerance
    details = (f"M/D/1 @ rho={rho:.2f}: predicted R={predicted:.4f}s, "
               f"simulated {point.mean_response_time:.4f}s "
               f"+/- {interval.half_width:.4f} "
               f"({interval.n} replication(s)); |error|={error:.4f} "
               f"<= tolerance {tolerance:.4f}" if passed else
               f"M/D/1 @ rho={rho:.2f}: predicted R={predicted:.4f}s but "
               f"simulated {point.mean_response_time:.4f}s "
               f"+/- {interval.half_width:.4f}; |error|={error:.4f} "
               f"exceeds tolerance {tolerance:.4f}")
    return passed, details


def _degenerate_run(settings: VerifySettings):
    config = degenerate_md1_config(settings)
    system = HybridSystem(config, lambda c, i: AlwaysLocalRouter())
    result = system.run()
    return config, system, result


def _check_utilization_law(settings: VerifySettings) -> tuple[bool, str]:
    config, _system, result = _degenerate_run(settings)
    _service, rho, _ = _md1_prediction(config)
    measured = result.mean_local_utilization
    tolerance = settings.rel_tolerance * rho
    error = abs(measured - rho)
    passed = error <= tolerance
    return passed, (
        f"utilisation law rho = lambda*S: predicted {rho:.4f}, "
        f"measured {measured:.4f}, |error|={error:.4f} "
        f"{'<=' if passed else 'exceeds'} tolerance {tolerance:.4f}")


def _check_littles_law(settings: VerifySettings) -> tuple[bool, str]:
    _config, system, result = _degenerate_run(settings)
    mean_n = system._n_local_tw.mean(system.env.now)
    predicted = result.throughput * result.mean_response_time
    tolerance = settings.rel_tolerance * max(predicted, 1e-12)
    error = abs(mean_n - predicted)
    passed = error <= tolerance
    return passed, (
        f"Little's law N = X*R: X*R = {predicted:.4f}, time-averaged "
        f"population {mean_n:.4f}, |error|={error:.4f} "
        f"{'<=' if passed else 'exceeds'} tolerance {tolerance:.4f}")


def _check_fixed_point_model(settings: VerifySettings) -> tuple[bool, str]:
    report = validate_model(
        rates=(5.0, 10.0, 15.0), p_ships=(0.0, 0.3),
        warmup_time=20.0 * settings.scale,
        measure_time=60.0 * settings.scale,
        seed=settings.seed)
    mean_error = report.mean_abs_error
    max_error = report.max_abs_error
    passed = (mean_error <= MODEL_MEAN_ERROR_LIMIT and
              max_error <= MODEL_MAX_ERROR_LIMIT)
    return passed, (
        f"fixed-point model vs simulator over {len(report.points)} grid "
        f"point(s): mean |error| {mean_error:.1%} "
        f"(limit {MODEL_MEAN_ERROR_LIMIT:.0%}), max |error| "
        f"{max_error:.1%} (limit {MODEL_MAX_ERROR_LIMIT:.0%})")


ORACLES = registry([
    Check(name="md1-response-time", kind="oracle",
          description="single-site no-lock no-I/O regime matches the "
                      "M/D/1 Pollaczek-Khinchine mean response time",
          _run=_check_md1_response),
    Check(name="utilization-law", kind="oracle",
          description="measured CPU utilisation equals lambda*S in the "
                      "degenerate single-burst regime",
          _run=_check_utilization_law),
    Check(name="littles-law", kind="oracle",
          description="time-averaged population equals throughput times "
                      "mean response time",
          _run=_check_littles_law),
    Check(name="fixed-point-model", kind="oracle",
          description="Section 3.1 analytic fixed point tracks the "
                      "simulator over a stable-load grid",
          _run=_check_fixed_point_model),
])


def run_oracles(settings: VerifySettings | None = None,
                names: list[str] | None = None):
    """Run (a subset of) the oracles, returning their results."""
    settings = settings or VerifySettings()
    selected = names or sorted(ORACLES)
    return [ORACLES[name].run(settings) for name in selected]
