"""Differential runs: paired executions that must agree.

Each differential pair runs the system twice under configurations that
are *semantically equivalent* -- observers attached or not, a degenerate
config expressed two ways -- and demands field-for-field agreement of
the deterministic results; one pair instead cross-checks the simulator
against the closed-form distributed-mode model within an analytic
tolerance.

Built-in pairs:

``tracer-vs-null``          a streaming tracer is purely observational:
                            attaching one must not perturb the sample
                            path (full identity, engine profile
                            included);
``checker-vs-bare``         the invariant checker's hooks and audit loop
                            are read-only: every metric must match a
                            bare run (profile excluded -- the audit loop
                            schedules its own timeouts);
``observers-vs-bare``       the full observability stack -- routing
                            audit, engine profiler, shared metrics
                            registry -- attached together must leave the
                            run bit-identical to a bare one (full
                            identity: none of them schedules events);
``class-b-mode-degenerate`` with no class B transactions the
                            ``central`` and ``remote-call`` execution
                            modes are the same system (full identity);
``distributed-model-overlap`` at low load the simulated remote-call
                            class B response time must match
                            :class:`~repro.core.distributed_model.DistributedModel`
                            within tolerance.
"""

from __future__ import annotations

from dataclasses import replace

from ..core import STRATEGIES
from ..core.distributed_model import DistributedModel
from ..db.transaction import TransactionClass
from ..experiments.runner import RunSettings, run_single
from ..hybrid.system import HybridSystem
from ..sim.trace import Tracer
from .base import Check, VerifySettings, registry
from .compare import diff, format_diff

__all__ = ["DIFFERENTIAL_PAIRS", "run_differential"]

#: Load of the identity pairs: hot enough that routing, collisions and
#: update propagation all run, so "identical" is a strong statement.
PAIR_STRATEGY = "queue-length"
PAIR_RATE = 18.0

#: Relative tolerance of the model-overlap pair.  The closed form
#: ignores lock waits, so it is only exact in the low-load limit; the
#: pair runs at low load where the residual contention is small.
MODEL_OVERLAP_TOLERANCE = 0.15
MODEL_OVERLAP_RATE = 4.0


def _run_settings(settings: VerifySettings) -> RunSettings:
    return RunSettings(warmup_time=10.0 * settings.scale,
                       measure_time=60.0 * settings.scale,
                       base_seed=settings.seed)


def _report_identity(label_a: str, label_b: str, lines: list[str],
                     reference) -> tuple[bool, str]:
    if lines:
        return False, (f"{label_a} vs {label_b}: {len(lines)} field(s) "
                       f"differ\n" + format_diff(lines))
    return True, (f"{label_a} == {label_b} field-for-field "
                  f"({reference.completed} completion(s), "
                  f"mean RT {reference.mean_response_time:.4f}s)")


def _check_tracer_vs_null(settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    bare = run_single(PAIR_STRATEGY, PAIR_RATE, settings=run)
    # A sink-less zero-buffer tracer still exercises every emit path.
    traced = run_single(PAIR_STRATEGY, PAIR_RATE, settings=run,
                        tracer=Tracer(max_records=0))
    lines = diff(bare.identity_dict(), traced.identity_dict(),
                 labels=("null-tracer", "tracer"))
    return _report_identity("null tracer", "attached tracer", lines, bare)


def _check_checker_vs_bare(settings: VerifySettings) -> tuple[bool, str]:
    from ..hybrid.checker import attach_checker

    run = _run_settings(settings)
    bare = run_single(PAIR_STRATEGY, PAIR_RATE, settings=run)
    config = run.config_for(PAIR_RATE, 0.2, seed=run.base_seed)
    system = HybridSystem(config, STRATEGIES[PAIR_STRATEGY](config))
    checker = attach_checker(system)
    checked = system.run()
    lines = diff(bare.identity_dict(include_profile=False),
                 checked.identity_dict(include_profile=False),
                 labels=("bare", "checker"))
    passed, details = _report_identity("bare run", "checker-attached run",
                                       lines, bare)
    if passed:
        details += (f"; checker audited {checker.stats.audits} time(s), "
                    f"verified {checker.stats.completions_checked} "
                    f"completion(s)")
    return passed, details


def _check_observers_vs_bare(settings: VerifySettings) -> tuple[bool, str]:
    from ..obs.audit import RoutingAudit
    from ..obs.profiler import EngineProfiler
    from ..obs.registry import MetricsRegistry

    run = _run_settings(settings)
    bare = run_single(PAIR_STRATEGY, PAIR_RATE, settings=run)
    audit = RoutingAudit()
    profilers: list[EngineProfiler] = []
    observed = run_single(
        PAIR_STRATEGY, PAIR_RATE, settings=run,
        registry=MetricsRegistry(), audit=audit,
        instrument=lambda system: profilers.append(
            EngineProfiler(system.env)))
    # Full identity, profile included: unlike the invariant checker the
    # observers schedule nothing, so even the event counts must match.
    lines = diff(bare.identity_dict(), observed.identity_dict(),
                 labels=("bare", "observed"))
    passed, details = _report_identity(
        "bare run", "audit+profiler+registry run", lines, bare)
    if passed:
        profiler = profilers[0]
        details += (f"; audit recorded {audit.recorded} decision(s), "
                    f"profiler timed {profiler.dispatches} dispatch(es)")
        if profiler.dispatches != observed.engine_events:
            passed = False
            details += (f" BUT profiler dispatches != engine events "
                        f"({observed.engine_events})")
    return passed, details


def _check_class_b_mode_degenerate(
        settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    results = []
    for mode in ("central", "remote-call"):
        config = run.config_for(PAIR_RATE, 0.2)
        workload = replace(config.workload, p_local=1.0)
        results.append(run_single(PAIR_STRATEGY, PAIR_RATE, settings=run,
                                  workload=workload, class_b_mode=mode))
    central, remote = results
    lines = diff(central.identity_dict(), remote.identity_dict(),
                 labels=("central", "remote-call"))
    return _report_identity("class-B central mode",
                            "class-B remote-call mode (no class B)",
                            lines, central)


def _check_distributed_model_overlap(
        settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    p_b_local = 0.5
    config = run.config_for(MODEL_OVERLAP_RATE, 0.2,
                            class_b_mode="remote-call")
    workload = replace(config.workload, p_b_local=p_b_local)
    result = run_single("none", MODEL_OVERLAP_RATE, settings=run,
                        workload=workload, class_b_mode="remote-call")
    simulated = result.response_time_by_class[TransactionClass.B]
    estimate = DistributedModel(config).estimate(
        p_b_local,
        rho_local=result.mean_local_utilization,
        rho_central=result.mean_central_utilization)
    predicted = estimate.response_distributed
    error = abs(simulated - predicted) / max(predicted, 1e-12)
    passed = error <= MODEL_OVERLAP_TOLERANCE
    return passed, (
        f"remote-call class B at rate {MODEL_OVERLAP_RATE:g} "
        f"(p_b_local={p_b_local}, {estimate.remote_calls:.1f} remote "
        f"call(s)/txn): model {predicted:.4f}s, simulated "
        f"{simulated:.4f}s, |error| {error:.1%} "
        f"{'<=' if passed else 'exceeds'} tolerance "
        f"{MODEL_OVERLAP_TOLERANCE:.0%}")


DIFFERENTIAL_PAIRS = registry([
    Check(name="tracer-vs-null", kind="differential",
          description="an attached streaming tracer does not perturb "
                      "the sample path (full bit-identity)",
          _run=_check_tracer_vs_null),
    Check(name="checker-vs-bare", kind="differential",
          description="the invariant checker's hooks are read-only: all "
                      "metrics match a bare run",
          _run=_check_checker_vs_bare),
    Check(name="observers-vs-bare", kind="differential",
          description="the routing audit, engine profiler and metrics "
                      "registry together do not perturb the sample path "
                      "(full bit-identity)",
          _run=_check_observers_vs_bare),
    Check(name="class-b-mode-degenerate", kind="differential",
          description="with no class B transactions the central and "
                      "remote-call modes are bit-identical",
          _run=_check_class_b_mode_degenerate),
    Check(name="distributed-model-overlap", kind="differential",
          description="low-load remote-call simulation matches the "
                      "closed-form distributed-mode model",
          _run=_check_distributed_model_overlap),
])


def run_differential(settings: VerifySettings | None = None,
                     names: list[str] | None = None):
    """Run (a subset of) the differential pairs."""
    settings = settings or VerifySettings()
    selected = names or sorted(DIFFERENTIAL_PAIRS)
    return [DIFFERENTIAL_PAIRS[name].run(settings) for name in selected]
