"""Metamorphic relations: config transforms with known result relations.

A metamorphic relation pairs a *transform* of the simulation input with
the *relation* the outputs must then satisfy.  Two relation strengths
are used:

* **bit-identity** -- the transform provably cannot change the sample
  path (an empty fault plan, a forced routing expressed two ways), so
  every deterministic result field must be exactly equal;
* **bounded drift** -- the transform preserves a statistic only in
  distribution (permuting site labels) or an ordering (raising the
  arrival rate), so the relation allows a configurable tolerance at the
  fixed verification seed.

Built-in relations:

``empty-fault-plan``        an empty :class:`~repro.sim.faults.FaultPlan`
                            is bit-identical to no plan at all;
``ship-prob-zero``          ``static(p=0)`` is bit-identical to the
                            no-load-sharing forced-local routing;
``ship-prob-one``           ``static(p=1)`` is bit-identical to the
                            forced always-ship routing;
``site-permutation``        permuting per-site arrival-rate multipliers
                            leaves aggregate metrics within tolerance;
``rate-monotonicity``       mean response time is non-decreasing in the
                            arrival rate (small slack for CRN noise);
``seed-stream-independence``disjoint named RNG streams are independent
                            of each other's creation and consumption
                            order.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.router import AlwaysLocalRouter, AlwaysShipRouter
from ..core.static import static_router_factory
from ..experiments.runner import RunSettings, run_single
from ..sim.faults import FaultPlan
from ..sim.rng import RandomStreams
from .base import Check, VerifySettings, registry
from .compare import diff, format_diff

__all__ = ["RELATIONS", "run_relations"]

#: Strategy and rate of the paired bit-identity runs: enough traffic for
#: collisions, shipping and update propagation to all be exercised.
PAIR_STRATEGY = "queue-length"
PAIR_RATE = 20.0

#: Relative drift allowed for the statistical (non-bit-identical)
#: relations at the fixed verification seed.
DRIFT_TOLERANCE = 0.15
#: Slack factor for the monotonicity relation (CRN keeps the noise far
#: below this; the relation guards gross ordering inversions).
MONOTONE_SLACK = 0.05


def _run_settings(settings: VerifySettings) -> RunSettings:
    return RunSettings(warmup_time=10.0 * settings.scale,
                       measure_time=60.0 * settings.scale,
                       base_seed=settings.seed)


def _identity_details(label_a: str, label_b: str, lines: list[str],
                      reference) -> tuple[bool, str]:
    if lines:
        return False, (f"{label_a} vs {label_b}: "
                       f"{len(lines)} field(s) differ\n"
                       + format_diff(lines))
    return True, (f"{label_a} == {label_b} field-for-field "
                  f"({reference.completed} completion(s), "
                  f"mean RT {reference.mean_response_time:.4f}s)")


def _check_empty_fault_plan(settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    bare = run_single(PAIR_STRATEGY, PAIR_RATE, settings=run,
                      fault_plan=None)
    empty = run_single(PAIR_STRATEGY, PAIR_RATE, settings=run,
                       fault_plan=FaultPlan.empty())
    lines = diff(bare.identity_dict(), empty.identity_dict(),
                 labels=("no-plan", "empty-plan"))
    return _identity_details("no plan", "empty FaultPlan", lines, bare)


def _check_ship_prob_zero(settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    forced = run_single(lambda config: (lambda c, i: AlwaysLocalRouter()),
                        PAIR_RATE, settings=run)
    static = run_single(lambda config: static_router_factory(0.0),
                        PAIR_RATE, settings=run)
    lines = diff(forced.identity_dict(include_strategy=False),
                 static.identity_dict(include_strategy=False),
                 labels=("always-local", "static(p=0)"))
    return _identity_details("forced-local", "static(p=0)", lines, forced)


def _check_ship_prob_one(settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    forced = run_single(lambda config: (lambda c, i: AlwaysShipRouter()),
                        PAIR_RATE, settings=run)
    static = run_single(lambda config: static_router_factory(1.0),
                        PAIR_RATE, settings=run)
    lines = diff(forced.identity_dict(include_strategy=False),
                 static.identity_dict(include_strategy=False),
                 labels=("always-ship", "static(p=1)"))
    return _identity_details("forced-ship", "static(p=1)", lines, forced)


def _check_site_permutation(settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    multipliers = (1.3, 0.7, 1.1, 0.9, 1.2, 0.8, 1.0, 1.0, 1.05, 0.95)
    permuted = multipliers[3:] + multipliers[:3]
    results = []
    for order in (multipliers, permuted):
        config = run.config_for(PAIR_RATE, 0.2)
        workload = replace(config.workload, rate_multipliers=order)
        results.append(run_single(PAIR_STRATEGY, PAIR_RATE, settings=run,
                                  workload=workload))
    base, perm = results
    drift = abs(perm.mean_response_time - base.mean_response_time) / \
        max(base.mean_response_time, 1e-12)
    throughput_drift = abs(perm.throughput - base.throughput) / \
        max(base.throughput, 1e-12)
    passed = (drift <= DRIFT_TOLERANCE and
              throughput_drift <= DRIFT_TOLERANCE)
    return passed, (
        f"site-permutation: mean RT {base.mean_response_time:.4f}s vs "
        f"{perm.mean_response_time:.4f}s (drift {drift:.1%}), throughput "
        f"{base.throughput:.2f} vs {perm.throughput:.2f} "
        f"(drift {throughput_drift:.1%}), tolerance "
        f"{DRIFT_TOLERANCE:.0%}")


def _check_rate_monotonicity(settings: VerifySettings) -> tuple[bool, str]:
    run = _run_settings(settings)
    rates = (8.0, 14.0, 20.0)
    responses = [run_single(PAIR_STRATEGY, rate,
                            settings=run).mean_response_time
                 for rate in rates]
    violations = [
        f"R({rates[i]:g})={responses[i]:.4f} > "
        f"R({rates[i + 1]:g})={responses[i + 1]:.4f} beyond slack"
        for i in range(len(rates) - 1)
        if responses[i] > responses[i + 1] * (1.0 + MONOTONE_SLACK)]
    series = ", ".join(f"R({rate:g})={response:.4f}s"
                       for rate, response in zip(rates, responses))
    if violations:
        return False, "monotonicity violated: " + "; ".join(violations)
    return True, (f"mean RT non-decreasing in arrival rate: {series} "
                  f"(slack {MONOTONE_SLACK:.0%})")


def _check_seed_stream_independence(
        settings: VerifySettings) -> tuple[bool, str]:
    """Disjoint named streams are order- and consumption-independent."""
    problems: list[str] = []

    # Reference draws: stream "a" created and consumed alone.
    alone = RandomStreams(settings.seed).stream("a").random(8).tolist()

    # Same master seed, but "b" created first and interleaved heavily.
    mixed_streams = RandomStreams(settings.seed)
    mixed_streams.stream("b").random(100)
    mixed = mixed_streams.stream("a")
    first_half = mixed.random(4).tolist()
    mixed_streams.stream("b").random(57)
    second_half = mixed.random(4).tolist()
    if alone != first_half + second_half:
        problems.append(
            "stream 'a' draws depend on stream 'b' creation/consumption")

    # Distinct names must give distinct sequences.
    fresh = RandomStreams(settings.seed)
    if fresh.stream("a").random(8).tolist() == \
            fresh.stream("b").random(8).tolist():
        problems.append("streams 'a' and 'b' emitted identical sequences")

    # Different master seeds must not alias.
    if RandomStreams(settings.seed).stream("a").random(8).tolist() == \
            RandomStreams(settings.seed + 1).stream("a").random(8).tolist():
        problems.append("different master seeds produced identical draws")

    # Spawned children are independent of parent consumption.
    parent_a = RandomStreams(settings.seed)
    child_before = parent_a.spawn("child").stream("x").random(8).tolist()
    parent_b = RandomStreams(settings.seed)
    parent_b.stream("a").random(100)
    child_after = parent_b.spawn("child").stream("x").random(8).tolist()
    if child_before != child_after:
        problems.append("spawned child streams depend on parent draws")

    if problems:
        return False, "; ".join(problems)
    return True, ("named RNG streams are independent of creation order, "
                  "interleaving, and parent consumption; distinct names "
                  "and seeds give distinct sequences")


RELATIONS = registry([
    Check(name="empty-fault-plan", kind="relation",
          description="an empty FaultPlan is bit-identical to running "
                      "with no plan at all",
          _run=_check_empty_fault_plan),
    Check(name="ship-prob-zero", kind="relation",
          description="static(p=0) is bit-identical to the forced "
                      "always-local routing",
          _run=_check_ship_prob_zero),
    Check(name="ship-prob-one", kind="relation",
          description="static(p=1) is bit-identical to the forced "
                      "always-ship routing",
          _run=_check_ship_prob_one),
    Check(name="site-permutation", kind="relation",
          description="permuting per-site rate multipliers leaves "
                      "aggregate metrics within tolerance",
          _run=_check_site_permutation),
    Check(name="rate-monotonicity", kind="relation",
          description="mean response time is non-decreasing in the "
                      "total arrival rate",
          _run=_check_rate_monotonicity),
    Check(name="seed-stream-independence", kind="relation",
          description="disjoint named RNG streams are mutually "
                      "independent (order, interleaving, spawning)",
          _run=_check_seed_stream_independence),
])


def run_relations(settings: VerifySettings | None = None,
                  names: list[str] | None = None):
    """Run (a subset of) the metamorphic relations."""
    settings = settings or VerifySettings()
    selected = names or sorted(RELATIONS)
    return [RELATIONS[name].run(settings) for name in selected]
