"""Routing-decision audit: why every ship/local/failover choice happened.

The paper's strategies differ *only* in their routing rule, so when a
figure disagrees with the paper the first question is always "what did
the router see when it decided?".  The audit answers it: every placement
choice is recorded as a :class:`RoutingDecision` carrying the estimator
inputs that drove it -- the exact local state, the delayed central
snapshot and its age, and the reason category (strategy verdict, class-B
forced shipment, failure-aware fallback, watchdog failover).

Like the tracer, the audit is an opt-in observer fed from
``MetricsCollector.record_routing``: it reads the observation the site
already built and never touches the simulation, so audited runs are
bit-identical to bare runs.  The buffer is bounded (``max_records``,
oldest-first retention with a ``dropped`` count) and can stream to a
``sink`` callable for memory-bounded JSONL export.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["RoutingDecision", "RoutingAudit", "AuditSummary",
           "summarize_decisions"]

#: Decision reason categories (the ``reason`` field vocabulary).
REASON_STRATEGY = "strategy"          # router consulted, verdict applied
REASON_CLASS_B = "class-b"            # class B: shipment is forced
REASON_FALLBACK = "fallback"          # failure-aware local fallback
REASON_FAILOVER = "failover"          # watchdog re-ran a shipment at home

#: Observation fields summarised per placement (estimator inputs).
_INPUT_FIELDS = ("local_queue_length", "local_n_txns",
                 "local_locks_held", "shipped_in_flight",
                 "central_queue_length", "central_n_txns",
                 "central_locks_held", "central_state_age")


@dataclass(frozen=True)
class RoutingDecision:
    """One placement choice with the inputs that drove it.

    Estimator inputs are ``None`` when no observation was consulted
    (forced class-B shipments, fallbacks, failovers); ``central_state_age``
    is ``None`` while no central message has been heard yet (the
    bootstrap snapshot has time ``-inf``).
    """

    time: float
    txn_id: int
    site: int
    txn_class: str
    placement: str
    reason: str
    strategy: str
    local_queue_length: int | None = None
    local_n_txns: int | None = None
    local_locks_held: int | None = None
    shipped_in_flight: int | None = None
    central_queue_length: int | None = None
    central_n_txns: int | None = None
    central_locks_held: int | None = None
    central_state_age: float | None = None

    def to_json(self) -> str:
        data = {key: value for key, value in asdict(self).items()
                if value is not None}
        return json.dumps(data, sort_keys=True)


class RoutingAudit:
    """Bounded buffer of routing decisions (optionally streaming).

    ``max_records`` bounds the in-memory buffer (0 keeps nothing
    buffered -- sink-only operation); every recorded decision is also
    passed to ``sink`` when one is given.
    """

    DEFAULT_MAX_RECORDS = 200_000

    def __init__(self, strategy: str = "",
                 max_records: int = DEFAULT_MAX_RECORDS,
                 sink=None):
        self.strategy = strategy
        self.max_records = max_records
        self.sink = sink
        self.records: list[RoutingDecision] = []
        self.recorded = 0
        self.dropped = 0

    def record(self, txn, *, placement: str, reason: str,
               observation=None, now: float | None = None) -> None:
        """Record one decision for ``txn`` (site code calls this)."""
        inputs: dict = {}
        if observation is not None:
            age = observation.central_state_age
            central = observation.central
            inputs = {
                "local_queue_length": observation.local_queue_length,
                "local_n_txns": observation.local_n_txns,
                "local_locks_held": observation.local_locks_held,
                "shipped_in_flight": observation.shipped_in_flight,
                "central_queue_length": central.queue_length,
                "central_n_txns": central.n_txns,
                "central_locks_held": central.locks_held,
                "central_state_age": (round(age, 9)
                                      if math.isfinite(age) else None),
            }
        decision = RoutingDecision(
            time=round(observation.now if observation is not None
                       else (now if now is not None else 0.0), 9),
            txn_id=txn.txn_id,
            site=txn.home_site,
            txn_class=txn.txn_class.value,
            placement=placement,
            reason=reason,
            strategy=self.strategy,
            **inputs)
        self.recorded += 1
        if self.sink is not None:
            self.sink(decision)
        if len(self.records) < self.max_records:
            self.records.append(decision)
        else:
            self.dropped += 1

    def write_jsonl(self, path: str | Path) -> int:
        """Dump the buffered decisions as JSONL; returns lines written.

        A trailing marker line reports drops, so a truncated file is
        distinguishable from a complete one.
        """
        path = Path(path)
        with path.open("w") as handle:
            for decision in self.records:
                handle.write(decision.to_json() + "\n")
            if self.dropped:
                handle.write(json.dumps(
                    {"truncated": True, "dropped": self.dropped,
                     "recorded": self.recorded}) + "\n")
        return len(self.records) + (1 if self.dropped else 0)

    def summary(self) -> "AuditSummary":
        return summarize_decisions(self.records, strategy=self.strategy,
                                   recorded=self.recorded,
                                   dropped=self.dropped)


@dataclass
class AuditSummary:
    """Per-strategy digest of a decision stream."""

    strategy: str
    decisions: int
    dropped: int = 0
    by_placement: dict[str, int] = field(default_factory=dict)
    by_reason: dict[str, int] = field(default_factory=dict)
    #: placement -> estimator-input field -> mean value at decision time.
    mean_inputs: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def ship_fraction(self) -> float:
        strategic = sum(count for reason, count in self.by_reason.items()
                        if reason == REASON_STRATEGY)
        if not strategic:
            return 0.0
        shipped = sum(count for (placement, reason), count
                      in getattr(self, "_cross", {}).items()
                      if placement == "shipped"
                      and reason == REASON_STRATEGY)
        return shipped / strategic

    def format(self) -> str:
        """Terminal-readable summary block."""
        lines = [f"routing audit [{self.strategy}]: "
                 f"{self.decisions} decision(s)"
                 + (f", {self.dropped} dropped from buffer"
                    if self.dropped else "")]
        placements = ", ".join(f"{name}={count}" for name, count
                               in sorted(self.by_placement.items()))
        reasons = ", ".join(f"{name}={count}" for name, count
                            in sorted(self.by_reason.items()))
        lines.append(f"  placements: {placements or 'none'}")
        lines.append(f"  reasons:    {reasons or 'none'}")
        for placement in sorted(self.mean_inputs):
            means = self.mean_inputs[placement]
            shown = ", ".join(
                f"{name.replace('_', ' ')}={value:.2f}"
                for name, value in means.items())
            lines.append(f"  at {placement!r} decisions: {shown}")
        return "\n".join(lines)


def summarize_decisions(decisions, strategy: str = "",
                        recorded: int | None = None,
                        dropped: int = 0) -> AuditSummary:
    """Aggregate a decision list into an :class:`AuditSummary`.

    The per-placement input means are the audit's analytical payload:
    comparing e.g. the mean local queue length at "shipped" vs "local"
    decisions shows the effective threshold a strategy applied.
    """
    decisions = list(decisions)
    by_placement: dict[str, int] = {}
    by_reason: dict[str, int] = {}
    cross: dict[tuple[str, str], int] = {}
    sums: dict[str, dict[str, list[float]]] = {}
    for decision in decisions:
        by_placement[decision.placement] = \
            by_placement.get(decision.placement, 0) + 1
        by_reason[decision.reason] = by_reason.get(decision.reason, 0) + 1
        cross[(decision.placement, decision.reason)] = \
            cross.get((decision.placement, decision.reason), 0) + 1
        bucket = sums.setdefault(decision.placement, {})
        for name in _INPUT_FIELDS:
            value = getattr(decision, name)
            if value is not None:
                bucket.setdefault(name, []).append(value)
    mean_inputs = {
        placement: {name: sum(values) / len(values)
                    for name, values in fields.items() if values}
        for placement, fields in sums.items()}
    mean_inputs = {placement: means
                   for placement, means in mean_inputs.items() if means}
    summary = AuditSummary(
        strategy=strategy,
        decisions=recorded if recorded is not None else len(decisions),
        dropped=dropped,
        by_placement=by_placement,
        by_reason=by_reason,
        mean_inputs=mean_inputs)
    summary._cross = cross
    return summary
