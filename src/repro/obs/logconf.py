"""Shared CLI logging setup (``--verbose`` / ``--quiet``).

All three entry points (``hybriddb-experiment``, ``hybriddb-verify``,
``hybriddb-bench``) wire their diagnostics through one ``repro`` logger
configured here, so verbosity behaves identically everywhere:

==========  ==============================================
flags       effective level
==========  ==============================================
``-q``      errors only
(default)   warnings (diagnostics silent; reports still print)
``-v``      informational progress (per-point runs, cache hits)
``-vv``     debug detail
==========  ==============================================

Primary *results* stay on stdout via ``print`` -- logging carries the
side-channel diagnostics only, on stderr, so piping report output into
files or ``diff`` never captures progress chatter.
"""

from __future__ import annotations

import argparse
import logging
import sys

__all__ = ["add_logging_flags", "setup_cli_logging", "get_logger"]

#: Root of the package logger hierarchy.
LOGGER_NAME = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"
_VERBOSE_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"


def add_logging_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the mutually exclusive ``-v``/``-q`` flags to a parser."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase diagnostic output (-v progress, -vv debug)")
    group.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress warnings; report errors only")


def setup_cli_logging(args: argparse.Namespace | None = None, *,
                      verbose: int = 0,
                      quiet: bool = False) -> logging.Logger:
    """Configure the ``repro`` logger from parsed CLI flags.

    Accepts either the parsed namespace (fields added by
    :func:`add_logging_flags`) or explicit keyword values.  Idempotent:
    repeated calls reconfigure the same handler instead of stacking
    duplicates (relevant to tests that invoke ``main()`` repeatedly).
    """
    if args is not None:
        verbose = getattr(args, "verbose", verbose)
        quiet = getattr(args, "quiet", quiet)
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING

    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    logger.propagate = False
    fmt = _VERBOSE_FORMAT if verbose >= 2 else _FORMAT
    for handler in logger.handlers:
        if getattr(handler, "_repro_cli", False):
            handler.setLevel(level)
            handler.setFormatter(logging.Formatter(fmt))
            return logger
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_cli = True  # type: ignore[attr-defined]
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """A child of the shared ``repro`` logger (e.g. ``repro.bench``)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")
