"""Performance-regression gate: snapshot, compare, fail on slowdown.

``hybriddb-bench`` pins the quantities this codebase cares about --
kernel dispatch rate (events/sec), figure wall-clock, and the
(simulation-deterministic) replications-to-converge of the
variance-reduction machinery -- into JSON records sharing the
``BENCH_*.json`` schema (flat records
with a ``benchmark`` key, parameters, measurements and a
``recorded_at`` stamp), then compares runs against a committed baseline
with tolerance bands::

    hybriddb-bench run --out BENCH_baseline.json --scale 0.1
    hybriddb-bench compare BENCH_baseline.json current.json
    hybriddb-bench gate --baseline BENCH_baseline.json --scale 0.1

``gate`` is ``run`` + ``compare`` in one step and is what CI executes:
exit status 1 on any regression beyond tolerance.  Tolerances are
deliberately generous (default +-30%) because shared CI runners are
noisy; the gate exists to catch the 2x-and-worse accidents (an O(n)
scan sneaking into the dispatch loop), not 5% drift.

``--handicap F`` scales the measured timings by ``F`` after the run --
a seeded slowdown that demonstrates the gate actually fails (used by
the CI self-test; never combine with ``--out`` snapshots you intend to
keep).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from .logconf import add_logging_flags, get_logger, setup_cli_logging

__all__ = ["main", "run_benchmarks", "compare_records", "Comparison",
           "BENCHMARKS"]

log = get_logger("bench")

#: Default relative tolerance band of the gate.
DEFAULT_TOLERANCE = 0.30

#: metric field -> direction ("higher" / "lower" is better).
METRIC_DIRECTIONS = {
    "events_per_sec": "higher",
    "seconds": "lower",
    "replications": "lower",
}


@dataclass(frozen=True)
class BenchmarkDef:
    """One gated benchmark: how to run it and which field is gated."""

    name: str
    metric: str
    description: str


BENCHMARKS: dict[str, BenchmarkDef] = {
    "engine_throughput": BenchmarkDef(
        name="engine_throughput", metric="events_per_sec",
        description="raw kernel dispatch rate over a pure-DES event mix "
                    "(timeouts, immediate events, processes, resources, "
                    "interrupts -- no protocol code)"),
    "system_throughput": BenchmarkDef(
        name="system_throughput", metric="events_per_sec",
        description="end-to-end dispatch rate of one hot queue-length "
                    "run (kernel + full protocol stack)"),
    "figure_4_1": BenchmarkDef(
        name="figure_4_1", metric="seconds",
        description="wall-clock of the Figure 4.1 sweep (serial, "
                    "uncached)"),
    "adaptive_convergence": BenchmarkDef(
        name="adaptive_convergence", metric="replications",
        description="replications needed to bring a seeded Figure 4.2 "
                    "slice within +-10% under CRN + control variates "
                    "(simulation-deterministic; guards the "
                    "variance-reduction machinery)"),
}


def _utc_stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def kernel_workload(horizon: float = 400.0):
    """Build and run the pure-kernel benchmark mix; returns the env.

    A deterministic event mix exercising every kernel path the hybrid
    protocol leans on, with zero protocol code in the loop, so the
    measured rate is the kernel's and a kernel regression cannot hide
    behind protocol cost:

    * staggered timeout loops (the calendar's steady-state churn),
    * zero-delay event chains (``succeed`` -- the immediate band),
    * contended resource request/hold/release cycles (grant callbacks),
    * short-lived processes spawned and joined (init/termination),
    * periodic interrupts (priority-0 pre-emption),
    * ``AnyOf`` races of a timeout against a signal, and
    * a sparse far-future backlog (the overflow band).

    The component weights mirror the dispatch mix of a real protocol
    run.  Profiling ``queue-length`` at scale 0.3 with the engine
    profiler classifies ~95k dispatches as 40% timeouts, 31% bare
    events, 17% resource grants and ~11% process wake-ups/joins --
    i.e. roughly half of all real dispatches are zero-delay
    (immediate-band) events.  The loops below reproduce those shares
    (~41% timeouts / ~49% zero-delay / ~10% process churn), so the
    measured rate predicts protocol-run kernel cost rather than an
    arbitrary synthetic blend.
    """
    from ..sim.engine import AnyOf, Environment, Interrupt
    from ..sim.resources import Resource

    env = Environment()
    resource = Resource(env, capacity=4)

    def timer(delay):
        while True:
            yield env.timeout(delay)

    def chained():
        while True:
            yield env.timeout(0.5)
            for _ in range(16):
                event = env.event()
                event.succeed(None)
                yield event

    def holder():
        # Persistent contender: each cycle is one zero-delay grant plus
        # one timeout -- the lock-acquire/hold shape of the protocol's
        # resource traffic, without process-spawn cost in the loop.
        while True:
            with resource.request() as req:
                yield req
                yield env.timeout(0.08)

    def worker():
        with resource.request() as req:
            yield req
            yield env.timeout(0.05)
        return None

    def spawner():
        while True:
            yield env.timeout(1.0)
            yield env.process(worker())

    def interruptible():
        while True:
            try:
                yield env.timeout(1000.0)
            except Interrupt:
                pass

    def interrupter(victim):
        while True:
            yield env.timeout(2.5)
            victim.interrupt("tick")

    def racer():
        while True:
            signal = env.event()
            timeout = env.timeout(0.75)
            signal.succeed("won")
            yield AnyOf(env, [signal, timeout])
            yield env.timeout(0.25)

    for i in range(24):
        env.process(timer(0.11 + i * 0.017))
    for _ in range(4):
        env.process(chained())
    for _ in range(8):
        env.process(holder())
    for _ in range(4):
        env.process(spawner())
    for _ in range(4):
        victim = env.process(interruptible())
        env.process(interrupter(victim))
    for _ in range(4):
        env.process(racer())
    # Sparse far-future backlog: keeps a populated far band / deep heap
    # under the feet of the hot near-term traffic for the whole run.
    def sleeper(delay):
        yield env.timeout(delay)
    for i in range(2_000):
        env.process(sleeper(horizon * 2.0 + i * 0.37))
    env.run(until=horizon)
    return env


def _run_engine_throughput(scale: float, repeat: int,
                           handicap: float) -> dict:
    """Best-of-``repeat`` raw kernel dispatch rate.

    The event count is simulation-deterministic (fixed workload, fixed
    horizon); only the elapsed wall-clock varies between attempts.
    """
    horizon = 400.0 * (scale / 0.1)
    best_rate = 0.0
    events = 0
    for attempt in range(repeat):
        began = time.perf_counter()
        env = kernel_workload(horizon=horizon)
        elapsed = time.perf_counter() - began
        events = env.events_processed
        rate = events / elapsed if elapsed > 0 else 0.0
        log.info("engine_throughput attempt %d/%d: %.0f events/s",
                 attempt + 1, repeat, rate)
        if rate > best_rate:
            best_rate = rate
    return {
        "benchmark": "engine_throughput",
        "scale": scale,
        "repeat": repeat,
        "horizon": horizon,
        "events": events,
        "events_per_sec": round(best_rate / handicap, 1),
        "seconds": round(events / best_rate * handicap, 3)
        if best_rate else 0.0,
        "recorded_at": _utc_stamp(),
    }


def _run_system_throughput(scale: float, repeat: int,
                           handicap: float) -> dict:
    """Best-of-``repeat`` end-to-end dispatch rate (kernel + protocol)."""
    from ..experiments.runner import RunSettings, run_single

    settings = RunSettings(warmup_time=5.0 * scale,
                           measure_time=60.0 * scale)
    best = None
    for attempt in range(repeat):
        result = run_single("queue-length", 18.0, settings=settings)
        log.info("system_throughput attempt %d/%d: %.0f events/s",
                 attempt + 1, repeat, result.engine_events_per_sec)
        if best is None or \
                result.engine_events_per_sec > best.engine_events_per_sec:
            best = result
    return {
        "benchmark": "system_throughput",
        "scale": scale,
        "repeat": repeat,
        "strategy": "queue-length",
        "rate": 18.0,
        "events": best.engine_events,
        "events_per_sec": round(best.engine_events_per_sec / handicap, 1),
        "seconds": round(best.wall_clock_seconds * handicap, 3),
        "recorded_at": _utc_stamp(),
    }


def _run_figure(scale: float, repeat: int, handicap: float) -> dict:
    """Serial, uncached wall-clock of one full figure sweep."""
    from ..experiments.figures import ALL_FIGURES
    from ..experiments.runner import RunSettings

    settings = RunSettings(scale=scale)
    best = None
    for attempt in range(repeat):
        began = time.perf_counter()
        figure = ALL_FIGURES["4.1"](settings, workers=1, cache=None)
        elapsed = time.perf_counter() - began
        log.info("figure_4_1 attempt %d/%d: %.2fs",
                 attempt + 1, repeat, elapsed)
        if best is None or elapsed < best[0]:
            best = (elapsed, figure)
    elapsed, figure = best
    points = sum(len(curve.points) for curve in figure.curves)
    return {
        "benchmark": "figure_4_1",
        "scale": scale,
        "repeat": repeat,
        "workers": 1,
        "curves": len(figure.curves),
        "points": points,
        "seconds": round(elapsed * handicap, 3),
        "recorded_at": _utc_stamp(),
    }


def _run_adaptive_convergence(scale: float, repeat: int,
                              handicap: float) -> dict:
    """Replications-to-converge of a CRN + control-variate slice.

    Unlike the wall-clock benchmarks this metric is fully
    simulation-determined: the adaptive scheduler's replication count
    depends only on seeds and the estimators, so the gate band catches
    *statistical* regressions (a broken covariate, a seed-derivation
    change, an estimator that stopped tightening) rather than machine
    noise.  ``repeat`` is ignored (re-runs are bit-identical) and
    ``handicap`` multiplies the replication count so the CI gate
    self-test stays meaningful.
    """
    from ..experiments.adaptive import run_adaptive_curve_set
    from ..experiments.runner import PrecisionSettings

    strategies = ["queue-length", "min-average-population"]
    rates = [15.0, 25.0, 30.0]
    settings = PrecisionSettings(
        scale=scale, rel_precision=0.1, min_replications=2,
        max_replications=8, crn=True, control_variates=True)
    outcome = run_adaptive_curve_set(
        [(name, name, list(rates)) for name in strategies],
        settings=settings, workers=1, cache=None)
    report = outcome.report
    return {
        "benchmark": "adaptive_convergence",
        "scale": scale,
        "repeat": 1,
        "strategies": strategies,
        "rates": rates,
        "rel_precision": settings.rel_precision,
        "max_replications": settings.max_replications,
        "points": report.n_points,
        "converged_points": sum(1 for p in report.points if p.converged),
        "replications": round(report.replications_total * handicap, 1),
        "fixed_grid_replications": report.fixed_grid_replications,
        "recorded_at": _utc_stamp(),
    }


_RUNNERS = {
    "engine_throughput": _run_engine_throughput,
    "system_throughput": _run_system_throughput,
    "figure_4_1": _run_figure,
    "adaptive_convergence": _run_adaptive_convergence,
}


def run_benchmarks(names=None, scale: float = 0.1, repeat: int = 3,
                   handicap: float = 1.0) -> list[dict]:
    """Execute the named benchmarks (all by default); returns records."""
    selected = list(names) if names else sorted(BENCHMARKS)
    records = []
    for name in selected:
        if name not in _RUNNERS:
            raise KeyError(f"unknown benchmark {name!r} "
                           f"(choose from {sorted(BENCHMARKS)})")
        log.info("running benchmark %s (scale=%g)", name, scale)
        records.append(_RUNNERS[name](scale, repeat, handicap))
    return records


@dataclass(frozen=True)
class Comparison:
    """Gate verdict for one benchmark."""

    benchmark: str
    metric: str
    baseline: float | None
    current: float | None
    #: current/baseline (>1 means bigger; interpretation depends on the
    #: metric direction).  ``None`` when either side is missing.
    ratio: float | None
    status: str  # "ok" | "improved" | "regression" | "missing" | "new"

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing")

    def describe(self) -> str:
        if self.status == "missing":
            return (f"{self.benchmark}: MISSING from current run "
                    f"(baseline {self.metric}={self.baseline:g})")
        if self.status == "new":
            return (f"{self.benchmark}: new (no baseline; "
                    f"{self.metric}={self.current:g})")
        direction = METRIC_DIRECTIONS[self.metric]
        arrow = {"ok": "within band", "improved": "IMPROVED",
                 "regression": "REGRESSION"}[self.status]
        return (f"{self.benchmark}: {self.metric} {self.baseline:g} -> "
                f"{self.current:g} ({self.ratio:.2f}x, {direction} is "
                f"better) {arrow}")


def compare_records(baseline: list[dict], current: list[dict],
                    tolerance: float = DEFAULT_TOLERANCE) -> list[Comparison]:
    """Pair up records by benchmark name and judge each gated metric.

    Records whose ``benchmark`` is not a gated one (e.g. the historical
    ``figure_4_2`` parallel-speedup snapshots that share the file
    format) are ignored.  A benchmark present in the baseline but
    absent from the current run fails the gate -- silently losing
    coverage must be loud.
    """
    by_name_base = {record["benchmark"]: record for record in baseline
                    if record.get("benchmark") in BENCHMARKS}
    by_name_cur = {record["benchmark"]: record for record in current
                   if record.get("benchmark") in BENCHMARKS}
    comparisons = []
    for name in sorted(set(by_name_base) | set(by_name_cur)):
        metric = BENCHMARKS[name].metric
        base = by_name_base.get(name, {}).get(metric)
        cur = by_name_cur.get(name, {}).get(metric)
        if cur is None:
            comparisons.append(Comparison(name, metric, base, None,
                                          None, "missing"))
            continue
        if base is None:
            comparisons.append(Comparison(name, metric, None, cur,
                                          None, "new"))
            continue
        ratio = cur / base if base else float("inf")
        direction = METRIC_DIRECTIONS[metric]
        if direction == "higher":
            regressed = cur < base * (1.0 - tolerance)
            improved = cur > base * (1.0 + tolerance)
        else:
            regressed = cur > base * (1.0 + tolerance)
            improved = cur < base * (1.0 - tolerance)
        status = ("regression" if regressed
                  else "improved" if improved else "ok")
        comparisons.append(Comparison(name, metric, base, cur, ratio,
                                      status))
    return comparisons


def _load_records(path: str | Path) -> list[dict]:
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of records")
    return data


def _write_records(records: list[dict], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(records, indent=2) + "\n")
    return path


def _print_comparisons(comparisons: list[Comparison],
                       tolerance: float) -> int:
    failures = 0
    for comparison in comparisons:
        print(f"  {comparison.describe()}")
        if comparison.failed:
            failures += 1
    if failures:
        print(f"\nFAIL: {failures} benchmark(s) regressed beyond "
              f"+-{tolerance:.0%}")
        return 1
    print(f"\nOK: all benchmarks within +-{tolerance:.0%} of baseline")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hybriddb-bench",
        description="Snapshot and gate the simulator's performance "
                    "(events/sec and figure wall-clock).")
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_run_flags(p):
        p.add_argument("--scale", type=float, default=0.1,
                       help="simulated-horizon scale (default 0.1)")
        p.add_argument("--repeat", type=int, default=3,
                       help="attempts per benchmark; best is kept "
                            "(default 3 -- best-of damps scheduler "
                            "noise on shared runners)")
        p.add_argument("--bench", action="append",
                       choices=sorted(BENCHMARKS), metavar="NAME",
                       help="run only this benchmark (repeatable)")
        p.add_argument("--handicap", type=float, default=1.0,
                       help="multiply measured timings by this factor "
                            "(gate self-test; default 1.0)")

    run = sub.add_parser("run", help="run the benchmarks, write records")
    _add_run_flags(run)
    run.add_argument("--out", metavar="PATH", required=True,
                     help="where to write the JSON records")
    add_logging_flags(run)

    compare = sub.add_parser("compare",
                             help="compare two record files")
    compare.add_argument("baseline", help="baseline records JSON")
    compare.add_argument("current", help="current records JSON")
    compare.add_argument("--tolerance", type=float,
                         default=DEFAULT_TOLERANCE,
                         help="relative tolerance band "
                              f"(default {DEFAULT_TOLERANCE})")
    add_logging_flags(compare)

    gate = sub.add_parser("gate",
                          help="run benchmarks and gate against a "
                               "baseline (CI entry point)")
    _add_run_flags(gate)
    gate.add_argument("--baseline", metavar="PATH", required=True,
                      help="baseline records JSON to gate against")
    gate.add_argument("--out", metavar="PATH",
                      help="also write the current records here")
    gate.add_argument("--tolerance", type=float,
                      default=DEFAULT_TOLERANCE,
                      help="relative tolerance band "
                           f"(default {DEFAULT_TOLERANCE})")
    add_logging_flags(gate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_cli_logging(args)
    if args.command == "compare":
        comparisons = compare_records(_load_records(args.baseline),
                                      _load_records(args.current),
                                      tolerance=args.tolerance)
        print(f"Comparing {args.current} against {args.baseline}")
        return _print_comparisons(comparisons, args.tolerance)

    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    if args.handicap <= 0:
        print("error: --handicap must be positive", file=sys.stderr)
        return 2
    if args.handicap != 1.0:
        log.warning("handicap %.2fx applied: timings are deliberately "
                    "distorted (gate self-test mode)", args.handicap)
    records = run_benchmarks(args.bench, scale=args.scale,
                             repeat=args.repeat, handicap=args.handicap)
    if args.command == "run":
        target = _write_records(records, args.out)
        print(f"{len(records)} benchmark record(s) written to {target}")
        for record in records:
            metric = BENCHMARKS[record["benchmark"]].metric
            print(f"  {record['benchmark']}: "
                  f"{metric}={record[metric]:g}")
        return 0

    # gate: run + compare
    if args.out:
        _write_records(records, args.out)
    baseline_records = _load_records(args.baseline)
    if args.bench:
        # A selective gate (--bench NAME) judges only the selected
        # benchmarks; baseline entries for unselected ones must not
        # count as "missing from current run".
        selected = set(args.bench)
        baseline_records = [record for record in baseline_records
                            if record.get("benchmark") in selected]
    comparisons = compare_records(baseline_records, records,
                                  tolerance=args.tolerance)
    print(f"Gating against {args.baseline} "
          f"(scale={args.scale:g}, tolerance=+-{args.tolerance:.0%})")
    return _print_comparisons(comparisons, args.tolerance)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
