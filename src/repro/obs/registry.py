"""Low-overhead metrics registry: counters, gauges, log-bucketed histograms.

The registry is the single namespace every subsystem publishes
measurements into -- the sim kernel (events, heap), resources (CPU
grants), links (messages sent/delivered), the hybrid protocol
(completions, aborts, authentication rounds) and the routers (decisions)
-- replacing scattered hand-rolled counter fields with named, labelled
instruments that export uniformly.

Design constraints, in order:

1. **Determinism.**  Instruments hold plain Python numbers and never
   consult the clock, an RNG or the event calendar, so a registry-backed
   run follows exactly the sample path of a bare one.
2. **Hot-path cost.**  ``Counter.inc`` is one attribute add.  Labelled
   children are resolved once (a dict lookup) and then held, so callers
   on per-transaction paths bind children at init time, not per event.
3. **Uniform export.**  :meth:`MetricsRegistry.snapshot` flattens every
   instrument into a sorted ``{"name{label=value}": number}`` mapping --
   the form carried on ``SimulationResult.metrics``, dumped by
   ``hybriddb-experiment --metrics-out`` and summarised in reports.

Histograms are log-bucketed (base-2 via ``math.frexp``): constant-time
insertion, ~30 buckets across nanoseconds-to-kiloseconds of dynamic
range, and quantile estimates good to a factor of two -- sufficient for
latency shapes without per-sample storage.
"""

from __future__ import annotations

import math
from typing import Iterator

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullRegistry", "NULL_REGISTRY"]


def _format_key(name: str, label_names: tuple[str, ...],
                label_values: tuple) -> str:
    if not label_names:
        return name
    inner = ",".join(f"{label}={value}" for label, value
                     in zip(label_names, label_values))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (or be sampled at publish time)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Log-bucketed (base-2) distribution of non-negative observations.

    Bucket ``e`` holds observations with ``2**(e-1) < x <= 2**e``
    (``frexp`` exponent); zeros land in a dedicated underflow bucket.
    Tracks exact count/sum/min/max alongside the buckets.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: exponent -> observation count (exponent None = zero/underflow).
        self.buckets: dict[int | None, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram observations must be >= 0, "
                             f"got {value}")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        exponent = math.frexp(value)[1] if value > 0.0 else None
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_edges(self) -> list[tuple[float, int]]:
        """Sorted ``(upper_edge, count)`` pairs (edge 0.0 = exact zeros)."""
        edges = []
        for exponent, count in self.buckets.items():
            edge = 0.0 if exponent is None else 2.0 ** exponent
            edges.append((edge, count))
        return sorted(edges)

    def quantile(self, q: float) -> float:
        """Upper bucket edge below which a fraction ``q`` of samples lie.

        Accurate to one bucket (a factor of two); 0.0 on an empty
        histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        edge = 0.0
        for edge, count in self.bucket_edges():
            seen += count
            if seen >= target:
                return min(edge, self.maximum)
        return self.maximum

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named instrument family, optionally labelled.

    An unlabelled family has exactly one child (label key ``()``);
    labelled families create children on first use.  ``labels`` declares
    the label *names*; children are keyed by label *values* in that
    order.
    """

    __slots__ = ("name", "kind", "help", "label_names", "children")

    def __init__(self, name: str, kind: str, help: str = "",
                 labels: tuple[str, ...] = ()):
        if kind not in _KINDS:
            raise ValueError(f"unknown instrument kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(labels)
        self.children: dict[tuple, Counter | Gauge | Histogram] = {}
        if not self.label_names:
            self.children[()] = _KINDS[kind]()

    def labels(self, *values) -> Counter | Gauge | Histogram:
        """The child for one label-value combination (created lazily).

        Callers on hot paths should bind the returned child once and
        increment it directly.
        """
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"value(s) {self.label_names}, got {len(values)}")
        key = tuple(values)
        child = self.children.get(key)
        if child is None:
            child = _KINDS[self.kind]()
            self.children[key] = child
        return child

    @property
    def single(self) -> Counter | Gauge | Histogram:
        """The sole child of an unlabelled family."""
        if self.label_names:
            raise ValueError(f"{self.name} is labelled "
                             f"{self.label_names}; use .labels(...)")
        return self.children[()]

    def total(self) -> float:
        """Sum over children (count sum for histograms)."""
        if self.kind == "histogram":
            return sum(child.count for child in self.children.values())
        return sum(child.value for child in self.children.values())


class MetricsRegistry:
    """Named instruments with labels, flattened on demand.

    ``const_labels`` (e.g. ``strategy=...``) are stamped onto every
    exported key, so snapshots from different runs stay distinguishable
    once merged into one document.
    """

    def __init__(self, **const_labels) -> None:
        self.const_labels = dict(const_labels)
        self._families: dict[str, Family] = {}

    # -- declaration ---------------------------------------------------------

    def _family(self, name: str, kind: str, help: str,
                labels: tuple[str, ...]) -> Family:
        family = self._families.get(name)
        if family is None:
            family = Family(name, kind, help, labels)
            self._families[name] = family
            return family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ValueError(
                f"instrument {name!r} re-declared as {kind}{labels} "
                f"(was {family.kind}{family.label_names})")
        return family

    def counter(self, name: str, help: str = "",
                labels: tuple[str, ...] = ()) -> Family:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: tuple[str, ...] = ()) -> Family:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: tuple[str, ...] = ()) -> Family:
        return self._family(name, "histogram", help, labels)

    # -- inspection ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __iter__(self) -> Iterator[Family]:
        return iter(self._families.values())

    def get(self, name: str) -> Family | None:
        return self._families.get(name)

    def snapshot(self) -> dict[str, float]:
        """Flatten every instrument into sorted ``key -> number`` form.

        Counter/gauge children export one entry; histogram children
        export ``_count``/``_sum``/``_min``/``_max`` entries (buckets
        stay queryable on the live objects -- the flat form feeds
        result identity checks, where a stable scalar set matters more
        than full shape).
        """
        flat: dict[str, float] = {}
        const = tuple(self.const_labels.items())
        for family in self._families.values():
            label_names = (tuple(name for name, _ in const) +
                           family.label_names)
            for key, child in family.children.items():
                values = tuple(value for _, value in const) + key
                if isinstance(child, Histogram):
                    base = _format_key(family.name, label_names, values)
                    flat[f"{base}_count"] = child.count
                    flat[f"{base}_sum"] = round(child.total, 9)
                    if child.count:
                        flat[f"{base}_min"] = round(child.minimum, 9)
                        flat[f"{base}_max"] = round(child.maximum, 9)
                else:
                    flat[_format_key(family.name, label_names,
                                     values)] = child.value
        return dict(sorted(flat.items()))

    def totals(self) -> dict[str, float]:
        """Per-family totals (labels collapsed), sorted by name."""
        return {name: family.total()
                for name, family in sorted(self._families.items())}


class _NullInstrument:
    """Accepts every instrument operation and records nothing."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0

    def inc(self, amount: int | float = 1) -> None:
        return

    def set(self, value: float) -> None:
        return

    def add(self, amount: float) -> None:
        return

    def observe(self, value: float) -> None:
        return


class _NullFamily:
    __slots__ = ()
    _INSTRUMENT = _NullInstrument()

    def labels(self, *values) -> _NullInstrument:
        return self._INSTRUMENT

    @property
    def single(self) -> _NullInstrument:
        return self._INSTRUMENT

    def total(self) -> float:
        return 0.0


class NullRegistry(MetricsRegistry):
    """A registry that drops everything (for fully detached runs)."""

    _FAMILY = _NullFamily()

    def __init__(self) -> None:
        super().__init__()

    def _family(self, name: str, kind: str, help: str,
                labels: tuple[str, ...]):
        return self._FAMILY

    def snapshot(self) -> dict[str, float]:
        return {}

    def totals(self) -> dict[str, float]:
        return {}


#: Shared do-nothing registry (safe: it holds no state at all).
NULL_REGISTRY = NullRegistry()
