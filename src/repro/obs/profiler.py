"""Engine profiler: per-event-type dispatch timing and heap statistics.

Two complementary views of where a run's wall-clock goes:

* :class:`EngineProfiler` wraps the kernel's dispatch step and
  attributes the elapsed time of every event pop to the *kind* of event
  dispatched (timeouts, resource grants, process resumptions by
  normalised process name), while sampling calendar depth and churn.
  It answers "which simulated activity is expensive?".
* :func:`hot_path_profile` runs a callable under the deterministic
  ``cProfile`` tracer and reports the hottest *functions* by cumulative
  time.  It answers "which Python code is expensive?" -- the concrete
  target list for the ROADMAP kernel-speed work.

The step wrapper exploits a deliberate kernel property: ``Environment.run``
binds ``step = self.step`` at loop entry, so assigning ``env.step`` as an
*instance* attribute interposes on dispatch without touching the kernel.
Attach before calling ``run``.  The profiler is strictly observational --
it reads the calendar head and the scheduling counters but never
schedules, triggers, or reorders anything, so profiled runs follow the
bare sample path exactly (only wall-clock-derived fields differ).
"""

from __future__ import annotations

import cProfile
import pstats
import re
import time
from dataclasses import dataclass, field

from ..sim.engine import Environment, Process, Timeout

__all__ = ["EngineProfiler", "EventTypeStat", "hot_path_profile",
           "HotPath"]

#: Collapses instance numbering in process names ("txn-1934-run",
#: "site-3-arrivals") so per-type aggregation groups all instances.
_DIGITS = re.compile(r"\d+")


def _classify(event) -> str:
    if isinstance(event, Process):
        return f"process:{_DIGITS.sub('#', event.name)}"
    if isinstance(event, Timeout):
        return "timeout"
    return type(event).__name__.lower()


@dataclass
class EventTypeStat:
    """Dispatch cost of one event type."""

    count: int = 0
    seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        return self.seconds / self.count * 1e6 if self.count else 0.0


@dataclass
class HotPath:
    """One entry of a :func:`hot_path_profile` report."""

    function: str
    location: str
    calls: int
    total_seconds: float
    cumulative_seconds: float


@dataclass
class _HeapStats:
    samples: int = 0
    depth_sum: int = 0
    depth_max: int = 0
    #: Events newly scheduled since the previous dispatch, summed --
    #: high churn relative to dispatch count means the calendar is being
    #: rebuilt rather than drained.
    scheduled: int = 0

    @property
    def mean_depth(self) -> float:
        return self.depth_sum / self.samples if self.samples else 0.0


class EngineProfiler:
    """Times every kernel dispatch, attributed per event type.

    Construction attaches immediately; call :meth:`detach` to restore
    the undecorated kernel (idempotent).  One profiler per environment.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.by_type: dict[str, EventTypeStat] = {}
        self.heap = _HeapStats()
        self.dispatches = 0
        self.elapsed = 0.0
        self._attached = False
        self._last_seq = env.events_scheduled
        self.attach()

    def attach(self) -> None:
        if self._attached:
            return
        if "step" in self.env.__dict__:
            raise RuntimeError("environment step is already wrapped")
        inner = self.env.step  # the bound class method
        by_type = self.by_type
        heap = self.heap
        perf_counter = time.perf_counter
        env = self.env

        def profiled_step() -> None:
            head = env.next_event()
            if head is not None:
                kind = _classify(head)
                depth = env.calendar_depth
                heap.samples += 1
                heap.depth_sum += depth
                if depth > heap.depth_max:
                    heap.depth_max = depth
            else:
                kind = "empty"
            seq = env._seq
            began = perf_counter()
            inner()
            elapsed = perf_counter() - began
            heap.scheduled += env._seq - seq
            self.dispatches += 1
            self.elapsed += elapsed
            stat = by_type.get(kind)
            if stat is None:
                stat = by_type[kind] = EventTypeStat()
            stat.count += 1
            stat.seconds += elapsed

        self.env.step = profiled_step  # type: ignore[method-assign]
        self._attached = True

    def detach(self) -> None:
        if self._attached:
            del self.env.__dict__["step"]
            self._attached = False

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready profile document (types sorted by time spent)."""
        ranked = sorted(self.by_type.items(),
                        key=lambda item: (-item[1].seconds, item[0]))
        return {
            "dispatches": self.dispatches,
            "elapsed_seconds": round(self.elapsed, 6),
            "dispatch_rate_per_sec": round(
                self.dispatches / self.elapsed, 1) if self.elapsed else 0.0,
            "heap": {
                "mean_depth": round(self.heap.mean_depth, 1),
                "peak_depth": self.heap.depth_max,
                "events_scheduled": self.heap.scheduled,
                "churn": round(self.heap.scheduled /
                               max(self.dispatches, 1), 3),
            },
            "calendar": self.env.calendar_stats(),
            "event_types": [
                {"type": kind, "count": stat.count,
                 "seconds": round(stat.seconds, 6),
                 "share": round(stat.seconds / self.elapsed, 4)
                 if self.elapsed else 0.0,
                 "mean_us": round(stat.mean_us, 2)}
                for kind, stat in ranked
            ],
        }

    def report(self, top: int = 12) -> str:
        """Human-readable dispatch profile."""
        doc = self.summary()
        heap = doc["heap"]
        calendar = doc["calendar"]
        lines = [
            f"engine profile: {doc['dispatches']} dispatch(es) in "
            f"{doc['elapsed_seconds']:.3f}s "
            f"({doc['dispatch_rate_per_sec']:,.0f}/s)",
            f"calendar: mean depth {heap['mean_depth']:.1f}, peak "
            f"{heap['peak_depth']}, churn {heap['churn']:.2f} "
            f"scheduled/dispatch",
            f"structure: {calendar['buckets']} bucket(s) "
            f"({calendar['buckets_used']} occupied, max occupancy "
            f"{calendar['max_bucket_occupancy']}), "
            f"{calendar['overflow']} far-future, "
            f"{calendar['rebuilds']} rebuild(s)",
            f"{'event type':<32} {'count':>10} {'time':>9} "
            f"{'share':>6} {'mean':>9}",
        ]
        for row in doc["event_types"][:top]:
            lines.append(
                f"{row['type']:<32} {row['count']:>10,} "
                f"{row['seconds']:>8.3f}s {row['share']:>6.1%} "
                f"{row['mean_us']:>7.1f}us")
        hidden = len(doc["event_types"]) - top
        if hidden > 0:
            lines.append(f"... and {hidden} more event type(s)")
        return "\n".join(lines)


def hot_path_profile(fn, *args, top: int = 15, **kwargs):
    """Run ``fn(*args, **kwargs)`` under ``cProfile``.

    Returns ``(result, hot_paths)`` where ``hot_paths`` is the ``top``
    functions ranked by cumulative time (profiler bookkeeping frames
    excluded).  Tracing slows the run several-fold, so never combine
    with benchmarking -- the *ranking* is the product, not the times.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    rows: list[HotPath] = []
    entries = sorted(stats.stats.items(),
                     key=lambda item: -item[1][3])  # cumulative time
    for (filename, lineno, name), data in entries:
        calls, _primitive, tottime, cumtime, _callers = data
        if filename.startswith("<") and name.startswith("<"):
            continue  # profiler/interp bookkeeping
        short = filename.rsplit("/", 1)[-1]
        rows.append(HotPath(function=name,
                            location=f"{short}:{lineno}",
                            calls=calls,
                            total_seconds=round(tottime, 6),
                            cumulative_seconds=round(cumtime, 6)))
        if len(rows) >= top:
            break
    return result, rows


def format_hot_paths(rows: list[HotPath]) -> str:
    """Table form of a :func:`hot_path_profile` result."""
    lines = [f"{'function':<36} {'location':<26} {'calls':>10} "
             f"{'total':>9} {'cumulative':>10}"]
    for row in rows:
        lines.append(f"{row.function[:36]:<36} {row.location[:26]:<26} "
                     f"{row.calls:>10,} {row.total_seconds:>8.3f}s "
                     f"{row.cumulative_seconds:>9.3f}s")
    return "\n".join(lines)
