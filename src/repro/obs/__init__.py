"""Unified observability: metrics registry, profiler, audit, bench gate.

This package is the system's *measurement* layer, distinct from the
simulation's own statistics: the :mod:`~repro.obs.registry` collects
named counters/gauges/histograms that every subsystem publishes into,
the :mod:`~repro.obs.profiler` explains where the DES kernel spends its
wall-clock time, the :mod:`~repro.obs.audit` records why every routing
decision went the way it did, and :mod:`~repro.obs.bench` turns
events/sec and figure wall-clock into a regression gate shared with the
``BENCH_*.json`` history.

Everything here is strictly observational: attaching any combination of
these observers never schedules a simulation event, touches a random
stream, or changes a message path, so observed runs are bit-identical
to bare runs (enforced by the ``observers-vs-bare`` differential check).
"""

from .audit import AuditSummary, RoutingAudit, RoutingDecision
from .logconf import add_logging_flags, setup_cli_logging
from .profiler import EngineProfiler, hot_path_profile
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
)

__all__ = [
    "AuditSummary",
    "RoutingAudit",
    "RoutingDecision",
    "add_logging_flags",
    "setup_cli_logging",
    "EngineProfiler",
    "hot_path_profile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
]
