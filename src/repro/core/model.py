"""Analytical response-time model of the hybrid system (Section 3.1).

The model estimates, for a given shipping probability ``p_ship`` and
arrival rate, the steady-state response time of local and central
(shipped class A plus class B) transactions, together with the
collision, abort and negative-acknowledgement probabilities that drive
them.  It is the basis of both the optimal static load-sharing strategy
and the analytic dynamic strategies of Section 3.2.

Structure, following the paper:

* lock collision probabilities grow linearly with (a) transaction rate
  per database, (b) locks per transaction and (c) mean lock holding time
  -- Little's law: the expected number of held locks a request can hit is
  ``rate * N_l * beta``, divided by the database's lock space (the
  simulation section's constant ``C = N_l / lockspace``);
* same-site collisions (local-local at a distributed site,
  central-central at the complex) become **lock waits**, expanding the
  locked phase of the response time;
* cross-site collisions (a local and a central transaction logically
  holding the same entity at their respective replicas) become **aborts**:
  the local transaction is aborted if it is still running when the
  central transaction's authentication reaches the master (probability
  from the residual-time distributions of :mod:`repro.analysis.residual`),
  and the central transaction is invalidated by the asynchronous update
  otherwise;
* authentication can also draw a **negative acknowledgement** when the
  entities carry in-flight coherence updates, forcing re-execution;
* CPU times are expanded by ``1/(1-rho)`` with utilisations that include
  re-run work, authentication handling at the masters and asynchronous
  update application at the central site.

The mutually recursive equations are solved by damped fixed-point
iteration (:mod:`repro.analysis.fixedpoint`).  Response-time *formulas*
are factored out so the dynamic strategies can re-evaluate them from
observed state (queue lengths, lock counts) instead of long-run rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis.fixedpoint import solve_fixed_point
from ..analysis.mm1 import clamp_utilization, mm1_expansion
from ..analysis.residual import (
    mean_holding_time,
    probability_local_outlives,
    triangular_residual_mean,
)
from ..hybrid.config import SystemConfig

__all__ = ["ContentionState", "ModelEstimates", "AnalyticModel"]

#: Probabilities are clamped to this ceiling so overload inputs still
#: produce finite (if huge) response-time estimates that can be ranked.
MAX_PROBABILITY = 0.95

#: Cap on the locked-phase duration (seconds).  Beyond the lock-thrashing
#: point the fixed-point map genuinely diverges (the real system is
#: unstable there); capping keeps estimates finite and rankable while the
#: ``converged`` flag reports saturation.
MAX_LOCKED_PHASE = 1000.0


def _clamp_probability(p: float) -> float:
    return min(max(p, 0.0), MAX_PROBABILITY)


@dataclass(frozen=True)
class ContentionState:
    """Utilisations and per-lock-request contention probabilities.

    This is the interface between the two halves of the model: the static
    half *derives* these from arrival rates via fixed-point iteration,
    the dynamic strategies *estimate* them from instantaneous
    observations; both then evaluate the same response-time formulas.
    """

    rho_local: float
    rho_central: float
    p_wait_local: float       # local request hits a local-held lock
    p_wait_central: float     # central request hits a central-held lock
    p_wait_auth: float        # local request hits an auth-phase lock
    p_abort_local: float      # per local run
    p_abort_local_rerun: float
    p_abort_central: float    # per central run (invalidation + NAK)
    p_abort_central_rerun: float
    t_local: float            # locked-phase duration, first local run
    t_central: float          # locked-phase duration, first central run
    #: Local-site utilisation used for the authentication window.  The
    #: dynamic estimators set this to the *uncorrected* utilisation so
    #: that the incoming transaction's own routing correction does not
    #: leak into the cross-site terms of every other transaction's
    #: estimate; ``None`` (static model) falls back to ``rho_local``.
    rho_auth: float | None = None

    @property
    def rho_for_auth(self) -> float:
        return self.rho_local if self.rho_auth is None else self.rho_auth


@dataclass(frozen=True)
class ModelEstimates:
    """Full output of one analytic evaluation."""

    p_ship: float
    rate_per_site: float
    response_local: float
    response_central: float
    response_average: float
    contention: ContentionState
    converged: bool
    iterations: int

    @property
    def total_rate(self) -> float:
        return self.rate_per_site  # set by caller; see AnalyticModel


class AnalyticModel:
    """Analytic model of one configured hybrid system."""

    def __init__(self, config: SystemConfig):
        self.config = config
        workload = config.workload
        self.n_sites = workload.n_sites
        self.n_l = workload.locks_per_txn
        self.p_local = workload.p_local
        #: Per-database lock space (a local site's slice).
        self.l_db = workload.lockspace / workload.n_sites

        # Deterministic CPU demands (seconds) at each site type.
        self.cpu_overhead_l = config.cpu_seconds_local(
            config.instr_txn_overhead)
        self.cpu_calls_l = config.cpu_seconds_local(
            self.n_l * config.instr_per_db_call)
        self.cpu_commit_l = config.cpu_seconds_local(config.instr_commit)
        self.cpu_auth_master = config.cpu_seconds_local(
            config.instr_auth_master)

        self.cpu_overhead_c = config.cpu_seconds_central(
            config.instr_txn_overhead)
        self.cpu_calls_c = config.cpu_seconds_central(
            self.n_l * config.instr_per_db_call)
        self.cpu_commit_c = config.cpu_seconds_central(config.instr_commit)
        self.cpu_auth_c = config.cpu_seconds_central(
            config.instr_auth_central)
        self.cpu_update_apply = config.cpu_seconds_central(
            config.instr_update_apply)

        self.io_first = config.total_io_time
        self.delay = config.comm_delay

        #: Expected distinct master sites contacted by a class B
        #: transaction's authentication (N_l uniform references over N
        #: databases).
        n, k = self.n_sites, self.n_l
        self.class_b_masters = n * (1.0 - (1.0 - 1.0 / n) ** k)

    # ------------------------------------------------------------------
    # Response-time formulas (shared between static and dynamic halves)
    # ------------------------------------------------------------------

    def auth_window(self, rho_local: float) -> float:
        """Time the authentication phase holds locks at a master site.

        Round trip to the master plus the (queue-expanded) authentication
        check on the master's CPU.
        """
        return (2.0 * self.delay +
                self.cpu_auth_master * mm1_expansion(rho_local))

    def local_locked_phase(self, state: ContentionState,
                           first_run: bool) -> float:
        """Duration of a local run's locked phase (first lock to commit)."""
        expansion = mm1_expansion(state.rho_local)
        cpu = (self.cpu_calls_l + self.cpu_commit_l) * expansion
        io = self.n_l * self.config.io_per_db_call if first_run else 0.0
        wait_ll = (self.n_l * state.p_wait_local *
                   triangular_residual_mean(state.t_local))
        wait_auth = (self.n_l * state.p_wait_auth *
                     self.auth_window(state.rho_for_auth) / 2.0)
        return cpu + io + wait_ll + wait_auth

    def central_locked_phase(self, state: ContentionState,
                             first_run: bool) -> float:
        """Duration of a central run's locked phase, including the
        authentication window (locks are held until commit)."""
        expansion = mm1_expansion(state.rho_central)
        cpu = (self.cpu_calls_c + self.cpu_commit_c +
               self.cpu_auth_c) * expansion
        io = self.n_l * self.config.io_per_db_call if first_run else 0.0
        wait_cc = (self.n_l * state.p_wait_central *
                   triangular_residual_mean(state.t_central))
        return cpu + io + wait_cc + self.auth_window(state.rho_for_auth)

    def response_local(self, state: ContentionState) -> float:
        """Mean response time of a class A transaction retained locally."""
        expansion = mm1_expansion(state.rho_local)
        first = (self.config.io_initial +
                 self.cpu_overhead_l * expansion +
                 self.local_locked_phase(state, first_run=True))
        rerun = (self.cpu_overhead_l * expansion +
                 self.local_locked_phase(state, first_run=False))
        expected_reruns = (state.p_abort_local /
                           max(1.0 - state.p_abort_local_rerun, 1e-9))
        return first + expected_reruns * rerun

    def response_central(self, state: ContentionState) -> float:
        """Mean response time of a shipped class A / class B transaction.

        Includes the input shipment and the output response message (one
        communications delay each way) on top of the central execution.
        """
        expansion = mm1_expansion(state.rho_central)
        first = (self.config.io_initial +
                 self.cpu_overhead_c * expansion +
                 self.central_locked_phase(state, first_run=True))
        rerun = (self.cpu_overhead_c * expansion +
                 self.central_locked_phase(state, first_run=False))
        expected_reruns = (state.p_abort_central /
                           max(1.0 - state.p_abort_central_rerun, 1e-9))
        return 2.0 * self.delay + first + expected_reruns * rerun

    def response_average(self, state: ContentionState,
                         p_ship: float) -> float:
        """Mean over all transactions (class A local/shipped plus B)."""
        weight_local = self.p_local * (1.0 - p_ship)
        weight_central = self.p_local * p_ship + (1.0 - self.p_local)
        return (weight_local * self.response_local(state) +
                weight_central * self.response_central(state))

    # ------------------------------------------------------------------
    # Static (rate-driven) fixed point
    # ------------------------------------------------------------------

    def evaluate(self, p_ship: float,
                 rate_per_site: float) -> ModelEstimates:
        """Solve the model for shipping probability ``p_ship``."""
        if not 0.0 <= p_ship <= 1.0:
            raise ValueError(f"p_ship out of range: {p_ship}")
        if rate_per_site <= 0:
            raise ValueError("rate_per_site must be positive")

        initial = {
            "rho_l": 0.1, "rho_c": 0.1,
            "t_l": self.cpu_calls_l + self.n_l * self.config.io_per_db_call,
            "t_c": self.cpu_calls_c + self.n_l * self.config.io_per_db_call
            + 2 * self.delay,
            "p_al": 0.0, "p_alr": 0.0, "p_ac": 0.0, "p_acr": 0.0,
        }
        result = solve_fixed_point(
            lambda state: self._step(state, p_ship, rate_per_site),
            initial, damping=0.4, tolerance=1e-7, max_iterations=400)
        state = self._contention_from(result.state, p_ship, rate_per_site)
        return ModelEstimates(
            p_ship=p_ship,
            rate_per_site=rate_per_site,
            response_local=self.response_local(state),
            response_central=self.response_central(state),
            response_average=self.response_average(state, p_ship),
            contention=state,
            converged=result.converged,
            iterations=result.iterations,
        )

    # -- rate helpers --------------------------------------------------------

    def _rates(self, p_ship: float, rate: float) -> dict[str, float]:
        """New-transaction rates implied by the routing mix."""
        local_new = rate * self.p_local * (1.0 - p_ship)
        # Central arrivals per database: shipped class A land in their
        # home database; class B spread uniformly, so each database sees
        # the same density (Section 3.1).
        central_new_db = rate * ((1.0 - self.p_local) +
                                 self.p_local * p_ship)
        return {"local_new": local_new, "central_new_db": central_new_db}

    def _step(self, state: dict[str, float], p_ship: float,
              rate: float) -> dict[str, float]:
        """One fixed-point sweep of the Section 3.1 equations."""
        rates = self._rates(p_ship, rate)
        lam_l = rates["local_new"]
        lam_c = rates["central_new_db"]

        p_al = _clamp_probability(state["p_al"])
        p_alr = _clamp_probability(state["p_alr"])
        p_ac = _clamp_probability(state["p_ac"])
        p_acr = _clamp_probability(state["p_acr"])

        # Total run rates (first runs plus re-runs), per database.
        reruns_l = p_al / max(1.0 - p_alr, 0.05)
        reruns_c = p_ac / max(1.0 - p_acr, 0.05)
        runs_l = lam_l * (1.0 + reruns_l)
        runs_c = lam_c * (1.0 + reruns_c)

        t_l = max(state["t_l"], 1e-6)
        t_c = max(state["t_c"], 1e-6)
        beta_l = mean_holding_time(t_l, self.n_l)
        beta_c = mean_holding_time(t_c, self.n_l)

        # -- utilisations ----------------------------------------------------
        cpu_txn_l = self.cpu_overhead_l + self.cpu_calls_l + \
            self.cpu_commit_l
        auth_rate_site = (rate * self.p_local * p_ship +
                          rate * (1.0 - self.p_local) *
                          self.class_b_masters) * (1.0 + reruns_c)
        rho_l = clamp_utilization(
            runs_l * cpu_txn_l + auth_rate_site * self.cpu_auth_master)

        cpu_txn_c = (self.cpu_overhead_c + self.cpu_calls_c +
                     self.cpu_commit_c + self.cpu_auth_c)
        update_rate = self.n_sites * lam_l  # one batch per local commit
        rho_c = clamp_utilization(
            self.n_sites * runs_c * cpu_txn_c +
            update_rate * self.cpu_update_apply)

        # -- contention probabilities (Little's law / C-constant form) --------
        locks_local_db = runs_l * self.n_l * beta_l
        locks_central_db = runs_c * self.n_l * beta_c
        p_wait_local = _clamp_probability(locks_local_db / self.l_db)
        p_wait_central = _clamp_probability(locks_central_db / self.l_db)
        auth_locks_db = (runs_c * self.n_l *
                         self.auth_window(rho_l))
        p_wait_auth = _clamp_probability(auth_locks_db / self.l_db)

        # -- cross-site collisions -> aborts -----------------------------------
        # Collision rate per database between logically concurrent local
        # and central holders (both request directions).
        coll_rate = (runs_l * self.n_l * locks_central_db / self.l_db +
                     runs_c * self.n_l * locks_local_db / self.l_db)
        w_local = probability_local_outlives(t_l, t_c, self.delay)
        new_p_al = _clamp_probability(
            w_local * coll_rate / max(runs_l, 1e-9))
        p_central_inv = (1.0 - w_local) * coll_rate / max(runs_c, 1e-9)

        # Negative acknowledgements: probability an authenticated entity
        # still has in-flight coherence updates.
        inflight = (lam_l * self.n_l *
                    (2.0 * self.delay + self.cpu_update_apply *
                     mm1_expansion(rho_c)))
        p_entity_busy = min(inflight / self.l_db, 1.0)
        p_nak = _clamp_probability(
            1.0 - (1.0 - p_entity_busy) ** self.n_l)
        new_p_ac = _clamp_probability(p_central_inv + p_nak)

        # Re-runs are shorter (no I/O), hence proportionally less exposed.
        shrink_l = self._rerun_shrink(t_l, first_io=True)
        shrink_c = self._rerun_shrink(t_c, first_io=True)
        new_p_alr = _clamp_probability(new_p_al * shrink_l)
        new_p_acr = _clamp_probability(new_p_ac * shrink_c)

        # -- locked-phase durations via the shared formulas ---------------------
        contention = ContentionState(
            rho_local=rho_l, rho_central=rho_c,
            p_wait_local=p_wait_local, p_wait_central=p_wait_central,
            p_wait_auth=p_wait_auth,
            p_abort_local=new_p_al, p_abort_local_rerun=new_p_alr,
            p_abort_central=new_p_ac, p_abort_central_rerun=new_p_acr,
            t_local=t_l, t_central=t_c)
        new_t_l = min(self.local_locked_phase(contention, first_run=True),
                      MAX_LOCKED_PHASE)
        new_t_c = min(self.central_locked_phase(contention, first_run=True),
                      MAX_LOCKED_PHASE)

        return {
            "rho_l": rho_l, "rho_c": rho_c,
            "t_l": new_t_l, "t_c": new_t_c,
            "p_al": new_p_al, "p_alr": new_p_alr,
            "p_ac": new_p_ac, "p_acr": new_p_acr,
        }

    def _rerun_shrink(self, locked_phase: float, first_io: bool) -> float:
        """Ratio of a re-run's lock exposure to the first run's."""
        io = self.n_l * self.config.io_per_db_call if first_io else 0.0
        if locked_phase <= 0:
            return 1.0
        return max(locked_phase - io, 1e-9) / locked_phase

    def _contention_from(self, state: dict[str, float], p_ship: float,
                         rate: float) -> ContentionState:
        """Freeze the converged fixed-point state into a ContentionState."""
        rates = self._rates(p_ship, rate)
        lam_l = rates["local_new"]
        lam_c = rates["central_new_db"]
        reruns_l = state["p_al"] / max(1.0 - state["p_alr"], 0.05)
        reruns_c = state["p_ac"] / max(1.0 - state["p_acr"], 0.05)
        runs_l = lam_l * (1.0 + reruns_l)
        runs_c = lam_c * (1.0 + reruns_c)
        t_l = max(state["t_l"], 1e-6)
        t_c = max(state["t_c"], 1e-6)
        beta_l = mean_holding_time(t_l, self.n_l)
        beta_c = mean_holding_time(t_c, self.n_l)
        return ContentionState(
            rho_local=clamp_utilization(state["rho_l"]),
            rho_central=clamp_utilization(state["rho_c"]),
            p_wait_local=_clamp_probability(
                runs_l * self.n_l * beta_l / self.l_db),
            p_wait_central=_clamp_probability(
                runs_c * self.n_l * beta_c / self.l_db),
            p_wait_auth=_clamp_probability(
                runs_c * self.n_l * self.auth_window(state["rho_l"]) /
                self.l_db),
            p_abort_local=_clamp_probability(state["p_al"]),
            p_abort_local_rerun=_clamp_probability(state["p_alr"]),
            p_abort_central=_clamp_probability(state["p_ac"]),
            p_abort_central_rerun=_clamp_probability(state["p_acr"]),
            t_local=t_l,
            t_central=t_c,
        )
