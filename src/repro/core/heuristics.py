"""Heuristic load-sharing strategies (Sections 3.2.3, 3.2.4, 4.2).

Three families:

* :class:`MeasuredResponseTimeRouter` (paper curve A): route by
  comparing the measured response times of the last shipped and the last
  retained class A transaction of this site -- trying to keep the two
  comparable.  The paper finds it the weakest dynamic scheme because the
  signal describes the past, not the current system state.
* :class:`QueueLengthRouter` (paper curve B): ship whenever the
  (delayed) central CPU queue is shorter than the local one -- the
  send-to-shortest-queue policy of the load-balancing literature.
* :class:`ThresholdUtilizationRouter` (Figures 4.4 / 4.7): estimate
  utilisations from the queue lengths (*excluding* the incoming
  transaction -- no response time is being estimated, Section 3.2.4) and
  ship when ``rho_local - rho_central > threshold``.  The optimal
  threshold is negative for small communications delays (the faster
  central CPU wins ties) and grows positive as the delay increases.
"""

from __future__ import annotations

from ..analysis.mm1 import utilization_from_queue_length
from ..db.transaction import Placement, Transaction
from ..hybrid.config import SystemConfig
from .router import Router, RoutingObservation

__all__ = [
    "MeasuredResponseTimeRouter",
    "QueueLengthRouter",
    "ThresholdUtilizationRouter",
    "SenderInitiatedRouter",
    "measured_response_router",
    "queue_length_router",
    "threshold_router_factory",
    "sender_initiated_router_factory",
]


class MeasuredResponseTimeRouter(Router):
    """Paper curve A: compare last-shipped vs last-local response times.

    Both memories start at zero, which bootstraps exploration: the first
    decision retains (tie), giving a local sample; as soon as the local
    response time is positive the next transaction is shipped, giving a
    shipped sample; thereafter the comparison is genuine.
    """

    name = "measured-response-time"

    def __init__(self) -> None:
        self.last_local_response = 0.0
        self.last_shipped_response = 0.0

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        if self.last_shipped_response < self.last_local_response:
            return Placement.SHIPPED
        return Placement.LOCAL

    def observe_completion(self, txn: Transaction) -> None:
        if txn.placement is Placement.SHIPPED:
            self.last_shipped_response = txn.response_time
        elif txn.placement is Placement.LOCAL:
            self.last_local_response = txn.response_time


class QueueLengthRouter(Router):
    """Paper curve B: ship iff the central queue is strictly shorter.

    Uses the *delayed* central queue length (updated only when protocol
    messages arrive from the central site), exactly as the paper's
    simulation does.
    """

    name = "queue-length"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        if observation.central.queue_length < observation.local_queue_length:
            return Placement.SHIPPED
        return Placement.LOCAL


class ThresholdUtilizationRouter(Router):
    """Figures 4.4 / 4.7: ship when rho_local - rho_central > threshold.

    Negative thresholds ship even when the local site looks *less*
    utilised than the central site -- justified when the central MIPS
    advantage outweighs the communications delay (0.2 s case, optimum
    around -0.2); larger delays push the optimum positive-ward (0.5 s
    case, optimum around +0.1).
    """

    def __init__(self, threshold: float):
        self.threshold = threshold
        self.name = f"threshold({threshold:+.2f})"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        # Section 3.2.4: current utilisations, excluding the incoming
        # transaction (no correction terms -- nothing is being estimated
        # about the new transaction's response time).
        rho_local = utilization_from_queue_length(
            observation.local_queue_length)
        rho_central = utilization_from_queue_length(
            observation.central.queue_length)
        if rho_local - rho_central > self.threshold:
            return Placement.SHIPPED
        return Placement.LOCAL


class SenderInitiatedRouter(Router):
    """Sender-initiated threshold transfer (Eager/Lazowska/Zahorjan 1986).

    The paper cites the [EAGE86A,B] "send-message threshold heuristics"
    as the relevant load-balancing literature.  The classic
    sender-initiated policy transfers a job when the *local* queue length
    at arrival reaches a threshold ``T``, regardless of remote state --
    the cheapest possible signal (no remote information at all).

    Included as a literature baseline: it ignores the MIPS asymmetry,
    the communication delay and data contention, which is precisely the
    gap the paper's analytic schemes close.
    """

    def __init__(self, queue_threshold: int):
        if queue_threshold < 1:
            raise ValueError("queue threshold must be >= 1")
        self.queue_threshold = queue_threshold
        self.name = f"sender-initiated(T={queue_threshold})"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        if observation.local_queue_length >= self.queue_threshold:
            return Placement.SHIPPED
        return Placement.LOCAL


def measured_response_router(config: SystemConfig, site: int) -> Router:
    """Factory for paper curve A (per-site memory)."""
    return MeasuredResponseTimeRouter()


def queue_length_router(config: SystemConfig, site: int) -> Router:
    """Factory for paper curve B."""
    return QueueLengthRouter()


def threshold_router_factory(threshold: float):
    """Factory-of-factories for the thresholded heuristic."""

    def factory(config: SystemConfig, site: int) -> Router:
        return ThresholdUtilizationRouter(threshold)

    return factory


def sender_initiated_router_factory(queue_threshold: int = 2):
    """Factory-of-factories for the sender-initiated baseline."""

    def factory(config: SystemConfig, site: int) -> Router:
        return SenderInitiatedRouter(queue_threshold)

    return factory
