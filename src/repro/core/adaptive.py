"""Self-tuning threshold routing (an extension beyond the paper).

The paper's closing observation is that the optimal utilisation
threshold of the queue-length heuristic *depends on the communications
delay, the MIPS ratio, the fraction of local transactions and the number
of sites* -- i.e. it must be re-tuned whenever the system changes.  This
module supplies the natural follow-up the paper leaves open: a threshold
router that tunes itself online.

:class:`AdaptiveThresholdRouter` keeps exponentially weighted averages
of the response times its own shipped and retained class A transactions
achieved, and hill-climbs the threshold: when shipped transactions have
been finishing faster, the threshold is lowered (ship more); when
retained ones win, it is raised.  The step size shrinks as evidence
accumulates, and the threshold is clamped to a sane band.

This is *not* a paper curve; it is benchmarked against the tuned static
thresholds in ``benchmarks/test_ablations.py`` and exercised in the
``comm_delay_study`` example family.
"""

from __future__ import annotations

from ..analysis.mm1 import utilization_from_queue_length
from ..db.transaction import Placement, Transaction
from ..hybrid.config import SystemConfig
from .router import Router, RoutingObservation

__all__ = ["AdaptiveThresholdRouter", "adaptive_threshold_router"]


class AdaptiveThresholdRouter(Router):
    """Queue-length threshold heuristic with online hill-climbing."""

    def __init__(self, initial_threshold: float = 0.0,
                 step: float = 0.02, smoothing: float = 0.1,
                 bounds: tuple[float, float] = (-0.5, 0.5)):
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if step <= 0:
            raise ValueError("step must be positive")
        low, high = bounds
        if low >= high:
            raise ValueError(f"empty threshold band {bounds}")
        self.threshold = float(initial_threshold)
        self.step = step
        self.smoothing = smoothing
        self.bounds = bounds
        self._shipped_rt: float | None = None
        self._local_rt: float | None = None
        self.adjustments = 0
        self.name = "adaptive-threshold"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        rho_local = utilization_from_queue_length(
            observation.local_queue_length)
        rho_central = utilization_from_queue_length(
            observation.central.queue_length)
        if rho_local - rho_central > self.threshold:
            return Placement.SHIPPED
        return Placement.LOCAL

    def observe_completion(self, txn: Transaction) -> None:
        response = txn.response_time
        if txn.placement is Placement.SHIPPED:
            self._shipped_rt = self._blend(self._shipped_rt, response)
        elif txn.placement is Placement.LOCAL:
            self._local_rt = self._blend(self._local_rt, response)
        else:
            return
        self._adjust()

    def _blend(self, current: float | None, observation: float) -> float:
        if current is None:
            return observation
        return (1.0 - self.smoothing) * current + \
            self.smoothing * observation

    def _adjust(self) -> None:
        """One hill-climbing step once both signals exist."""
        if self._shipped_rt is None or self._local_rt is None:
            return
        low, high = self.bounds
        if self._shipped_rt < self._local_rt:
            self.threshold = max(low, self.threshold - self.step)
        elif self._shipped_rt > self._local_rt:
            self.threshold = min(high, self.threshold + self.step)
        self.adjustments += 1


def adaptive_threshold_router(config: SystemConfig,
                              site: int) -> AdaptiveThresholdRouter:
    """Factory with default tuning parameters."""
    return AdaptiveThresholdRouter()
