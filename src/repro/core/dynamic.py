"""The four analytic dynamic load-sharing strategies (Sections 3.2.1-2).

All four estimate response times with :class:`~repro.core.estimators.StateEstimator`
and differ along two axes:

=====================  ===============================  =========================
Paper curve            Objective                        Utilisation source
=====================  ===============================  =========================
C (Fig 4.2)            minimise incoming txn RT         CPU queue length
D (Fig 4.2)            minimise incoming txn RT         number in system
E (Fig 4.2)            minimise average RT of all txns  CPU queue length
F (Fig 4.2)            minimise average RT of all txns  number in system
=====================  ===============================  =========================

The min-average schemes weight the estimated local and central response
times by the populations affected by the decision (Section 3.2.2): for
case (1), run locally,

    [(n_i + 1) R_L^(1) + n_c R_C^(1)] / (n_i + n_c + 1)

and for case (2), ship,

    [n_i R_L^(2) + (n_c + 1) R_C^(2)] / (n_i + n_c + 1),

routing to whichever case yields the smaller weighted average -- thereby
accounting for the effect of the routing decision on the transactions
already running, which the paper finds to be the decisive refinement.
"""

from __future__ import annotations

from ..db.transaction import Placement, Transaction
from ..hybrid.config import SystemConfig
from .estimators import StateEstimator, UtilizationSource
from .router import Router, RoutingObservation

__all__ = [
    "MinIncomingResponseRouter",
    "MinAverageResponseRouter",
    "min_incoming_queue_router",
    "min_incoming_population_router",
    "min_average_queue_router",
    "min_average_population_router",
]


class MinIncomingResponseRouter(Router):
    """Minimise the estimated response time of the incoming transaction.

    Paper curves C (queue-length source) and D (number-in-system source).
    """

    def __init__(self, config: SystemConfig, source: UtilizationSource):
        self.estimator = StateEstimator(config, source)
        self.name = f"min-incoming({source.value})"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        cases = self.estimator.estimate_cases(observation)
        # The incoming transaction's own estimated RT under the *current*
        # load at each candidate processor (it does not queue behind
        # itself): ship iff the central path looks faster.
        if cases.central_base < cases.local_base:
            return Placement.SHIPPED
        return Placement.LOCAL


class MinAverageResponseRouter(Router):
    """Minimise the estimated average RT of *all* running transactions.

    Paper curves E (queue-length source) and F (number-in-system source);
    the paper's best-performing family.
    """

    def __init__(self, config: SystemConfig, source: UtilizationSource):
        self.estimator = StateEstimator(config, source)
        self.name = f"min-average({source.value})"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        cases = self.estimator.estimate_cases(observation)
        n_local = observation.local_n_txns
        n_central = observation.central.n_txns
        population = n_local + n_central + 1
        # Case (1), retain: the n_i running locals see the newcomer's
        # added load; the newcomer sees the current local load; central
        # transactions are unaffected.
        average_retain = (n_local * cases.local_plus +
                          cases.local_base +
                          n_central * cases.central_base) / population
        # Case (2), ship: locals are relieved; the newcomer sees the
        # current central load; the n_c running centrals see the added
        # load.
        average_ship = (n_local * cases.local_base +
                        cases.central_base +
                        n_central * cases.central_plus) / population
        if average_ship < average_retain:
            return Placement.SHIPPED
        return Placement.LOCAL


def min_incoming_queue_router(config: SystemConfig, site: int) -> Router:
    """Factory for paper curve C."""
    return MinIncomingResponseRouter(config, UtilizationSource.QUEUE_LENGTH)


def min_incoming_population_router(config: SystemConfig,
                                   site: int) -> Router:
    """Factory for paper curve D."""
    return MinIncomingResponseRouter(config, UtilizationSource.POPULATION)


def min_average_queue_router(config: SystemConfig, site: int) -> Router:
    """Factory for paper curve E."""
    return MinAverageResponseRouter(config, UtilizationSource.QUEUE_LENGTH)


def min_average_population_router(config: SystemConfig,
                                  site: int) -> Router:
    """Factory for paper curve F (the paper's best strategy)."""
    return MinAverageResponseRouter(config, UtilizationSource.POPULATION)
