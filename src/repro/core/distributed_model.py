"""Analytic response-time estimate for the fully distributed mode.

A closed-form companion to :class:`~repro.core.model.AnalyticModel` for
``class_b_mode = "remote-call"``: a class B transaction running at its
home site pays its local execution (queue-expanded on the 1 MIPS site)
plus one synchronous round trip per remote reference, each costing two
communication delays plus the (queue-expanded) server-side call handling
at the central complex.

This is the quantitative form of the introduction's [DIAS87] statement:
with ``k`` remote calls per transaction the distributed execution adds
``k * (2 D + S_server)`` of pure latency, so it loses to shipping (which
pays the round trips only once) as soon as ``k`` is not much smaller
than one.  :func:`crossover_locality` solves for the class B locality at
which the two execution modes break even.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.mm1 import mm1_expansion
from ..hybrid.config import SystemConfig
from .model import AnalyticModel

__all__ = ["DistributedEstimate", "DistributedModel", "crossover_locality"]


@dataclass(frozen=True)
class DistributedEstimate:
    """Zero-contention estimate of one class B execution mode pair."""

    remote_calls: float
    response_distributed: float
    response_centralized: float

    @property
    def distributed_wins(self) -> bool:
        return self.response_distributed < self.response_centralized


class DistributedModel:
    """Estimates class B response time under both execution modes."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.model = AnalyticModel(config)

    def remote_calls(self, p_b_local: float | None) -> float:
        """Expected remote references per class B transaction."""
        workload = self.config.workload
        if p_b_local is None:
            return workload.locks_per_txn * \
                (1.0 - 1.0 / workload.n_sites)
        if not 0.0 <= p_b_local <= 1.0:
            raise ValueError(f"p_b_local out of range: {p_b_local}")
        return workload.locks_per_txn * (1.0 - p_b_local)

    def estimate(self, p_b_local: float | None,
                 rho_local: float = 0.0,
                 rho_central: float = 0.0) -> DistributedEstimate:
        """Estimate both modes at given utilisations (0 = idle system)."""
        config = self.config
        model = self.model
        k_remote = self.remote_calls(p_b_local)
        k_local = config.locks_per_txn - k_remote
        expand_l = mm1_expansion(rho_local)
        expand_c = mm1_expansion(rho_central)

        # Distributed: full pathlength on the slow local CPU; I/O only
        # for home references (remote data arrives with the reply);
        # one round trip plus server-side call handling per remote ref.
        cpu_local = (model.cpu_overhead_l + model.cpu_calls_l +
                     model.cpu_commit_l) * expand_l
        io_local = config.io_initial + k_local * config.io_per_db_call
        remote = k_remote * (
            2.0 * config.comm_delay +
            config.cpu_seconds_central(config.instr_per_db_call) *
            expand_c)
        response_distributed = cpu_local + io_local + remote

        # Centralized (shipped): the Section 3.1 central path at the
        # same utilisations.
        cpu_central = (model.cpu_overhead_c + model.cpu_calls_c +
                       model.cpu_commit_c + model.cpu_auth_c) * expand_c
        response_centralized = (
            2.0 * config.comm_delay + config.total_io_time + cpu_central +
            model.auth_window(rho_local))

        return DistributedEstimate(
            remote_calls=k_remote,
            response_distributed=response_distributed,
            response_centralized=response_centralized)


def crossover_locality(config: SystemConfig, rho_local: float = 0.0,
                       rho_central: float = 0.0,
                       tolerance: float = 1e-4) -> float:
    """Class B locality at which the two modes break even.

    Returns the ``p_b_local`` where the distributed estimate equals the
    centralized one (bisection; the distributed response is monotone
    decreasing in locality).  Returns 0.0 or 1.0 when one mode dominates
    over the whole range.
    """
    model = DistributedModel(config)

    def gap(p_b_local: float) -> float:
        estimate = model.estimate(p_b_local, rho_local, rho_central)
        return estimate.response_distributed - \
            estimate.response_centralized

    low, high = 0.0, 1.0
    if gap(low) <= 0:
        return 0.0
    if gap(high) >= 0:
        return 1.0
    while high - low > tolerance:
        middle = (low + high) / 2.0
        if gap(middle) > 0:
            low = middle
        else:
            high = middle
    return (low + high) / 2.0
