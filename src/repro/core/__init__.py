"""The paper's contribution: load-sharing strategies for hybrid systems.

Exports the analytic model, the static optimiser, the four analytic
dynamic strategies, the heuristics, and a registry of named strategy
factories used by the experiment harness.
"""

from typing import Callable

from ..hybrid.config import SystemConfig
from .adaptive import AdaptiveThresholdRouter, adaptive_threshold_router
from .distributed_model import (
    DistributedEstimate,
    DistributedModel,
    crossover_locality,
)
from .dynamic import (
    MinAverageResponseRouter,
    MinIncomingResponseRouter,
    min_average_population_router,
    min_average_queue_router,
    min_incoming_population_router,
    min_incoming_queue_router,
)
from .estimators import ResponseEstimate, StateEstimator, UtilizationSource
from .heuristics import (
    MeasuredResponseTimeRouter,
    QueueLengthRouter,
    SenderInitiatedRouter,
    ThresholdUtilizationRouter,
    measured_response_router,
    queue_length_router,
    sender_initiated_router_factory,
    threshold_router_factory,
)
from .model import AnalyticModel, ContentionState, ModelEstimates
from .router import (
    AlwaysLocalRouter,
    AlwaysShipRouter,
    Router,
    RouterFactory,
    RoutingObservation,
)
from .static import (
    StaticOptimum,
    StaticRouter,
    optimal_static_router_factory,
    optimize_static,
    static_router_factory,
)


def no_load_sharing_router(config: SystemConfig, site: int) -> Router:
    """Factory for the no-load-sharing baseline."""
    return AlwaysLocalRouter()


#: Named strategy factories (keyed as used in figures and reports).
#: Entries are ``name -> factory-builder(config) -> RouterFactory``; the
#: indirection lets the static strategy run its optimisation per config.
STRATEGIES: dict[str, Callable[[SystemConfig], RouterFactory]] = {
    "none": lambda config: no_load_sharing_router,
    "static-optimal": optimal_static_router_factory,
    "measured-response": lambda config: measured_response_router,
    "queue-length": lambda config: queue_length_router,
    "min-incoming-queue": lambda config: min_incoming_queue_router,
    "min-incoming-population": lambda config: min_incoming_population_router,
    "min-average-queue": lambda config: min_average_queue_router,
    "min-average-population": lambda config: min_average_population_router,
    # Extension beyond the paper: self-tuning threshold heuristic.
    "adaptive-threshold": lambda config: adaptive_threshold_router,
    # Literature baseline the paper cites ([EAGE86]): sender-initiated.
    "sender-initiated": lambda config: sender_initiated_router_factory(),
}

__all__ = [
    "AdaptiveThresholdRouter",
    "adaptive_threshold_router",
    "DistributedEstimate",
    "DistributedModel",
    "crossover_locality",
    "MinAverageResponseRouter",
    "MinIncomingResponseRouter",
    "min_average_population_router",
    "min_average_queue_router",
    "min_incoming_population_router",
    "min_incoming_queue_router",
    "ResponseEstimate",
    "StateEstimator",
    "UtilizationSource",
    "MeasuredResponseTimeRouter",
    "QueueLengthRouter",
    "SenderInitiatedRouter",
    "sender_initiated_router_factory",
    "ThresholdUtilizationRouter",
    "measured_response_router",
    "queue_length_router",
    "threshold_router_factory",
    "AnalyticModel",
    "ContentionState",
    "ModelEstimates",
    "AlwaysLocalRouter",
    "AlwaysShipRouter",
    "Router",
    "RouterFactory",
    "RoutingObservation",
    "StaticOptimum",
    "StaticRouter",
    "optimal_static_router_factory",
    "optimize_static",
    "static_router_factory",
    "no_load_sharing_router",
    "STRATEGIES",
]
