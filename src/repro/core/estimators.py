"""State-based response-time estimation for the dynamic strategies.

Section 3.2.1 of the paper: each incoming class A transaction triggers a
*steady-state* evaluation of the same response-time formulas used by the
static model, but with utilisations and contention probabilities
estimated from simple observed quantities instead of long-run rates:

* utilisation from the CPU queue length ``rho = (q + a) / (q + 1 + a)``
  (scheme (a)), or from the number of transactions in the system
  ``rho = alpha * (n + a)`` (scheme (b)), where the correction terms
  ``a`` account for routing the incoming transaction itself;
* contention probabilities from the observed lock-table populations
  (``P = n_lock / lockspace``);
* abort probabilities from the cross-site collision estimate split by the
  residual-time comparison of Section 3.1.

The estimator performs two refinement passes over the locked-phase
durations (waits depend on holding times, which depend on waits); that is
the steady-state shortcut the paper adopts for practicality in place of a
transient analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analysis.mm1 import (
    utilization_from_population,
    utilization_from_queue_length,
)
from ..analysis.residual import probability_local_outlives
from ..hybrid.config import SystemConfig
from .model import AnalyticModel, ContentionState, _clamp_probability
from .router import RoutingObservation

__all__ = ["UtilizationSource", "ResponseEstimate", "StateEstimator"]


class UtilizationSource(enum.Enum):
    """Which observable feeds the utilisation estimate."""

    QUEUE_LENGTH = "queue-length"       # scheme (a), Section 3.2.1
    POPULATION = "number-in-system"     # scheme (b), Section 3.2.1


@dataclass(frozen=True)
class ResponseEstimate:
    """Estimated response times under one routing hypothesis."""

    ship: bool
    response_local: float      # for transactions retained at this site
    response_central: float    # for shipped/central transactions
    rho_local: float
    rho_central: float


@dataclass(frozen=True)
class CaseEstimates:
    """The four response-time estimates a routing decision needs.

    ``*_base`` is the response time under the *current* observed load --
    what the incoming transaction itself would experience at that site.
    ``*_plus`` adds the incoming transaction's utilisation contribution
    (the paper's correction terms ``a``/``alpha``) -- what the
    transactions *already running* at that site would experience after
    the routing decision sends the newcomer there.
    """

    local_base: float
    local_plus: float
    central_base: float
    central_plus: float
    rho_local_base: float
    rho_central_base: float


class StateEstimator:
    """Evaluates the analytic formulas from an instantaneous observation."""

    #: Refinement passes over the locked-phase durations.
    PASSES = 2

    def __init__(self, config: SystemConfig,
                 source: UtilizationSource = UtilizationSource.QUEUE_LENGTH):
        self.config = config
        self.source = source
        self.model = AnalyticModel(config)
        model = self.model
        # CPU service demand (S) and CPU-free residence (Z) per
        # transaction at each site -- the inputs of the utilisation-law
        # estimator for scheme (b).
        self.demand_local = (model.cpu_overhead_l + model.cpu_calls_l +
                             model.cpu_commit_l)
        self.think_local = model.io_first
        self.demand_central = (model.cpu_overhead_c + model.cpu_calls_c +
                               model.cpu_commit_c + model.cpu_auth_c)
        # A central transaction's residence includes the authentication
        # round trip, during which it occupies no CPU.
        self.think_central = model.io_first + 2.0 * config.comm_delay
        # Fraction of the zero-load residence spent at the CPU -- the
        # paper's ``alpha``, used as the queue-length correction term.
        self.alpha_local = self.demand_local / (self.demand_local +
                                                self.think_local)
        self.alpha_central = self.demand_central / (self.demand_central +
                                                    self.think_central)

    # -- utilisation estimation ------------------------------------------------

    def _utilizations(self, observation: RoutingObservation,
                      ship: bool) -> tuple[float, float]:
        """The paper's corrected utilisation estimates for one hypothesis.

        Routing the incoming transaction adds one job's worth of load to
        the chosen processor (correction term ``a = 1`` there, ``0`` at
        the other).
        """
        extra_local = 0.0 if ship else 1.0
        extra_central = 1.0 if ship else 0.0
        if self.source is UtilizationSource.QUEUE_LENGTH:
            # The incoming transaction contributes its *CPU-resident
            # fraction* to the queue-length correction (the paper's alpha
            # term): while it runs it occupies the CPU queue only between
            # its I/O, lock and communication waits.
            rho_l = utilization_from_queue_length(
                observation.local_queue_length,
                extra_jobs=extra_local * self.alpha_local)
            rho_c = utilization_from_queue_length(
                observation.central.queue_length,
                extra_jobs=extra_central * self.alpha_central)
        else:
            rho_l = utilization_from_population(
                observation.local_n_txns, self.demand_local,
                self.think_local, extra_jobs=extra_local)
            rho_c = utilization_from_population(
                observation.central.n_txns, self.demand_central,
                self.think_central, extra_jobs=extra_central)
        return rho_l, rho_c

    # -- contention estimation ----------------------------------------------

    def contention(self, observation: RoutingObservation,
                   ship: bool) -> ContentionState:
        """Build a :class:`ContentionState` from the observation."""
        model = self.model
        config = self.config
        rho_l, rho_c = self._utilizations(observation, ship)
        # Uncorrected local utilisation for the cross-site (authentication
        # window) terms: the incoming transaction's routing must not
        # perturb the estimate of every other transaction's auth delay.
        if self.source is UtilizationSource.QUEUE_LENGTH:
            rho_auth = utilization_from_queue_length(
                observation.local_queue_length)
        else:
            rho_auth = utilization_from_population(
                observation.local_n_txns, self.demand_local,
                self.think_local)

        # Lock-table populations -> per-request contention probabilities.
        # Local locks are confined to this site's database slice; central
        # locks are spread over the whole replicated space.
        p_wait_local = _clamp_probability(
            observation.local_locks_held / model.l_db)
        central_locks_db = (observation.central.locks_held /
                            config.workload.n_sites)
        p_wait_central = _clamp_probability(central_locks_db / model.l_db)

        # Initial (zero-wait) locked-phase durations, then refine.
        t_l = (model.cpu_calls_l + model.cpu_commit_l) / (1.0 - rho_l) + \
            model.n_l * config.io_per_db_call
        t_c = (model.cpu_calls_c + model.cpu_commit_c + model.cpu_auth_c) \
            / (1.0 - rho_c) + model.n_l * config.io_per_db_call + \
            model.auth_window(rho_auth)

        state = None
        for _ in range(self.PASSES):
            auth_fraction = min(model.auth_window(rho_auth) / max(t_c, 1e-9),
                                1.0)
            p_wait_auth = _clamp_probability(p_wait_central * auth_fraction)
            w_local = probability_local_outlives(t_l, t_c, config.comm_delay)
            p_abort_local = _clamp_probability(
                w_local * model.n_l * p_wait_central)
            p_abort_central = _clamp_probability(
                (1.0 - w_local) * model.n_l * p_wait_local)
            state = ContentionState(
                rho_local=rho_l, rho_central=rho_c,
                p_wait_local=p_wait_local,
                p_wait_central=p_wait_central,
                p_wait_auth=p_wait_auth,
                p_abort_local=p_abort_local,
                p_abort_local_rerun=p_abort_local,
                p_abort_central=p_abort_central,
                p_abort_central_rerun=p_abort_central,
                t_local=t_l, t_central=t_c,
                rho_auth=rho_auth)
            t_l = model.local_locked_phase(state, first_run=True)
            t_c = model.central_locked_phase(state, first_run=True)
        return state

    # -- response estimation ------------------------------------------------

    def estimate(self, observation: RoutingObservation,
                 ship: bool) -> ResponseEstimate:
        """Estimated response times under the hypothesis ``ship``."""
        state = self.contention(observation, ship)
        return ResponseEstimate(
            ship=ship,
            response_local=self.model.response_local(state),
            response_central=self.model.response_central(state),
            rho_local=state.rho_local,
            rho_central=state.rho_central,
        )

    def estimate_both(self, observation: RoutingObservation
                      ) -> tuple[ResponseEstimate, ResponseEstimate]:
        """Estimates for (retain-local, ship) hypotheses."""
        return (self.estimate(observation, ship=False),
                self.estimate(observation, ship=True))

    def estimate_cases(self, observation: RoutingObservation
                       ) -> CaseEstimates:
        """Base and corrected estimates for both processors.

        ``contention(ship=True)`` applies the correction at the central
        site only, so its local estimate is the local *base* and its
        central estimate the central *plus* -- and symmetrically for
        ``ship=False``.
        """
        retained = self.contention(observation, ship=False)
        shipped = self.contention(observation, ship=True)
        return CaseEstimates(
            local_base=self.model.response_local(shipped),
            local_plus=self.model.response_local(retained),
            central_base=self.model.response_central(retained),
            central_plus=self.model.response_central(shipped),
            rho_local_base=shipped.rho_local,
            rho_central_base=retained.rho_central,
        )
