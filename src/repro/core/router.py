"""Routing interfaces: the ship-or-not decision point.

Every load-sharing strategy in the paper is expressed as a
:class:`Router`.  When a class A transaction arrives at site ``i``, the
site builds a :class:`RoutingObservation` (its own exact state plus the
*delayed* central state it last heard) and asks its router whether to
retain the transaction locally or ship it to the central complex.

Routers are deliberately simple objects: one per site, created by a
:class:`RouterFactory`, optionally notified of class A completions (the
measured-response-time heuristic needs that feedback signal).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from ..db.transaction import Placement, Transaction
from ..hybrid.protocol import CentralSnapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hybrid.config import SystemConfig

__all__ = ["RoutingObservation", "Router", "RouterFactory", "AlwaysLocalRouter",
           "AlwaysShipRouter"]


@dataclass(frozen=True)
class RoutingObservation:
    """System state visible to a router at decision time.

    Local fields are exact (the decision is made at the site); central
    fields come from the newest :class:`CentralSnapshot` the site has
    received and are therefore delayed by at least one communications
    delay, unless the ablation flag ``instant_central_state`` is set.
    """

    now: float
    site: int

    # Exact local-site state.
    local_queue_length: int       # q_i: CPU queue incl. running job
    local_n_txns: int             # n_i: all transactions at the site
    local_locks_held: int         # n_lock_i
    shipped_in_flight: int        # class A shipped from this site, active

    # Delayed central-site state.
    central: CentralSnapshot

    #: Whether the site->central path looked usable at decision time:
    #: False while the site suspects the central complex (unanswered
    #: retries) or while its circuit breaker refuses the path.  Always
    #: True without a fault plan, so fault-free routing is unchanged.
    central_reachable: bool = True

    @property
    def central_state_age(self) -> float:
        """Seconds since the central snapshot was taken (inf if never)."""
        return self.now - self.central.time


class Router(abc.ABC):
    """A load-sharing strategy instance for one site."""

    #: Human-readable strategy name (used in reports and figures).
    name: str = "router"

    @abc.abstractmethod
    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        """Return ``Placement.LOCAL`` or ``Placement.SHIPPED``."""

    def observe_completion(self, txn: Transaction) -> None:
        """Feedback hook: a class A transaction of this site completed."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


#: Factory signature: (config, site_index) -> Router.
RouterFactory = Callable[["SystemConfig", int], Router]


class AlwaysLocalRouter(Router):
    """No load sharing: every class A transaction runs at its home site.

    This is the paper's baseline curve in Figure 4.1.
    """

    name = "no-load-sharing"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        return Placement.LOCAL


class AlwaysShipRouter(Router):
    """Degenerate fully-centralized operation (every class A shipped).

    Not a paper curve, but the limiting case is useful in tests: it turns
    the hybrid system into the centralized architecture of the paper's
    introduction.
    """

    name = "always-ship"

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        return Placement.SHIPPED
