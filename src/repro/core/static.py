"""Static (probabilistic) load sharing and its optimiser (Section 3.1).

Static load sharing assumes the transaction arrival rates are known: the
analytic model is evaluated over a grid of shipping probabilities and the
``p_ship`` minimising the estimated average response time is selected.
:class:`StaticRouter` then ships each incoming class A transaction with
that fixed probability, independent of system state -- the baseline the
dynamic schemes are judged against in every figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..db.transaction import Placement, Transaction
from ..hybrid.config import SystemConfig
from .model import AnalyticModel, ModelEstimates
from .router import Router, RoutingObservation

__all__ = ["StaticOptimum", "optimize_static", "StaticRouter",
           "static_router_factory", "optimal_static_router_factory"]


@dataclass(frozen=True)
class StaticOptimum:
    """Result of the static optimisation at one arrival rate."""

    p_ship: float
    response_average: float
    estimates: ModelEstimates
    grid: tuple[float, ...]
    grid_responses: tuple[float, ...]


def optimize_static(config: SystemConfig,
                    rate_per_site: float | None = None,
                    grid_points: int = 41,
                    refine: bool = True) -> StaticOptimum:
    """Find the shipping probability minimising the model's average RT.

    A coarse grid scan (robust to the flat/multimodal overload region) is
    optionally refined with a finer scan around the best coarse point.
    """
    if grid_points < 3:
        raise ValueError("need at least 3 grid points")
    if rate_per_site is None:
        rate_per_site = config.workload.arrival_rate_per_site
    model = AnalyticModel(config)
    grid = np.linspace(0.0, 1.0, grid_points)
    responses = np.array([
        model.evaluate(float(p), rate_per_site).response_average
        for p in grid])
    best_index = int(np.argmin(responses))
    best_p = float(grid[best_index])
    if refine:
        low = float(grid[max(best_index - 1, 0)])
        high = float(grid[min(best_index + 1, grid_points - 1)])
        fine = np.linspace(low, high, 21)
        fine_responses = np.array([
            model.evaluate(float(p), rate_per_site).response_average
            for p in fine])
        fine_index = int(np.argmin(fine_responses))
        if fine_responses[fine_index] < responses[best_index]:
            best_p = float(fine[fine_index])
    estimates = model.evaluate(best_p, rate_per_site)
    return StaticOptimum(
        p_ship=best_p,
        response_average=estimates.response_average,
        estimates=estimates,
        grid=tuple(float(p) for p in grid),
        grid_responses=tuple(float(r) for r in responses),
    )


class StaticRouter(Router):
    """Ship each class A transaction with a fixed probability."""

    def __init__(self, p_ship: float, seed: int, site: int):
        if not 0.0 <= p_ship <= 1.0:
            raise ValueError(f"p_ship out of range: {p_ship}")
        self.p_ship = p_ship
        self.name = f"static(p={p_ship:.3f})"
        # Per-site deterministic stream, independent of the workload RNG.
        self._rng = np.random.Generator(np.random.PCG64(
            np.random.SeedSequence(entropy=seed,
                                   spawn_key=(0x57A71C, site))))

    def decide(self, txn: Transaction,
               observation: RoutingObservation) -> Placement:
        if self.p_ship > 0.0 and self._rng.random() < self.p_ship:
            return Placement.SHIPPED
        return Placement.LOCAL


def static_router_factory(p_ship: float):
    """Factory-of-factories for a fixed shipping probability."""

    def factory(config: SystemConfig, site: int) -> StaticRouter:
        return StaticRouter(p_ship, seed=config.seed, site=site)

    return factory


def optimal_static_router_factory(config: SystemConfig):
    """Optimise ``p_ship`` for the config's arrival rate, then build routers.

    The optimisation runs once (here), not per site: the paper's static
    scheme fixes one probability a priori from the known rates.
    """
    optimum = optimize_static(config)
    return static_router_factory(optimum.p_ship)
