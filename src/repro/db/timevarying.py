"""Time-varying arrival processes (load fluctuations).

The paper motivates the hybrid architecture with workloads that "exhibit
regional locality and load fluctuations".  The base experiments use
stationary Poisson arrivals; this module adds the fluctuation dimension:
a piecewise-constant rate profile per site, so scenarios like a morning
ramp, a lunchtime dip or a regional surge can be simulated directly.

:class:`RateProfile` maps simulated time to a rate multiplier;
:class:`PiecewiseArrivalProcess` drives a site's arrivals from one.  The
implementation uses thinning-free regeneration: on each segment boundary
the exponential sampler's rate is re-derived, which is exact for
piecewise-constant profiles.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Sequence

from ..sim.engine import Environment, Interrupt
from ..sim.rng import RandomStreams
from .transaction import Transaction
from .workload import TransactionFactory

__all__ = ["RateProfile", "PiecewiseArrivalProcess"]


@dataclass(frozen=True)
class RateProfile:
    """Piecewise-constant multiplier over simulated time.

    ``breakpoints[i]`` is the time at which ``multipliers[i + 1]`` takes
    effect; ``multipliers[0]`` applies from time zero.  The final
    multiplier holds forever.
    """

    breakpoints: tuple[float, ...]
    multipliers: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.multipliers) != len(self.breakpoints) + 1:
            raise ValueError(
                f"need {len(self.breakpoints) + 1} multipliers for "
                f"{len(self.breakpoints)} breakpoints")
        if any(m <= 0 for m in self.multipliers):
            raise ValueError("multipliers must be positive")
        if list(self.breakpoints) != sorted(set(self.breakpoints)):
            raise ValueError("breakpoints must be strictly increasing")
        if self.breakpoints and self.breakpoints[0] <= 0:
            raise ValueError("breakpoints must be positive times")

    @staticmethod
    def constant(multiplier: float = 1.0) -> "RateProfile":
        return RateProfile(breakpoints=(), multipliers=(multiplier,))

    @staticmethod
    def step(at: float, before: float, after: float) -> "RateProfile":
        """Single step change at time ``at``."""
        return RateProfile(breakpoints=(at,), multipliers=(before, after))

    def multiplier_at(self, time: float) -> float:
        index = bisect_right(self.breakpoints, time)
        return self.multipliers[index]

    def next_change_after(self, time: float) -> float:
        """Next breakpoint strictly after ``time`` (inf if none)."""
        index = bisect_right(self.breakpoints, time)
        if index < len(self.breakpoints):
            return self.breakpoints[index]
        return float("inf")

    def mean_multiplier(self, horizon: float) -> float:
        """Time-average multiplier over ``[0, horizon]``."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        total = 0.0
        previous = 0.0
        for index, breakpoint_ in enumerate(self.breakpoints):
            if breakpoint_ >= horizon:
                break
            total += self.multipliers[index] * (breakpoint_ - previous)
            previous = breakpoint_
        total += self.multiplier_at(previous) * (horizon - previous)
        return total / horizon


class PiecewiseArrivalProcess:
    """Poisson arrivals whose rate follows a :class:`RateProfile`.

    For a piecewise-constant rate the exact sample path is obtained by
    drawing unit-rate exponentials and scaling by the current segment's
    rate, restarting the residual at each breakpoint (memorylessness
    makes the restart exact).
    """

    def __init__(self, env: Environment, site: int,
                 factory: TransactionFactory, streams: RandomStreams,
                 submit: Callable[[Transaction], None],
                 profile: RateProfile):
        self.env = env
        self.site = site
        self.factory = factory
        self.submit = submit
        self.profile = profile
        self._unit = streams.exponential(f"tv-arrivals-site-{site}",
                                         rate=1.0)
        self.generated = 0
        self.process = env.process(self._run(),
                                   name=f"tv-arrivals@{site}")

    def _current_rate(self) -> float:
        base = self.factory.params.site_rate(self.site)
        return base * self.profile.multiplier_at(self.env.now)

    def _run(self):
        try:
            while True:
                rate = self._current_rate()
                gap = self._unit() / rate
                boundary = self.profile.next_change_after(self.env.now)
                if self.env.now + gap > boundary:
                    # Rate changes before the next arrival: jump to the
                    # boundary and redraw (exact for exponentials).
                    yield self.env.timeout(boundary - self.env.now)
                    continue
                yield self.env.timeout(gap)
                txn = self.factory.make_transaction(self.site,
                                                    self.env.now)
                self.generated += 1
                self.submit(txn)
        except Interrupt:
            return


def attach_profiles(system, profiles: Sequence[RateProfile]):
    """Replace a :class:`~repro.hybrid.system.HybridSystem`'s stationary
    arrival processes with profile-driven ones.

    Call *before* running the system.  Returns the new processes.
    """
    if len(profiles) != len(system.sites):
        raise ValueError(
            f"need {len(system.sites)} profiles, got {len(profiles)}")
    replaced = []
    for site, profile in zip(system.sites, profiles):
        old = system.arrivals[site.site_id]
        old.process.interrupt("replaced-by-profile")
        replaced.append(PiecewiseArrivalProcess(
            system.env, site.site_id, system.factory, system.streams,
            submit=site.submit, profile=profile))
    system.arrivals = replaced
    return replaced
