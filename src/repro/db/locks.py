"""Lock manager with the paper's dual-field locks.

Section 2 of the paper specifies that *"the lock manager maintains two
fields for each lock -- a concurrency control field (share or exclusive)
and a coherence control field"*:

* The **concurrency field** implements ordinary two-phase locking among
  transactions running at the *same* site: compatible requests are
  granted, incompatible requests queue FIFO.
* The **coherence field** is a counter of committed local updates whose
  asynchronous propagation to the central site has not yet been
  acknowledged.  The authentication phase of a central/shipped
  transaction must see a zero count ("null") for every entity it locked,
  otherwise the master site answers with a negative acknowledgement.

The manager also provides the *forced grant* primitive used by the
authentication phase: grant a lock to a central/shipped transaction even
if local transactions hold it incompatibly, marking those local holders
for abort (their locks transfer to the authenticating transaction).

Deadlock handling: every blocked request adds waits-for edges; a cycle
aborts the *requesting* transaction (the paper: "in the case of a
contention that leads into a deadlock the transaction is aborted and all
locks held are released").  The acquire event then fails with
:class:`DeadlockError`.
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from ..sim.engine import Environment, Event

from .deadlock import WaitsForGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transaction import Transaction

__all__ = [
    "LockMode",
    "LockError",
    "DeadlockError",
    "Lock",
    "LockRequest",
    "LockManager",
    "AuthenticationStatus",
]


class LockMode(enum.Enum):
    """Lock modes of the concurrency control field."""

    SHARE = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        """S/S is the only compatible pairing."""
        return self is LockMode.SHARE and other is LockMode.SHARE


class AuthenticationStatus(enum.Enum):
    """Outcome of an authentication-phase lock check at a master site."""

    GRANTED = "granted"
    NEGATIVE = "negative"  # in-flight coherence updates -> NAK


class LockError(Exception):
    """Misuse of the lock manager (double grant, foreign release, ...)."""


class DeadlockError(Exception):
    """Raised into a transaction whose lock request closed a cycle."""

    def __init__(self, txn_id: int, entity: int):
        super().__init__(f"transaction {txn_id} deadlocked on entity {entity}")
        self.txn_id = txn_id
        self.entity = entity


@dataclass
class LockRequest:
    """A queued (not yet granted) request on one entity."""

    txn_id: int
    mode: LockMode
    event: Event
    enqueued_at: float = 0.0


@dataclass
class Lock:
    """State of one lockable entity.

    ``holders`` maps transaction id -> granted mode (insertion ordered so
    grant history is deterministic); ``waiters`` is the FIFO queue of
    blocked requests; ``coherence_count`` is the paper's coherence control
    field.
    """

    entity: int
    holders: "OrderedDict[int, LockMode]" = field(default_factory=OrderedDict)
    waiters: deque[LockRequest] = field(default_factory=deque)
    coherence_count: int = 0

    def is_free(self) -> bool:
        return not self.holders and not self.waiters and \
            self.coherence_count == 0

    def grant_compatible(self, mode: LockMode,
                         txn_id: int | None = None) -> bool:
        """Would granting ``mode`` be compatible with current holders?

        ``txn_id`` excludes the requester itself (re-request / upgrade).
        """
        for holder, held in self.holders.items():
            if holder == txn_id:
                continue
            if not mode.compatible_with(held):
                return False
        return True


class LockManager:
    """Per-site lock table implementing the dual-field protocol.

    One instance exists at every local site and one at the central site.
    Locks are created lazily and discarded when fully free, so the 32K
    lock space of the paper's simulation costs memory only for active
    entities.
    """

    def __init__(self, env: Environment, name: str = "locks",
                 on_deadlock: Callable[[int, int], None] | None = None):
        self.env = env
        self.name = name
        self._locks: dict[int, Lock] = {}
        self._waits_for = WaitsForGraph()
        self._on_deadlock = on_deadlock
        # Counters surfaced to the dynamic routing strategies and metrics.
        self.locks_granted = 0
        self.lock_waits = 0
        self.deadlocks = 0
        self.forced_grants = 0

    # -- inspection ---------------------------------------------------------

    def lock_for(self, entity: int) -> Lock | None:
        """The :class:`Lock` record for ``entity`` (``None`` if free)."""
        return self._locks.get(entity)

    def held_modes(self, entity: int) -> dict[int, LockMode]:
        lock = self._locks.get(entity)
        return dict(lock.holders) if lock else {}

    def is_held_by(self, entity: int, txn_id: int) -> bool:
        lock = self._locks.get(entity)
        return bool(lock) and txn_id in lock.holders

    def coherence_count(self, entity: int) -> int:
        lock = self._locks.get(entity)
        return lock.coherence_count if lock else 0

    def total_locks_held(self) -> int:
        """Number of (entity, holder) grants -- the ``n_lock`` statistic."""
        return sum(len(lock.holders) for lock in self._locks.values())

    def waiting_requests(self) -> int:
        return sum(len(lock.waiters) for lock in self._locks.values())

    def entities_locked_by(self, txn_id: int) -> list[int]:
        return [entity for entity, lock in self._locks.items()
                if txn_id in lock.holders]

    # -- concurrency control --------------------------------------------------

    def acquire(self, txn_id: int, entity: int, mode: LockMode) -> Event:
        """Request ``entity`` in ``mode`` for ``txn_id``.

        Returns an event: it succeeds when the lock is granted (possibly
        immediately) and fails with :class:`DeadlockError` if the wait
        would close a waits-for cycle.  Re-requesting a held lock in the
        same or weaker mode succeeds immediately; a S->X upgrade succeeds
        if the requester is the sole holder and queues otherwise.
        """
        event = Event(self.env)
        lock = self._locks.setdefault(entity, Lock(entity))

        held = lock.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARE:
                event.succeed()  # already strong enough
                return event
            # S -> X upgrade.
            if lock.grant_compatible(LockMode.EXCLUSIVE, txn_id=txn_id):
                lock.holders[txn_id] = LockMode.EXCLUSIVE
                self.locks_granted += 1
                event.succeed()
                return event
            return self._block(lock, txn_id, mode, event)

        if not lock.waiters and lock.grant_compatible(mode, txn_id=txn_id):
            lock.holders[txn_id] = mode
            self.locks_granted += 1
            event.succeed()
            return event
        return self._block(lock, txn_id, mode, event)

    def _block(self, lock: Lock, txn_id: int, mode: LockMode,
               event: Event) -> Event:
        """Queue a request, checking for deadlock first."""
        blockers = [holder for holder in lock.holders if holder != txn_id]
        # Waiters ahead of us also (transitively) block us.
        blockers.extend(request.txn_id for request in lock.waiters)
        cycle = self._waits_for.would_deadlock(txn_id, blockers)
        if cycle:
            self.deadlocks += 1
            if self._on_deadlock is not None:
                self._on_deadlock(txn_id, lock.entity)
            error = DeadlockError(txn_id, lock.entity)
            error.cycle = cycle
            event.fail(error)
            event.defused()  # the acquiring process handles it
            return event
        self._waits_for.add_waiter(txn_id, blockers)
        self.lock_waits += 1
        lock.waiters.append(LockRequest(txn_id, mode, event,
                                        enqueued_at=self.env.now))
        return event

    def release(self, txn_id: int, entity: int) -> None:
        """Release one lock held by ``txn_id`` and grant any waiters."""
        lock = self._locks.get(entity)
        if lock is None or txn_id not in lock.holders:
            raise LockError(
                f"{self.name}: txn {txn_id} does not hold entity {entity}")
        del lock.holders[txn_id]
        self._grant_waiters(lock)
        self._collect(lock)

    def release_all(self, txn_id: int) -> list[int]:
        """Release every lock held by ``txn_id``; returns released entities."""
        released = []
        for entity in list(self._locks):
            lock = self._locks[entity]
            if txn_id in lock.holders:
                del lock.holders[txn_id]
                released.append(entity)
                self._grant_waiters(lock)
                self._collect(lock)
        self.cancel_waits(txn_id)
        return released

    def cancel_waits(self, txn_id: int) -> None:
        """Drop any queued (ungranted) requests of ``txn_id``.

        Used when a waiting transaction is aborted: its pending request
        events are abandoned, so they are removed from the queues and the
        waits-for graph.
        """
        for entity in list(self._locks):
            lock = self._locks[entity]
            pending = [request for request in lock.waiters
                       if request.txn_id == txn_id]
            for request in pending:
                lock.waiters.remove(request)
            if pending:
                self._grant_waiters(lock)
                self._collect(lock)
        self._waits_for.remove(txn_id)

    def _grant_waiters(self, lock: Lock) -> None:
        """Grant from the head of the FIFO queue while compatible."""
        while lock.waiters:
            request = lock.waiters[0]
            if not lock.grant_compatible(request.mode,
                                         txn_id=request.txn_id):
                break
            lock.waiters.popleft()
            lock.holders[request.txn_id] = request.mode
            self.locks_granted += 1
            # Granted: it waits for nobody now, but waiters queued
            # behind it still wait for it -- keep their incoming edges.
            self._waits_for.clear_waits(request.txn_id)
            if not request.event.triggered:
                request.event.succeed()

    def _collect(self, lock: Lock) -> None:
        if lock.is_free():
            self._locks.pop(lock.entity, None)

    # -- coherence control ----------------------------------------------------

    def increment_coherence(self, entity: int) -> None:
        """A committed local update to ``entity`` is now in flight."""
        lock = self._locks.setdefault(entity, Lock(entity))
        lock.coherence_count += 1

    def decrement_coherence(self, entity: int) -> None:
        """The central site acknowledged one in-flight update."""
        lock = self._locks.get(entity)
        if lock is None or lock.coherence_count <= 0:
            raise LockError(
                f"{self.name}: coherence underflow on entity {entity}")
        lock.coherence_count -= 1
        self._collect(lock)

    # -- authentication-phase primitives ---------------------------------------

    def check_authentication(self, entities: Iterable[int]) -> \
            AuthenticationStatus:
        """NAK if any entity has in-flight asynchronous updates."""
        for entity in entities:
            if self.coherence_count(entity) != 0:
                return AuthenticationStatus.NEGATIVE
        return AuthenticationStatus.GRANTED

    def force_grant(self, txn_id: int, entity: int,
                    mode: LockMode) -> list[int]:
        """Grant ``entity`` to an authenticating central/shipped transaction.

        Incompatible local holders lose the lock and are returned so the
        site can mark them for abort (the paper: "the local transactions
        holding these locks are marked for abort, the central/shipped
        transaction is granted the locks and the locks held by the
        conflicting local transactions are released").  Compatible holders
        keep their locks and share with the grantee.
        """
        lock = self._locks.setdefault(entity, Lock(entity))
        # If the grantee itself has a queued request on this entity it is
        # superseded by the grant.
        own_requests = [request for request in lock.waiters
                        if request.txn_id == txn_id]
        for request in own_requests:
            lock.waiters.remove(request)
        if own_requests:
            self._waits_for.clear_waits(txn_id)
        evicted = [holder for holder, held in lock.holders.items()
                   if holder != txn_id and not mode.compatible_with(held)]
        for holder in evicted:
            del lock.holders[holder]
        held = lock.holders.get(txn_id)
        if held is None or (held is LockMode.SHARE and
                            mode is LockMode.EXCLUSIVE):
            lock.holders[txn_id] = mode  # grant, or upgrade -- never downgrade
        self.forced_grants += 1
        # Evictions (or a share-mode grant) may unblock compatible FIFO
        # waiters; incompatible ones stay queued behind the grantee until
        # its commit/abort resolution.
        self._grant_waiters(lock)
        return evicted
