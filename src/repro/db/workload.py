"""Workload generation: arrivals, class mix and reference strings.

Reproduces the workload of the paper's simulation study (Section 4.1):

* Poisson arrivals with the same rate at every distributed site;
* a transaction is class A (purely local data) with probability
  ``p_local`` (0.75 in the paper) and class B otherwise;
* a *global lock space* of 32K entities; each local site's class A
  transactions draw lock requests uniformly over that site's tenth of the
  space, while class B transactions draw uniformly over the entire space;
* ``locks_per_txn`` (N_l = 10) database calls per transaction, one lock
  request each.

Lock mode mix: the paper's analytic model treats every collision alike
and its protocol propagates updates on commit, so the default is
all-EXCLUSIVE references (an update-intensive transaction workload).
``p_update`` makes the S/X mix configurable for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..sim.engine import Environment, Interrupt
from ..sim.rng import RandomStreams
from .locks import LockMode
from .transaction import (
    Reference,
    Transaction,
    TransactionClass,
    new_transaction_ids,
)

__all__ = ["WorkloadParams", "LockSpacePartition", "TransactionFactory",
           "ArrivalProcess"]


@dataclass(frozen=True)
class WorkloadParams:
    """Workload shape parameters (defaults from the paper, Section 4.1)."""

    n_sites: int = 10
    lockspace: int = 32 * 1024
    locks_per_txn: int = 10
    p_local: float = 0.75      # probability a transaction is class A
    p_update: float = 1.0      # probability a reference is EXCLUSIVE
    arrival_rate_per_site: float = 1.0   # transactions/second per site
    #: Optional per-site arrival-rate multipliers (hot-spot modelling,
    #: motivated by the paper's "regional locality and load
    #: fluctuations").  ``None`` means every site receives
    #: ``arrival_rate_per_site`` exactly.
    rate_multipliers: tuple[float, ...] | None = None
    #: Locality of class B references: ``None`` (the paper's base case)
    #: draws them uniformly over the whole lock space; a float in [0, 1]
    #: draws each reference from the home partition with that
    #: probability and uniformly from the *other* partitions otherwise.
    #: Controls the expected number of remote calls per class B
    #: transaction in the fully distributed mode (the [DIAS87] knob of
    #: the paper's introduction).
    p_b_local: float | None = None

    def __post_init__(self) -> None:
        if self.n_sites < 1:
            raise ValueError("need at least one site")
        if self.lockspace < self.n_sites:
            raise ValueError("lock space smaller than site count")
        if not 0.0 <= self.p_local <= 1.0:
            raise ValueError(f"p_local out of range: {self.p_local}")
        if not 0.0 <= self.p_update <= 1.0:
            raise ValueError(f"p_update out of range: {self.p_update}")
        if self.locks_per_txn < 0:
            raise ValueError("negative locks_per_txn")
        if self.arrival_rate_per_site <= 0:
            raise ValueError("arrival rate must be positive")
        if self.rate_multipliers is not None:
            if len(self.rate_multipliers) != self.n_sites:
                raise ValueError(
                    f"need {self.n_sites} rate multipliers, got "
                    f"{len(self.rate_multipliers)}")
            if any(m <= 0 for m in self.rate_multipliers):
                raise ValueError("rate multipliers must be positive")
        if self.p_b_local is not None and \
                not 0.0 <= self.p_b_local <= 1.0:
            raise ValueError(f"p_b_local out of range: {self.p_b_local}")

    @property
    def expected_remote_calls(self) -> float:
        """Expected non-home references per class B transaction."""
        if self.p_b_local is None:
            return self.locks_per_txn * (1.0 - 1.0 / self.n_sites)
        return self.locks_per_txn * (1.0 - self.p_b_local)

    def site_rate(self, site: int) -> float:
        """Arrival rate at one site (multiplier applied)."""
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range")
        if self.rate_multipliers is None:
            return self.arrival_rate_per_site
        return self.arrival_rate_per_site * self.rate_multipliers[site]

    @property
    def total_arrival_rate(self) -> float:
        if self.rate_multipliers is None:
            return self.arrival_rate_per_site * self.n_sites
        return self.arrival_rate_per_site * sum(self.rate_multipliers)


class LockSpacePartition:
    """Maps sites to their slice of the global lock space.

    Site ``i`` owns entities ``[i * size, (i + 1) * size)`` where ``size``
    is ``lockspace // n_sites``; any remainder entities at the top of the
    space belong to no site and are only reachable by class B
    transactions (with 32K/10 the paper's configuration has such a tail).
    """

    def __init__(self, lockspace: int, n_sites: int):
        if lockspace < n_sites:
            raise ValueError("lock space smaller than site count")
        self.lockspace = int(lockspace)
        self.n_sites = int(n_sites)
        self.partition_size = self.lockspace // self.n_sites

    def site_range(self, site: int) -> tuple[int, int]:
        """Half-open entity range owned by ``site``."""
        if not 0 <= site < self.n_sites:
            raise ValueError(f"site {site} out of range")
        start = site * self.partition_size
        return (start, start + self.partition_size)

    def owner(self, entity: int) -> int | None:
        """Master site of ``entity`` (``None`` for the unowned tail)."""
        if not 0 <= entity < self.lockspace:
            raise ValueError(f"entity {entity} out of range")
        site = entity // self.partition_size
        return site if site < self.n_sites else None

    def owners(self, entities: Iterator[int] | tuple[int, ...]) -> set[int]:
        """Distinct master sites of an entity collection (tail excluded)."""
        found = set()
        for entity in entities:
            owner = self.owner(entity)
            if owner is not None:
                found.add(owner)
        return found


class TransactionFactory:
    """Draws transactions (class, reference string) for one site."""

    def __init__(self, params: WorkloadParams, streams: RandomStreams):
        self.params = params
        self.partition = LockSpacePartition(params.lockspace, params.n_sites)
        self._ids = new_transaction_ids()
        self._class_rng = streams.stream("txn-class")
        self._ref_rng = streams.stream("txn-references")

    def _draw_entities(self, low: int, high: int, count: int) -> np.ndarray:
        """Distinct uniform entities from ``[low, high)``.

        Sampling without replacement: a transaction locks each entity at
        most once (duplicate draws are re-drawn; with 3K+ entity ranges
        collisions are rare, so the retry loop terminates fast).
        """
        span = high - low
        if count > span:
            raise ValueError(f"cannot draw {count} distinct from {span}")
        chosen = self._ref_rng.integers(low, high, size=count)
        seen = set()
        result = []
        for entity in chosen:
            value = int(entity)
            while value in seen:
                value = int(self._ref_rng.integers(low, high))
            seen.add(value)
            result.append(value)
        return np.array(result, dtype=np.int64)

    def _draw_modes(self, count: int) -> list[LockMode]:
        if self.params.p_update >= 1.0:
            return [LockMode.EXCLUSIVE] * count
        draws = self._ref_rng.random(count)
        return [LockMode.EXCLUSIVE if draw < self.params.p_update
                else LockMode.SHARE for draw in draws]

    def _draw_class_b_entities(self, site: int, count: int) -> np.ndarray:
        """Class B references, optionally with home-partition locality."""
        p_b_local = self.params.p_b_local
        if p_b_local is None:
            return self._draw_entities(0, self.params.lockspace, count)
        home_low, home_high = self.partition.site_range(site)
        entities: list[int] = []
        seen: set[int] = set()
        for _ in range(count):
            while True:
                if self._ref_rng.random() < p_b_local:
                    value = int(self._ref_rng.integers(home_low, home_high))
                else:
                    # Uniform over the space excluding the home partition.
                    value = int(self._ref_rng.integers(
                        0, self.params.lockspace))
                    if home_low <= value < home_high:
                        continue
                if value not in seen:
                    seen.add(value)
                    entities.append(value)
                    break
        return np.array(entities, dtype=np.int64)

    def make_transaction(self, site: int, now: float) -> Transaction:
        """Draw one arriving transaction for ``site`` at time ``now``."""
        is_class_a = bool(self._class_rng.random() < self.params.p_local)
        count = self.params.locks_per_txn
        if is_class_a:
            low, high = self.partition.site_range(site)
            txn_class = TransactionClass.A
            entities = self._draw_entities(low, high, count)
        else:
            txn_class = TransactionClass.B
            entities = self._draw_class_b_entities(site, count)
        modes = self._draw_modes(count)
        references = tuple(Reference(int(entity), mode)
                           for entity, mode in zip(entities, modes))
        return Transaction(
            txn_id=next(self._ids),
            txn_class=txn_class,
            home_site=site,
            references=references,
            arrival_time=now,
        )


class ArrivalProcess:
    """Poisson arrival stream for one site, feeding a submit callback."""

    def __init__(self, env: Environment, site: int, factory:
                 TransactionFactory, streams: RandomStreams,
                 submit: Callable[[Transaction], None]):
        self.env = env
        self.site = site
        self.factory = factory
        self.submit = submit
        rate = factory.params.site_rate(site)
        self._interarrival = streams.exponential(f"arrivals-site-{site}",
                                                 rate)
        self.generated = 0
        self.process = env.process(self._run(), name=f"arrivals@{site}")

    def _run(self):
        try:
            while True:
                yield self.env.timeout(self._interarrival())
                txn = self.factory.make_transaction(self.site,
                                                    self.env.now)
                self.generated += 1
                self.submit(txn)
        except Interrupt:
            # Interrupting the arrival stream shuts it down cleanly
            # (used by drain tests and open-loop experiments).
            return
