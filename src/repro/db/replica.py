"""Versioned replica state: the data the protocol is protecting.

The performance model only needs locks and timings, but a reproduction
claiming protocol fidelity should demonstrate that the coherency
machinery actually keeps the replicas consistent.  Each site (and the
central complex) therefore carries a :class:`ReplicaStore` tracking a
per-entity **update counter**:

* a committed local transaction increments its master site's counter for
  every entity it updated, and the asynchronous propagation applies the
  same increments at the central replica;
* a committed central/shipped transaction increments the central
  counter, and the commit orders apply the same increments at the
  master sites.

The end-to-end invariant -- checked by the drain tests and available via
:func:`replica_divergence` -- is that once the system quiesces, the
central counter equals the master counter for **every** entity: every
update was applied exactly once on each side, in spite of asynchrony,
aborts, negative acknowledgements and re-executions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hybrid.system import HybridSystem

__all__ = ["ReplicaStore", "replica_divergence"]


class ReplicaStore:
    """Per-entity update counters for one replica of the database."""

    def __init__(self, name: str = "replica"):
        self.name = name
        self._counts: dict[int, int] = defaultdict(int)
        self.total_updates = 0

    def apply_update(self, entity: int) -> int:
        """Apply one committed update; returns the new counter value."""
        self._counts[entity] += 1
        self.total_updates += 1
        return self._counts[entity]

    def apply_updates(self, entities: Iterable[int]) -> None:
        for entity in entities:
            self.apply_update(entity)

    def count(self, entity: int) -> int:
        return self._counts.get(entity, 0)

    def updated_entities(self) -> frozenset[int]:
        return frozenset(entity for entity, count in self._counts.items()
                         if count)

    def restore(self, counts: dict[int, int]) -> None:
        """Install a snapshot (crash recovery): replace all counters."""
        self._counts = defaultdict(int)
        total = 0
        for entity, count in counts.items():
            self._counts[entity] = count
            total += count
        self.total_updates = total

    def snapshot(self) -> dict[int, int]:
        return {entity: count for entity, count in self._counts.items()
                if count}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ReplicaStore {self.name!r} "
                f"{len(self._counts)} entities, "
                f"{self.total_updates} updates>")


def replica_divergence(system: "HybridSystem") -> dict[int, tuple[int, int]]:
    """Entities whose master and central counters disagree.

    Returns ``{entity: (master_count, central_count)}`` for every
    divergent entity.  On a fully drained system this must be empty;
    while messages are in flight transient divergence is expected
    (central lags master for local updates, master lags central for
    commit orders).  Entities in the unowned tail of the lock space have
    no master replica and are skipped.
    """
    divergent: dict[int, tuple[int, int]] = {}
    central = system.central.data
    entities = set(central.updated_entities())
    for site in system.sites:
        entities |= site.data.updated_entities()
    for entity in entities:
        owner = system.partition.owner(entity)
        if owner is None:
            continue
        master_count = system.sites[owner].data.count(entity)
        central_count = central.count(entity)
        if master_count != central_count:
            divergent[entity] = (master_count, central_count)
    return divergent
