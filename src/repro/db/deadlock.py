"""Waits-for graph and cycle detection for deadlock handling.

Each site's lock manager keeps a :class:`WaitsForGraph` of *transaction
waits for transaction* edges.  Before queueing a blocked request the
manager asks :meth:`WaitsForGraph.would_deadlock`: if adding the new
edges closes a cycle, the requester is chosen as the victim (matching the
paper's simulation: the transaction whose contention "leads into a
deadlock" is aborted and releases all locks).

The graph is tiny (bounded by the multiprogramming level), so a simple
iterative DFS is both adequate and allocation-light.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

__all__ = ["WaitsForGraph"]


class WaitsForGraph:
    """Directed graph: edge u -> v means transaction u waits for v."""

    def __init__(self) -> None:
        self._edges: dict[int, set[int]] = defaultdict(set)

    def add_waiter(self, waiter: int, blockers: Iterable[int]) -> None:
        """Record that ``waiter`` now waits for each of ``blockers``."""
        targets = self._edges[waiter]
        for blocker in blockers:
            if blocker != waiter:
                targets.add(blocker)

    def remove(self, txn_id: int) -> None:
        """Remove a departing transaction and all edges touching it.

        Use when the transaction leaves the lock table entirely (commit,
        abort, cancelled waits).  For a waiter that was *granted* its
        lock use :meth:`clear_waits` instead -- other transactions may
        still be waiting on it, and those incoming edges must survive.
        """
        self._edges.pop(txn_id, None)
        for targets in self._edges.values():
            targets.discard(txn_id)

    def clear_waits(self, txn_id: int) -> None:
        """Drop only the *outgoing* edges of ``txn_id``.

        Called when a queued request is granted: the transaction no
        longer waits for anyone, but transactions queued behind it now
        wait on it as a holder, so edges pointing *to* it stay intact.
        (Removing them was a lost-deadlock bug found by protocol
        fuzzing: grant A behind B's queue, then A requests something B
        holds, and the B->A edge needed to close the cycle is gone.)
        """
        self._edges.pop(txn_id, None)

    def waits_for(self, txn_id: int) -> frozenset[int]:
        return frozenset(self._edges.get(txn_id, ()))

    def would_deadlock(self, waiter: int,
                       blockers: Iterable[int]) -> list[int] | None:
        """Cycle that adding ``waiter -> blockers`` edges would create.

        Returns the list of transactions on one such cycle (starting and
        ending implicitly at ``waiter``), or ``None`` if the wait is safe.
        The graph is *not* modified.
        """
        new_targets = {blocker for blocker in blockers if blocker != waiter}
        if not new_targets:
            return None
        # A cycle through the new edges exists iff `waiter` is reachable
        # from any of the new targets through existing edges.
        for start in new_targets:
            path = self._find_path(start, waiter)
            if path is not None:
                return path
        return None

    def _find_path(self, start: int, goal: int) -> list[int] | None:
        """Iterative DFS path from ``start`` to ``goal`` (inclusive)."""
        if start == goal:
            return [start]
        stack: list[tuple[int, list[int]]] = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            for successor in self._edges.get(node, ()):
                if successor == goal:
                    return path + [successor]
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, path + [successor]))
        return None

    def has_cycle(self) -> bool:
        """Whether the current graph (without new edges) has any cycle."""
        colour: dict[int, int] = {}  # 0 unseen / 1 in-progress / 2 done

        def visit(node: int) -> bool:
            colour[node] = 1
            for successor in self._edges.get(node, ()):
                state = colour.get(successor, 0)
                if state == 1:
                    return True
                if state == 0 and visit(successor):
                    return True
            colour[node] = 2
            return False

        return any(colour.get(node, 0) == 0 and visit(node)
                   for node in list(self._edges))

    def __len__(self) -> int:
        """Number of transactions currently waiting."""
        return sum(1 for targets in self._edges.values() if targets)
