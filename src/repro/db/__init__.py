"""Database substrate: locks, deadlock detection, transactions, workload."""

from .deadlock import WaitsForGraph
from .replica import ReplicaStore, replica_divergence
from .timevarying import PiecewiseArrivalProcess, RateProfile, \
    attach_profiles
from .locks import (
    AuthenticationStatus,
    DeadlockError,
    Lock,
    LockError,
    LockManager,
    LockMode,
    LockRequest,
)
from .transaction import (
    Placement,
    Reference,
    Transaction,
    TransactionClass,
    TransactionKind,
    TransactionState,
    new_transaction_ids,
)
from .workload import (
    ArrivalProcess,
    LockSpacePartition,
    TransactionFactory,
    WorkloadParams,
)

__all__ = [
    "WaitsForGraph",
    "ReplicaStore",
    "replica_divergence",
    "PiecewiseArrivalProcess",
    "RateProfile",
    "attach_profiles",
    "AuthenticationStatus",
    "DeadlockError",
    "Lock",
    "LockError",
    "LockManager",
    "LockMode",
    "LockRequest",
    "Placement",
    "Reference",
    "Transaction",
    "TransactionClass",
    "TransactionKind",
    "TransactionState",
    "new_transaction_ids",
    "ArrivalProcess",
    "LockSpacePartition",
    "TransactionFactory",
    "WorkloadParams",
]
