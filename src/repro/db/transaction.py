"""Transaction records and lifecycle state.

Transactions are passive records manipulated by the site logic in
:mod:`repro.hybrid`; they carry the reference string (which entities are
locked, in which mode), routing and rerun bookkeeping, and the timestamps
from which every response-time statistic in the evaluation is computed.

The paper distinguishes six *kinds* of transactions by response-time
behaviour (Section 3.1): new/rerun x local/shipped/central.  The kind is
derived from :attr:`Transaction.txn_class`, :attr:`Transaction.placement`
and :attr:`Transaction.run_count`, see :meth:`Transaction.kind`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..sim.spans import SpanRecorder
from .locks import LockMode

__all__ = [
    "TransactionClass",
    "Placement",
    "TransactionState",
    "TransactionKind",
    "Reference",
    "Transaction",
    "new_transaction_ids",
]


class TransactionClass(enum.Enum):
    """Class A touches only home-site data; class B needs global data."""

    A = "A"
    B = "B"


class Placement(enum.Enum):
    """Where a transaction executes."""

    LOCAL = "local"          # class A retained at its home site
    SHIPPED = "shipped"      # class A shipped to the central site
    CENTRAL = "central"      # class B run at the central complex
    #: Class B run at its home site with remote calls for non-local data
    #: (the fully distributed alternative of the paper's introduction,
    #: enabled by ``SystemConfig.class_b_mode = "remote-call"``).
    DISTRIBUTED = "distributed"


class TransactionState(enum.Enum):
    """Lifecycle states used by the site logic and the tracer."""

    CREATED = "created"
    SETUP = "setup"              # initial I/O, no locks held
    EXECUTING = "executing"      # CPU bursts + DB calls
    LOCK_WAIT = "lock-wait"
    IO_WAIT = "io-wait"
    COMMITTING = "committing"
    AUTHENTICATING = "authenticating"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionKind(enum.Enum):
    """The paper's six response-time kinds (Section 3.1)."""

    LOCAL_NEW = "local-new"
    LOCAL_RERUN = "local-rerun"
    SHIPPED_NEW = "shipped-new"
    SHIPPED_RERUN = "shipped-rerun"
    CENTRAL_NEW = "central-new"
    CENTRAL_RERUN = "central-rerun"
    DISTRIBUTED_NEW = "distributed-new"
    DISTRIBUTED_RERUN = "distributed-rerun"


@dataclass(frozen=True)
class Reference:
    """One database call: lock ``entity`` in ``mode`` then do work."""

    entity: int
    mode: LockMode

    @property
    def is_update(self) -> bool:
        return self.mode is LockMode.EXCLUSIVE


def new_transaction_ids() -> "itertools.count[int]":
    """A fresh monotonically increasing transaction-id source."""
    return itertools.count(1)


@dataclass
class Transaction:
    """One transaction instance flowing through the hybrid system."""

    txn_id: int
    txn_class: TransactionClass
    home_site: int
    references: tuple[Reference, ...]
    arrival_time: float

    placement: Placement | None = None
    state: TransactionState = TransactionState.CREATED
    run_count: int = 0                     # incremented at each (re)run start
    marked_for_abort: bool = False
    abort_reason: str | None = None
    aborts: int = 0
    deadlock_aborts: int = 0

    # Timestamps for metrics (simulated seconds).
    first_run_started_at: float | None = None
    completed_at: float | None = None

    #: End-to-end deadline (absolute sim time), stamped at admission
    #: when the fault plan's overload control arms one; ``None``
    #: otherwise.  Propagated through shipment and authentication
    #: messages so doomed work is cancelled early.
    deadline: float | None = None

    # Entities currently locked by this transaction at its execution site
    # (subset of the reference string; maintained by the site logic).
    locked_entities: list[int] = field(default_factory=list)

    #: Phase-attributed lifecycle timeline (anchored at the routing
    #: decision; closed by :meth:`complete`).  The phase totals sum to
    #: the response time exactly -- the basis of the per-phase
    #: response-time decomposition in :mod:`repro.hybrid.metrics`.
    spans: SpanRecorder = field(default_factory=SpanRecorder, repr=False)

    # -- derived properties ---------------------------------------------------

    @property
    def is_local(self) -> bool:
        return self.placement is Placement.LOCAL

    @property
    def runs_centrally(self) -> bool:
        return self.placement in (Placement.SHIPPED, Placement.CENTRAL)

    @property
    def is_rerun(self) -> bool:
        return self.run_count > 1

    @property
    def response_time(self) -> float:
        """Arrival to completion (valid once committed)."""
        if self.completed_at is None:
            raise ValueError(f"transaction {self.txn_id} not completed")
        return self.completed_at - self.arrival_time

    @property
    def update_entities(self) -> tuple[int, ...]:
        """Entities referenced in exclusive mode (propagated on commit)."""
        return tuple(ref.entity for ref in self.references if ref.is_update)

    @property
    def entities(self) -> tuple[int, ...]:
        return tuple(ref.entity for ref in self.references)

    def kind(self) -> TransactionKind:
        """Map to the paper's six response-time kinds."""
        if self.placement is None:
            raise ValueError(f"transaction {self.txn_id} not yet routed")
        rerun = self.is_rerun
        if self.placement is Placement.LOCAL:
            return (TransactionKind.LOCAL_RERUN if rerun
                    else TransactionKind.LOCAL_NEW)
        if self.placement is Placement.SHIPPED:
            return (TransactionKind.SHIPPED_RERUN if rerun
                    else TransactionKind.SHIPPED_NEW)
        if self.placement is Placement.DISTRIBUTED:
            return (TransactionKind.DISTRIBUTED_RERUN if rerun
                    else TransactionKind.DISTRIBUTED_NEW)
        return (TransactionKind.CENTRAL_RERUN if rerun
                else TransactionKind.CENTRAL_NEW)

    # -- lifecycle transitions --------------------------------------------------

    def route(self, placement: Placement) -> None:
        """Fix the placement decision.

        Class B runs at the central complex, or -- in the fully
        distributed mode -- at its home site with remote calls; class A
        is retained locally or shipped.
        """
        if self.txn_class is TransactionClass.B and placement not in \
                (Placement.CENTRAL, Placement.DISTRIBUTED):
            raise ValueError(
                "class B transactions run CENTRAL or DISTRIBUTED")
        if self.txn_class is TransactionClass.A and placement in \
                (Placement.CENTRAL, Placement.DISTRIBUTED):
            raise ValueError("class A transactions are LOCAL or SHIPPED")
        self.placement = placement

    def begin_run(self, now: float) -> None:
        """Start the first run or a rerun."""
        self.run_count += 1
        self.marked_for_abort = False
        self.abort_reason = None
        if self.first_run_started_at is None:
            self.first_run_started_at = now
        self.state = TransactionState.SETUP

    def mark_for_abort(self, reason: str) -> None:
        """Set the abort mark checked at commit time (Section 2)."""
        self.marked_for_abort = True
        self.abort_reason = reason

    def record_abort(self, deadlock: bool = False) -> None:
        self.aborts += 1
        if deadlock:
            self.deadlock_aborts += 1
        self.state = TransactionState.ABORTED

    def complete(self, now: float) -> None:
        self.completed_at = now
        self.state = TransactionState.COMMITTED
        self.spans.close(now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Txn {self.txn_id} class={self.txn_class.value} "
                f"site={self.home_site} placement="
                f"{self.placement.value if self.placement else '?'} "
                f"state={self.state.value} runs={self.run_count}>")
