"""Reproduction of *Load Sharing in Hybrid Distributed-Centralized
Database Systems* (Ciciani, Dias & Yu, ICDCS 1988).

Public API layers:

* :mod:`repro.sim` -- discrete-event simulation kernel (engine,
  resources, links, RNG streams, output-analysis statistics);
* :mod:`repro.db` -- database substrate (dual-field lock manager,
  deadlock detection, transactions, workload generation);
* :mod:`repro.hybrid` -- the hybrid distributed-centralized system model
  (local sites, central complex, coherency/authentication protocol);
* :mod:`repro.core` -- the paper's contribution: the analytic model and
  the static/dynamic/heuristic load-sharing strategies;
* :mod:`repro.analysis` -- queueing-analysis helpers;
* :mod:`repro.experiments` -- per-figure experiment harness and reports.

Quickstart::

    from repro import paper_config, simulate, STRATEGIES

    config = paper_config(total_rate=25.0)
    result = simulate(config, STRATEGIES["min-average-population"](config))
    print(result.mean_response_time, result.shipped_fraction)
"""

from .core import (
    STRATEGIES,
    AnalyticModel,
    Router,
    RoutingObservation,
    optimize_static,
)
from .hybrid import (
    PAPER_BASE,
    HybridSystem,
    SimulationResult,
    SystemConfig,
    paper_config,
    simulate,
)

__version__ = "1.0.0"

__all__ = [
    "STRATEGIES",
    "AnalyticModel",
    "Router",
    "RoutingObservation",
    "optimize_static",
    "PAPER_BASE",
    "HybridSystem",
    "SimulationResult",
    "SystemConfig",
    "paper_config",
    "simulate",
    "__version__",
]
