"""Assembly and execution of the full hybrid system simulation.

:class:`HybridSystem` wires together the substrate pieces -- one
:class:`~repro.hybrid.central.CentralSite`, ``n_sites``
:class:`~repro.hybrid.local.LocalSite` instances, constant-delay links in
both directions, per-site Poisson arrival processes, a metrics collector
and a windowed :class:`~repro.hybrid.telemetry.TelemetrySampler` -- and
runs the discrete-event simulation with warm-up deletion.
:func:`simulate` is the one-call convenience entry point used by the
examples and the experiment harness.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from ..db.workload import ArrivalProcess, LockSpacePartition, \
    TransactionFactory
from ..obs.registry import MetricsRegistry
from ..sim.engine import Environment
from ..sim.faults import FaultInjector, FaultPlan, episode_reports
from ..sim.network import Link, ReliableEndpoint
from ..sim.rng import RandomStreams
from ..sim.stats import TimeWeightedStat
from ..sim.trace import NullTracer, Tracer
from .central import CentralSite
from .config import SystemConfig
from .local import LocalSite
from .metrics import MetricsCollector, SimulationResult
from .protocols import get_protocol
from .standby import StandbyCentral
from .telemetry import TelemetrySampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.router import RouterFactory
    from ..obs.audit import RoutingAudit

__all__ = ["HybridSystem", "simulate"]

#: How often the population/queue-length time series are sampled.  The
#: paper's strategies read these quantities at arrival instants; for the
#: *reported* averages a periodic sample is statistically sufficient and
#: far cheaper than recording every change.
SAMPLE_INTERVAL = 0.25

#: Default telemetry window length (simulated seconds) and ring capacity.
TELEMETRY_INTERVAL = 1.0
TELEMETRY_CAPACITY = 512


class HybridSystem:
    """One fully wired simulated hybrid distributed-centralized system."""

    def __init__(self, config: SystemConfig,
                 router_factory: "RouterFactory",
                 seed: int | None = None,
                 tracer: "Tracer | NullTracer | None" = None,
                 telemetry_interval: float = TELEMETRY_INTERVAL,
                 telemetry_capacity: int = TELEMETRY_CAPACITY,
                 fault_plan: "FaultPlan | None" = None,
                 registry: "MetricsRegistry | None" = None,
                 audit: "RoutingAudit | None" = None):
        self.config = config
        self.seed = config.seed if seed is None else seed
        # Event pooling is safe here: the protocol never inspects a
        # timeout after it fires, and the golden-trace suite pins the
        # pooled and unpooled sample paths to the same fingerprints.
        self.env = Environment(event_pooling=True)
        self.streams = RandomStreams(self.seed)
        self.tracer = tracer if tracer is not None else NullTracer()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.audit = audit
        self.metrics = MetricsCollector(self.env, config.warmup_time,
                                        tracer=self.tracer,
                                        registry=self.registry,
                                        audit=audit)
        self.partition = LockSpacePartition(config.workload.lockspace,
                                            config.workload.n_sites)

        # The commit protocol is a class selection: it supplies the
        # local/central/standby implementations wired below (the default
        # returns the stock classes unchanged).
        self.protocol = get_protocol(config.protocol)
        self.central = self.protocol.make_central(self.env, config, self,
                                                  self.partition)
        self.routers = [router_factory(config, site_id)
                        for site_id in range(config.n_sites)]
        self.sites = [self.protocol.make_local(self.env, site_id, config,
                                               self, self.routers[site_id])
                      for site_id in range(config.n_sites)]
        self.strategy_name = self.routers[0].name if self.routers else "none"
        if audit is not None and not audit.strategy:
            audit.strategy = self.strategy_name

        # Bidirectional constant-delay links per site.
        to_central = []
        from_central = []
        for site in self.sites:
            up = Link(self.env, config.comm_delay,
                      name=f"site-{site.site_id}->central")
            down = Link(self.env, config.comm_delay,
                        name=f"central->site-{site.site_id}")
            site.attach_links(to_central=up, from_central=down)
            to_central.append(up)
            from_central.append(down)
        self.central.attach_links(to_sites=from_central,
                                  from_sites=to_central)

        # Fault injection is strictly opt-in: with no plan (or an empty
        # one) nothing below schedules an event, touches a random stream
        # or changes a message path, so the run stays bit-identical to a
        # plain one.
        self.fault_plan = fault_plan
        self.injector: FaultInjector | None = None
        self.standby: StandbyCentral | None = None
        if fault_plan is not None and not fault_plan.is_empty:
            retry = fault_plan.retry

            def endpoint(link: Link, name: str) -> ReliableEndpoint:
                return ReliableEndpoint(
                    self.env, link, name=name,
                    timeout=retry.message_timeout, backoff=retry.backoff,
                    max_timeout=retry.max_message_timeout,
                    on_retransmit=self.metrics.record_retransmit,
                    on_duplicate=self.metrics.record_duplicate)

            for site, up, down in zip(self.sites, to_central, from_central):
                for link in (up, down):
                    link.on_drop = self.metrics.record_drop
                site_chan = endpoint(up, f"chan:site-{site.site_id}")
                central_chan = endpoint(down,
                                        f"chan:central-{site.site_id}")
                site.enable_reliability(site_chan, retry)
                self.central.enable_reliability(site.site_id, central_chan)

            # Survivability protocols: armed only when the plan's
            # recovery policy asks for them, so ordinary fault plans
            # behave exactly as before.
            recovery = fault_plan.recovery
            if recovery.enabled:
                self.central.enable_recovery(recovery)
                for site in self.sites:
                    site.enable_recovery(recovery)
            if recovery.failover:
                self.standby = self.protocol.make_standby(
                    self.env, config, self, self.partition)
                self.standby.enable_recovery(recovery)
                standby_to_sites = []
                standby_from_sites = []
                for site in self.sites:
                    up = Link(self.env, config.comm_delay,
                              name=f"site-{site.site_id}->standby")
                    down = Link(self.env, config.comm_delay,
                                name=f"standby->site-{site.site_id}")
                    for link in (up, down):
                        link.on_drop = self.metrics.record_drop
                    site_sb = endpoint(up, f"chan:site-{site.site_id}-sb")
                    standby_chan = endpoint(
                        down, f"chan:standby-{site.site_id}")
                    site.attach_standby(up, down, site_sb)
                    self.standby.enable_reliability(site.site_id,
                                                    standby_chan)
                    standby_to_sites.append(down)
                    standby_from_sites.append(up)
                self.standby.attach_links(to_sites=standby_to_sites,
                                          from_sites=standby_from_sites)
                # Dedicated primary->standby log/heartbeat link pair.
                log_up = Link(self.env, config.comm_delay,
                              name="central->standby")
                log_down = Link(self.env, config.comm_delay,
                                name="standby->central")
                for link in (log_up, log_down):
                    link.on_drop = self.metrics.record_drop
                primary_log = endpoint(log_up, "chan:log-primary")
                standby_log = endpoint(log_down, "chan:log-standby")
                self.central.start_log_shipping(primary_log, log_down)
                self.standby.start_standby(standby_log, log_up,
                                           (log_up, log_down))
            self.injector = FaultInjector(self, fault_plan)

        self.factory = TransactionFactory(config.workload, self.streams)
        self.arrivals = [
            ArrivalProcess(self.env, site.site_id, self.factory,
                           self.streams, submit=site.submit)
            for site in self.sites
        ]

        # Time series of populations and queue lengths.
        self._n_local_tw = TimeWeightedStat()
        self._n_central_tw = TimeWeightedStat()
        self._q_local_tw = TimeWeightedStat()
        self._q_central_tw = TimeWeightedStat()
        self.env.process(self._sampler(), name="sampler")

        # Windowed run telemetry (ring-buffered; see telemetry module).
        self.telemetry = TelemetrySampler(self, telemetry_interval,
                                          telemetry_capacity)

        self.protocol.on_wired(self)

    # -- observation helpers ------------------------------------------------

    @property
    def n_local_total(self) -> int:
        """Class A transactions currently running at all local sites."""
        return sum(len(site.active) for site in self.sites)

    @property
    def acting_central(self) -> CentralSite:
        """The central complex currently in charge (standby after a
        failover, the primary otherwise)."""
        standby = self.standby
        if standby is not None and standby.is_active:
            return standby
        return self.central

    @property
    def n_central(self) -> int:
        return len(self.acting_central.active)

    def _sampler(self):
        interval = SAMPLE_INTERVAL
        while True:
            yield self.env.timeout(interval)
            now = self.env.now
            self._n_local_tw.record(now, self.n_local_total)
            self._n_central_tw.record(now, self.n_central)
            mean_q_local = (sum(site.cpu_queue_length
                                for site in self.sites) /
                            len(self.sites))
            self._q_local_tw.record(now, mean_q_local)
            self._q_central_tw.record(
                now, self.acting_central.cpu_queue_length)

    def reset_site_channels(self, site_id: int) -> None:
        """Start a new channel incarnation on every path touching a
        crashed site (both ends together, standby pair included)."""
        site = self.sites[site_id]
        pairs = [(site.channel, self.central.channels.get(site_id))]
        if site.standby_channel is not None and self.standby is not None:
            pairs.append((site.standby_channel,
                          self.standby.channels.get(site_id)))
        for site_end, central_end in pairs:
            if site_end is None or central_end is None:
                continue
            incarnation = site_end.incarnation + 1
            site_end.reset(incarnation)
            central_end.reset(incarnation)

    def _reset_after_warmup(self) -> None:
        now = self.env.now
        self.central.cpu.reset_utilization()
        for site in self.sites:
            site.cpu.reset_utilization()
        self.telemetry.rebase()
        for series in (self._n_local_tw, self._n_central_tw,
                       self._q_local_tw, self._q_central_tw):
            series.reset(now)

    def _publish_gauges(self) -> None:
        """Harvest end-of-run state from the substrate into the registry.

        The hot paths (CPU grants, link counters) keep plain ints and are
        read once here, so instrumentation costs nothing per event.  Only
        simulation-deterministic values are published -- never wall-clock
        quantities -- so the snapshot is safe for bit-identity checks
        (the ``engine_*`` gauges are filtered alongside the profile
        fields when observer processes are present).
        """
        reg = self.registry
        grants = reg.gauge("cpu_grants", "CPU service grants per server",
                           labels=("server",))
        grants.labels("central").set(self.central.cpu.grants)
        link_msgs = reg.gauge("link_messages",
                              "link traffic by link and event",
                              labels=("link", "event"))
        for site in self.sites:
            grants.labels(f"site-{site.site_id}").set(site.cpu.grants)
            for link in (site.to_central, site.from_central):
                link_msgs.labels(link.name, "sent").set(link.messages_sent)
                link_msgs.labels(link.name, "delivered").set(
                    link.messages_delivered)
                if link.messages_dropped:
                    link_msgs.labels(link.name, "dropped").set(
                        link.messages_dropped)
        if self.injector is not None:
            frames = reg.gauge(
                "channel_frames",
                "reliable channel counters by endpoint and event",
                labels=("endpoint", "event"))
            endpoints = [site.channel for site in self.sites]
            endpoints += [self.central.channels[site.site_id]
                          for site in self.sites]
            if self.standby is not None:
                endpoints += [site.standby_channel for site in self.sites]
                endpoints += [self.standby.channels[site.site_id]
                              for site in self.sites]
                endpoints += [self.central.log_endpoint,
                              self.standby.log_endpoint]
            for chan in endpoints:
                if chan is None:
                    continue
                frames.labels(chan.name, "retransmits").set(
                    chan.retransmits)
                frames.labels(chan.name, "duplicates").set(
                    chan.duplicates_discarded)
                frames.labels(chan.name, "acks_sent").set(chan.acks_sent)
                frames.labels(chan.name, "stale_frames").set(
                    chan.stale_frames)
                frames.labels(chan.name, "ack_lag").set(chan.unacked)
            breakers = reg.gauge("breaker_state",
                                 "circuit breaker end state by site",
                                 labels=("site", "state"))
            for site in self.sites:
                if site.breaker is not None:
                    breakers.labels(site.name, site.breaker.state).set(1)
            if self.standby is not None:
                grants.labels("standby").set(self.standby.cpu.grants)
                for link in self.standby.log_links:
                    link_msgs.labels(link.name, "sent").set(
                        link.messages_sent)
                    link_msgs.labels(link.name, "delivered").set(
                        link.messages_delivered)
                    if link.messages_dropped:
                        link_msgs.labels(link.name, "dropped").set(
                            link.messages_dropped)
        reg.gauge("engine_events",
                  "kernel events dispatched").single.set(
            self.env.events_processed)
        reg.gauge("engine_events_scheduled",
                  "kernel events scheduled").single.set(
            self.env.events_scheduled)
        reg.gauge("engine_heap_peak",
                  "calendar peak depth").single.set(self.env.heap_peak)

    def _covariate_snapshot(self) -> tuple[dict[str, float],
                                           dict[str, float]]:
        """Control-variate observations and their analytic expectations.

        Pure arithmetic on already-collected counters and configuration
        constants: no RNG draws, no trace events, no new simulation
        behaviour -- so emitting these on every run leaves sample paths
        and golden traces bit-identical.  The measured arrival counts
        are thinned-Poisson over the measurement window, so their means
        are exact; the summed service demand is deterministic per
        transaction today (kept for stochastic-workload futures).
        """
        config = self.config
        workload = config.workload
        rate = workload.total_arrival_rate
        window = config.measure_time
        service = config.local_service_time
        arrivals_a = float(self.metrics.class_a_arrivals)
        arrivals_b = float(self.metrics.class_b_arrivals)
        covariates = {
            "arrivals_a": arrivals_a,
            "arrivals_b": arrivals_b,
            "demand_seconds": (arrivals_a + arrivals_b) * service,
        }
        means = {
            "arrivals_a": workload.p_local * rate * window,
            "arrivals_b": (1.0 - workload.p_local) * rate * window,
            "demand_seconds": rate * window * service,
        }
        return covariates, means

    # -- execution ----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run warm-up plus measurement window; return the frozen result."""
        config = self.config
        wall_start = time.perf_counter()
        if config.warmup_time > 0:
            self.env.run(until=config.warmup_time)
        self._reset_after_warmup()
        self.env.run(until=config.run_until)
        wall_clock = time.perf_counter() - wall_start
        self._publish_gauges()
        series = self.telemetry.series
        fault_episodes = ()
        if self.injector is not None:
            fault_episodes = episode_reports(
                self.injector.applied, series.windows,
                recoveries=self.metrics.recoveries)
        covariates, covariate_means = self._covariate_snapshot()
        return self.metrics.freeze(
            total_rate=config.workload.total_arrival_rate,
            comm_delay=config.comm_delay,
            strategy=self.strategy_name,
            protocol=config.protocol,
            seed=self.seed,
            local_utilizations=[
                site.cpu.utilization(since=config.warmup_time)
                for site in self.sites],
            central_utilization=self.central.cpu.utilization(
                since=config.warmup_time),
            mean_local_queue=self._q_local_tw.mean(self.env.now),
            mean_central_queue=self._q_central_tw.mean(self.env.now),
            telemetry=series.windows,
            telemetry_interval=self.telemetry.interval,
            telemetry_windows_dropped=series.dropped,
            warmup_adequate=series.warmup_adequate(config.warmup_time),
            warmup_trend=series.warmup_trend(config.warmup_time),
            engine_events=self.env.events_processed,
            engine_events_per_sec=(self.env.events_processed / wall_clock
                                   if wall_clock > 0 else 0.0),
            engine_heap_peak=self.env.heap_peak,
            wall_clock_seconds=wall_clock,
            fault_episodes=fault_episodes,
            covariates=covariates,
            covariate_means=covariate_means,
        )


def simulate(config: SystemConfig, router_factory: "RouterFactory",
             seed: int | None = None,
             fault_plan: "FaultPlan | None" = None) -> SimulationResult:
    """Build a :class:`HybridSystem` and run it to completion."""
    return HybridSystem(config, router_factory, seed=seed,
                        fault_plan=fault_plan).run()
