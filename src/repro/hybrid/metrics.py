"""Measurement collection for hybrid-system simulations.

The collector honours a warm-up period: observations before
``warmup_time`` are discarded so the steady-state estimates are not
biased by the empty-and-idle initial state.  Everything the paper's
figures need is gathered here:

* mean response time over **all** transactions (class A and B -- the
  y-axis of Figures 4.1/4.2/4.4/4.5/4.7), split by the six transaction
  kinds and by class;
* a per-phase *decomposition* of the mean response time (communication,
  CPU queueing, CPU service, I/O, lock waits, authentication, residue)
  computed from each transaction's lifecycle spans, so every figure can
  be attributed to a cause rather than just plotted;
* throughput (committed transactions per second of measured time);
* the fraction of class A transactions shipped (Figures 4.3/4.6);
* abort statistics split by cause (deadlock, invalidation of local
  transactions by authentication, invalidation of central transactions by
  asynchronous updates, negative acknowledgements);
* message counts and mean CPU utilisations;
* windowed time-series telemetry and engine profiling, attached by the
  system at freeze time (see :mod:`repro.hybrid.telemetry`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from ..db.transaction import (
    Placement,
    Transaction,
    TransactionClass,
    TransactionKind,
)
from ..sim.quantiles import QuantileSet
from ..sim.spans import PHASE_OTHER, PHASES
from ..sim.stats import RunningStat, TimeWeightedStat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment
    from .telemetry import TelemetryWindow

__all__ = ["MetricsCollector", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Immutable summary of one simulation run (one curve point)."""

    total_rate: float
    comm_delay: float
    strategy: str
    seed: int

    mean_response_time: float
    response_time_by_class: dict[TransactionClass, float]
    response_time_by_kind: dict[TransactionKind, float]
    #: Streaming P^2 estimates: keys p50/p90/p95/p99/min/max.
    response_time_percentiles: dict[str, float]
    throughput: float
    completed: int

    class_a_arrivals: int
    class_a_shipped: int

    aborts_total: int
    aborts_deadlock: int
    aborts_local_invalidated: int
    aborts_central_invalidated: int
    auth_negative_acks: int

    mean_local_utilization: float
    mean_central_utilization: float
    mean_local_queue_length: float
    mean_central_queue_length: float
    messages_to_central: int
    messages_to_sites: int

    # -- observability extensions (defaulted for compatibility) ------------

    #: Mean seconds per lifecycle phase over all completed transactions.
    #: The values sum to :attr:`mean_response_time` (exactly, up to
    #: floating-point error) because the span recorder attributes every
    #: instant of a transaction's lifetime to exactly one phase.
    response_time_decomposition: dict[str, float] = \
        field(default_factory=dict)
    #: The same decomposition split by transaction class.
    decomposition_by_class: dict[TransactionClass, dict[str, float]] = \
        field(default_factory=dict)
    #: The same decomposition split by placement (local/shipped/...).
    decomposition_by_placement: dict[Placement, dict[str, float]] = \
        field(default_factory=dict)

    #: Windowed time-series telemetry (ring-buffered; oldest windows may
    #: have been evicted -- see ``telemetry_windows_dropped``).
    telemetry: tuple["TelemetryWindow", ...] = ()
    telemetry_interval: float = 0.0
    telemetry_windows_dropped: int = 0
    #: ``None`` when too few post-warm-up windows exist to judge;
    #: otherwise whether the post-warm-up series looks trend-free.
    warmup_adequate: bool | None = None
    #: Relative first-half vs second-half drift per monitored metric.
    warmup_trend: dict[str, float] = field(default_factory=dict)

    #: Engine profile: events processed, wall-clock rate, calendar peak.
    engine_events: int = 0
    engine_events_per_sec: float = 0.0
    engine_heap_peak: int = 0
    wall_clock_seconds: float = 0.0

    # -- robustness / availability extensions (defaulted; all zero when
    # -- no fault plan is active) ------------------------------------------

    #: Shipped transactions whose response retry budget was exhausted.
    txns_timed_out: int = 0
    #: Class A transactions re-run locally after a shipment was cancelled.
    txns_failed_over: int = 0
    #: Transactions abandoned outright (cancelled class B shipments).
    txns_failed: int = 0
    #: Central-side executions killed by a ShipmentCancel.
    txns_cancelled_central: int = 0
    #: Class A arrivals routed locally by failure-awareness (central
    #: suspected or snapshot stale) without consulting the strategy.
    fallback_routings: int = 0
    #: Arrivals rejected because their home site was crashed.
    arrivals_rejected: int = 0
    #: Messages lost on degraded links / retransmitted by the reliable
    #: channels / discarded as duplicates at the receivers.
    messages_dropped: int = 0
    messages_retransmitted: int = 0
    duplicate_messages: int = 0
    #: Fault-episode transitions (applies + reverts) over the whole run.
    fault_events: int = 0
    #: Per-episode availability summaries
    #: (:class:`~repro.sim.faults.EpisodeReport`).
    fault_episodes: tuple = ()

    @property
    def shipped_fraction(self) -> float:
        """Fraction of measured class A arrivals routed to the central site."""
        if self.class_a_arrivals == 0:
            return 0.0
        return self.class_a_shipped / self.class_a_arrivals

    @property
    def abort_rate(self) -> float:
        """Aborts per committed transaction."""
        if self.completed == 0:
            return 0.0
        return self.aborts_total / self.completed

    @property
    def availability(self) -> float:
        """Fraction of measured work requests eventually served.

        Committed transactions over committed plus permanently failed
        plus rejected-at-arrival.  1.0 for any run without faults.
        """
        denominator = (self.completed + self.txns_failed +
                       self.arrivals_rejected)
        if denominator == 0:
            return 1.0
        return self.completed / denominator

    #: Fields that legitimately differ between two otherwise identical
    #: runs (wall-clock timing) -- always excluded from identity
    #: comparisons.
    TIMING_FIELDS = ("wall_clock_seconds", "engine_events_per_sec")
    #: Engine-profile fields: identical for byte-for-byte duplicate runs,
    #: but different when a run carries extra *observer* processes (the
    #: invariant checker's audit loop schedules its own timeouts).
    PROFILE_FIELDS = ("engine_events", "engine_heap_peak")

    def identity_dict(self, *, include_profile: bool = True,
                      include_strategy: bool = True) -> dict:
        """Deep dict of every deterministic field, for bit-identity checks.

        Two runs that followed the same sample path produce equal
        ``identity_dict()`` values; wall-clock-dependent fields are always
        dropped.  ``include_profile=False`` additionally drops the engine
        event/heap counters (use when one run carries read-only observer
        processes); ``include_strategy=False`` drops the strategy label
        (use when comparing differently-named but semantically forced
        routings, e.g. ``static(p=0)`` against ``no-load-sharing``).
        Used by :mod:`repro.verify.differential` and
        :mod:`repro.verify.metamorphic`.
        """
        data = asdict(self)
        for name in self.TIMING_FIELDS:
            data.pop(name, None)
        if not include_profile:
            for name in self.PROFILE_FIELDS:
                data.pop(name, None)
        if not include_strategy:
            data.pop("strategy", None)
        return data

    @property
    def decomposition_residual(self) -> float:
        """Relative gap between the phase-mean sum and the mean RT.

        Near zero by construction; a large value indicates an
        instrumentation bug (a phase left open or double-counted).
        """
        if not self.response_time_decomposition or \
                self.mean_response_time == 0:
            return 0.0
        total = sum(self.response_time_decomposition.values())
        return abs(total - self.mean_response_time) / \
            self.mean_response_time


def _phase_stats() -> dict[str, RunningStat]:
    return {phase: RunningStat() for phase in PHASES}


def _phase_means(stats: dict[str, RunningStat]) -> dict[str, float]:
    return {phase: stat.mean for phase, stat in stats.items() if stat.count}


class MetricsCollector:
    """Accumulates statistics during a run and freezes them into a result.

    Every protocol-visible transition flows through this collector, so it
    doubles as the system's trace point: pass a
    :class:`~repro.sim.trace.Tracer` to record a structured event log
    (kinds: ``route``, ``commit``, ``spans``, ``abort``, ``negative-ack``,
    ``message``).  Trace emission is unconditional (not gated on the
    warm-up window) so debugging runs see the start-up transient too.
    """

    def __init__(self, env: "Environment", warmup_time: float,
                 tracer=None):
        self.env = env
        self.warmup_time = warmup_time
        from ..sim.trace import NullTracer

        self.tracer = tracer if tracer is not None else NullTracer()

        self.response_all = RunningStat()
        self.response_quantiles = QuantileSet()
        self.response_by_class: dict[TransactionClass, RunningStat] = {
            cls: RunningStat() for cls in TransactionClass}
        self.response_by_kind: dict[TransactionKind, RunningStat] = {
            kind: RunningStat() for kind in TransactionKind}
        self.completed = 0

        # Per-phase response-time decomposition (seconds per txn).
        self.phase_stats = _phase_stats()
        self.phase_by_class: dict[TransactionClass,
                                  dict[str, RunningStat]] = {
            cls: _phase_stats() for cls in TransactionClass}
        self.phase_by_placement: dict[Placement,
                                      dict[str, RunningStat]] = {
            placement: _phase_stats() for placement in Placement}

        self.class_a_arrivals = 0
        self.class_a_shipped = 0

        self.aborts_deadlock = 0
        self.aborts_local_invalidated = 0
        self.aborts_central_invalidated = 0
        self.auth_negative_acks = 0

        self.n_central = TimeWeightedStat()
        self.n_local = TimeWeightedStat()
        self.messages_to_central = 0
        self.messages_to_sites = 0

        # Robustness / availability counters (all stay zero without a
        # fault plan -- none of the hooks below fire then).
        self.txns_timed_out = 0
        self.txns_failed_over = 0
        self.txns_failed = 0
        self.txns_cancelled_central = 0
        self.fallback_routings = 0
        self.arrivals_rejected = 0
        self.messages_dropped = 0
        self.messages_retransmitted = 0
        self.duplicate_messages = 0
        self.fault_events = 0

    # -- recording hooks (called by the sites) ------------------------------

    @property
    def measuring(self) -> bool:
        return self.env.now >= self.warmup_time

    def record_routing(self, txn: Transaction) -> None:
        # Anchor the lifecycle timeline at the routing decision (which
        # coincides with arrival); time until the first attributed phase
        # falls into the catch-all ``other`` bucket.
        txn.spans.enter(PHASE_OTHER, self.env.now)
        self.tracer.emit(self.env.now, "route", txn=txn.txn_id,
                         site=txn.home_site,
                         txn_class=txn.txn_class.value,
                         placement=txn.placement.value)
        if not self.measuring or txn.txn_class is not TransactionClass.A:
            return
        self.class_a_arrivals += 1
        if txn.placement is Placement.SHIPPED:
            self.class_a_shipped += 1

    def record_completion(self, txn: Transaction) -> None:
        self.tracer.emit(self.env.now, "commit", txn=txn.txn_id,
                         site=txn.home_site, txn_kind=txn.kind().value,
                         response=round(txn.response_time, 6),
                         runs=txn.run_count)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "spans", txn=txn.txn_id,
                site=txn.home_site, txn_kind=txn.kind().value,
                response=round(txn.response_time, 6),
                phases={phase: round(seconds, 6) for phase, seconds
                        in txn.spans.as_dict().items()})
        if not self.measuring:
            return
        self.completed += 1
        response = txn.response_time
        self.response_all.add(response)
        self.response_quantiles.add(response)
        self.response_by_class[txn.txn_class].add(response)
        self.response_by_kind[txn.kind()].add(response)
        phase_totals = txn.spans.as_dict()
        by_class = self.phase_by_class[txn.txn_class]
        by_placement = self.phase_by_placement[txn.placement]
        for phase, seconds in phase_totals.items():
            self.phase_stats[phase].add(seconds)
            by_class[phase].add(seconds)
            by_placement[phase].add(seconds)

    def record_abort(self, txn: Transaction, cause: str) -> None:
        self.tracer.emit(self.env.now, "abort", txn=txn.txn_id,
                         site=txn.home_site, cause=cause,
                         run=txn.run_count)
        if not self.measuring:
            return
        if cause == "deadlock":
            self.aborts_deadlock += 1
        elif cause == "local-invalidated":
            self.aborts_local_invalidated += 1
        elif cause == "central-invalidated":
            self.aborts_central_invalidated += 1
        else:
            raise ValueError(f"unknown abort cause: {cause}")

    def record_negative_ack(self, txn: Transaction | None = None,
                            sites: tuple[int, ...] = ()) -> None:
        """One authentication round answered NAK.

        ``txn`` is the authenticating transaction and ``sites`` the
        master sites that refused, so the event log can attribute the
        rerun (the counters never needed them, the trace does).
        """
        self.tracer.emit(self.env.now, "negative-ack",
                         txn=None if txn is None else txn.txn_id,
                         sites=sites)
        if self.measuring:
            self.auth_negative_acks += 1

    def record_message(self, to_central: bool, kind: str | None = None,
                       site: int | None = None) -> None:
        """One protocol message sent (``kind``/``site`` enrich the trace)."""
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "message",
                direction="to-central" if to_central else "to-site",
                message=kind, site=site)
        if not self.measuring:
            return
        if to_central:
            self.messages_to_central += 1
        else:
            self.messages_to_sites += 1

    # -- robustness hooks (active only under a fault plan) -------------------

    def record_fault(self, kind: str, phase: str,
                     site: int | None = None) -> None:
        """A fault episode was applied or reverted (``phase``).

        Counted unconditionally -- the fault schedule is part of the
        experiment design, not a measured quantity.
        """
        self.tracer.emit(self.env.now, "fault", fault=kind, phase=phase,
                         site=site)
        self.fault_events += 1

    def record_timeout(self, txn: Transaction) -> None:
        """A shipped transaction's response retry budget was exhausted."""
        self.tracer.emit(self.env.now, "timeout", txn=txn.txn_id,
                         site=txn.home_site,
                         txn_class=txn.txn_class.value)
        if self.measuring:
            self.txns_timed_out += 1

    def record_failover(self, txn: Transaction) -> None:
        """A timed-out class A shipment re-runs at its home site."""
        self.tracer.emit(self.env.now, "failover", txn=txn.txn_id,
                         site=txn.home_site)
        if self.measuring:
            self.txns_failed_over += 1

    def record_failure(self, txn: Transaction, cause: str) -> None:
        """A transaction was abandoned permanently (never commits)."""
        self.tracer.emit(self.env.now, "txn-failed", txn=txn.txn_id,
                         site=txn.home_site, cause=cause)
        if self.measuring:
            self.txns_failed += 1

    def record_cancelled(self, txn: Transaction) -> None:
        """Central killed an execution on a ShipmentCancel."""
        self.tracer.emit(self.env.now, "cancel", txn=txn.txn_id,
                         site=txn.home_site)
        if self.measuring:
            self.txns_cancelled_central += 1

    def record_fallback_routing(self, txn: Transaction,
                                reason: str) -> None:
        """Failure-aware routing kept a class A arrival local."""
        self.tracer.emit(self.env.now, "fallback", txn=txn.txn_id,
                         site=txn.home_site, reason=reason)
        if self.measuring:
            self.fallback_routings += 1

    def record_rejected_arrival(self, txn: Transaction) -> None:
        """An arrival hit a crashed site and was turned away."""
        self.tracer.emit(self.env.now, "rejected", txn=txn.txn_id,
                         site=txn.home_site)
        if self.measuring:
            self.arrivals_rejected += 1

    def record_drop(self, message) -> None:
        """A degraded link lost a message."""
        if self.tracer.enabled:
            self.tracer.emit(self.env.now, "drop", message=message.kind)
        if self.measuring:
            self.messages_dropped += 1

    def record_retransmit(self, message) -> None:
        """A reliable channel resent an unacknowledged message."""
        if self.tracer.enabled:
            self.tracer.emit(self.env.now, "retransmit",
                             message=message.kind)
        if self.measuring:
            self.messages_retransmitted += 1

    def record_duplicate(self, message) -> None:
        """A reliable channel discarded a duplicate delivery."""
        if self.measuring:
            self.duplicate_messages += 1

    def record_population(self, n_local_total: int, n_central: int) -> None:
        """Sample the per-site population time series (called on changes)."""
        self.n_local.record(self.env.now, n_local_total)
        self.n_central.record(self.env.now, n_central)

    # -- summary -------------------------------------------------------------

    @property
    def aborts_total(self) -> int:
        return (self.aborts_deadlock + self.aborts_local_invalidated +
                self.aborts_central_invalidated)

    def freeze(self, *, total_rate: float, comm_delay: float, strategy: str,
               seed: int, local_utilizations: list[float],
               central_utilization: float,
               mean_local_queue: float,
               mean_central_queue: float,
               telemetry: tuple["TelemetryWindow", ...] = (),
               telemetry_interval: float = 0.0,
               telemetry_windows_dropped: int = 0,
               warmup_adequate: bool | None = None,
               warmup_trend: dict[str, float] | None = None,
               engine_events: int = 0,
               engine_events_per_sec: float = 0.0,
               engine_heap_peak: int = 0,
               wall_clock_seconds: float = 0.0,
               fault_episodes: tuple = ()) -> SimulationResult:
        """Produce the immutable result for this run."""
        measured_time = max(self.env.now - self.warmup_time, 1e-12)
        mean_local_util = (sum(local_utilizations) /
                           len(local_utilizations)
                           if local_utilizations else 0.0)
        by_class = {cls: stat.mean
                    for cls, stat in self.response_by_class.items()
                    if stat.count}
        by_kind = {kind: stat.mean
                   for kind, stat in self.response_by_kind.items()
                   if stat.count}
        decomposition = _phase_means(self.phase_stats)
        decomposition_by_class = {
            cls: _phase_means(stats)
            for cls, stats in self.phase_by_class.items()
            if any(stat.count for stat in stats.values())}
        decomposition_by_placement = {
            placement: _phase_means(stats)
            for placement, stats in self.phase_by_placement.items()
            if any(stat.count for stat in stats.values())}
        return SimulationResult(
            total_rate=total_rate,
            comm_delay=comm_delay,
            strategy=strategy,
            seed=seed,
            mean_response_time=self.response_all.mean,
            response_time_by_class=by_class,
            response_time_by_kind=by_kind,
            response_time_percentiles=self.response_quantiles.summary(),
            throughput=self.completed / measured_time,
            completed=self.completed,
            class_a_arrivals=self.class_a_arrivals,
            class_a_shipped=self.class_a_shipped,
            aborts_total=self.aborts_total,
            aborts_deadlock=self.aborts_deadlock,
            aborts_local_invalidated=self.aborts_local_invalidated,
            aborts_central_invalidated=self.aborts_central_invalidated,
            auth_negative_acks=self.auth_negative_acks,
            mean_local_utilization=mean_local_util,
            mean_central_utilization=central_utilization,
            mean_local_queue_length=mean_local_queue,
            mean_central_queue_length=mean_central_queue,
            messages_to_central=self.messages_to_central,
            messages_to_sites=self.messages_to_sites,
            response_time_decomposition=decomposition,
            decomposition_by_class=decomposition_by_class,
            decomposition_by_placement=decomposition_by_placement,
            telemetry=telemetry,
            telemetry_interval=telemetry_interval,
            telemetry_windows_dropped=telemetry_windows_dropped,
            warmup_adequate=warmup_adequate,
            warmup_trend=dict(warmup_trend or {}),
            engine_events=engine_events,
            engine_events_per_sec=engine_events_per_sec,
            engine_heap_peak=engine_heap_peak,
            wall_clock_seconds=wall_clock_seconds,
            txns_timed_out=self.txns_timed_out,
            txns_failed_over=self.txns_failed_over,
            txns_failed=self.txns_failed,
            txns_cancelled_central=self.txns_cancelled_central,
            fallback_routings=self.fallback_routings,
            arrivals_rejected=self.arrivals_rejected,
            messages_dropped=self.messages_dropped,
            messages_retransmitted=self.messages_retransmitted,
            duplicate_messages=self.duplicate_messages,
            fault_events=self.fault_events,
            fault_episodes=tuple(fault_episodes),
        )
