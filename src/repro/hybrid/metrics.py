"""Measurement collection for hybrid-system simulations.

The collector honours a warm-up period: observations before
``warmup_time`` are discarded so the steady-state estimates are not
biased by the empty-and-idle initial state.  Everything the paper's
figures need is gathered here:

* mean response time over **all** transactions (class A and B -- the
  y-axis of Figures 4.1/4.2/4.4/4.5/4.7), split by the six transaction
  kinds and by class;
* a per-phase *decomposition* of the mean response time (communication,
  CPU queueing, CPU service, I/O, lock waits, authentication, residue)
  computed from each transaction's lifecycle spans, so every figure can
  be attributed to a cause rather than just plotted;
* throughput (committed transactions per second of measured time);
* the fraction of class A transactions shipped (Figures 4.3/4.6);
* abort statistics split by cause (deadlock, invalidation of local
  transactions by authentication, invalidation of central transactions by
  asynchronous updates, negative acknowledgements);
* message counts and mean CPU utilisations;
* windowed time-series telemetry and engine profiling, attached by the
  system at freeze time (see :mod:`repro.hybrid.telemetry`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from ..db.transaction import (
    Placement,
    Transaction,
    TransactionClass,
    TransactionKind,
)
from ..obs.registry import MetricsRegistry
from ..sim.quantiles import QuantileSet
from ..sim.spans import PHASE_OTHER, PHASES
from ..sim.stats import RunningStat, TimeWeightedStat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.audit import RoutingAudit
    from ..sim.engine import Environment
    from .telemetry import TelemetryWindow

__all__ = ["MetricsCollector", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Immutable summary of one simulation run (one curve point)."""

    total_rate: float
    comm_delay: float
    strategy: str
    seed: int

    mean_response_time: float
    response_time_by_class: dict[TransactionClass, float]
    response_time_by_kind: dict[TransactionKind, float]
    #: Streaming P^2 estimates: keys p50/p90/p95/p99/min/max.
    response_time_percentiles: dict[str, float]
    throughput: float
    completed: int

    class_a_arrivals: int
    class_a_shipped: int

    aborts_total: int
    aborts_deadlock: int
    aborts_local_invalidated: int
    aborts_central_invalidated: int
    auth_negative_acks: int

    mean_local_utilization: float
    mean_central_utilization: float
    mean_local_queue_length: float
    mean_central_queue_length: float
    messages_to_central: int
    messages_to_sites: int

    # -- observability extensions (defaulted for compatibility) ------------

    #: Mean seconds per lifecycle phase over all completed transactions.
    #: The values sum to :attr:`mean_response_time` (exactly, up to
    #: floating-point error) because the span recorder attributes every
    #: instant of a transaction's lifetime to exactly one phase.
    response_time_decomposition: dict[str, float] = \
        field(default_factory=dict)
    #: The same decomposition split by transaction class.
    decomposition_by_class: dict[TransactionClass, dict[str, float]] = \
        field(default_factory=dict)
    #: The same decomposition split by placement (local/shipped/...).
    decomposition_by_placement: dict[Placement, dict[str, float]] = \
        field(default_factory=dict)

    #: Windowed time-series telemetry (ring-buffered; oldest windows may
    #: have been evicted -- see ``telemetry_windows_dropped``).
    telemetry: tuple["TelemetryWindow", ...] = ()
    telemetry_interval: float = 0.0
    telemetry_windows_dropped: int = 0
    #: ``None`` when too few post-warm-up windows exist to judge;
    #: otherwise whether the post-warm-up series looks trend-free.
    warmup_adequate: bool | None = None
    #: Relative first-half vs second-half drift per monitored metric.
    warmup_trend: dict[str, float] = field(default_factory=dict)

    #: Engine profile: events processed, wall-clock rate, calendar peak.
    engine_events: int = 0
    engine_events_per_sec: float = 0.0
    engine_heap_peak: int = 0
    wall_clock_seconds: float = 0.0

    # -- robustness / availability extensions (defaulted; all zero when
    # -- no fault plan is active) ------------------------------------------

    #: Shipped transactions whose response retry budget was exhausted.
    txns_timed_out: int = 0
    #: Class A transactions re-run locally after a shipment was cancelled.
    txns_failed_over: int = 0
    #: Transactions abandoned outright (cancelled class B shipments).
    txns_failed: int = 0
    #: Central-side executions killed by a ShipmentCancel.
    txns_cancelled_central: int = 0
    #: Class A arrivals routed locally by failure-awareness (central
    #: suspected or snapshot stale) without consulting the strategy.
    fallback_routings: int = 0
    #: Arrivals rejected because their home site was crashed.
    arrivals_rejected: int = 0
    #: Messages lost on degraded links / retransmitted by the reliable
    #: channels / discarded as duplicates at the receivers.
    messages_dropped: int = 0
    messages_retransmitted: int = 0
    duplicate_messages: int = 0
    #: Fault-episode transitions (applies + reverts) over the whole run.
    fault_events: int = 0
    #: Per-episode availability summaries
    #: (:class:`~repro.sim.faults.EpisodeReport`).
    fault_episodes: tuple = ()

    # -- survivability extensions (defaulted; all zero/None without a
    # -- recovery policy) ---------------------------------------------------

    #: Arrivals shed by bounded admission control (site or central).
    arrivals_shed: int = 0
    #: Transactions destroyed with a site's volatile state by a crash.
    txns_lost_in_crash: int = 0
    #: Shipments cancelled because their end-to-end deadline passed.
    txns_deadline_cancelled: int = 0
    #: Class B shipments re-shipped to the standby after a failover.
    txns_reshipped: int = 0
    #: Circuit-breaker state transitions (open/half-open/closed).
    breaker_transitions: int = 0
    #: Hot-standby takeovers (0 or 1 per run -- failover is sticky).
    failover_takeovers: int = 0
    #: Completed site rejoin (catch-up) protocols.
    site_rejoins: int = 0
    #: Per-recovery protocol timings
    #: (:class:`~repro.sim.faults.RecoveryRecord`).
    recoveries: tuple = ()
    #: Mean protocol-level repair time over all recoveries (seconds;
    #: ``None`` when no recovery ran).
    mttr: float | None = None
    #: Mean sim-time between failure episodes: uptime divided by the
    #: number of fault episodes (``None`` without any episode).
    mtbf: float | None = None

    #: Flattened metrics-registry snapshot (``name{labels} -> value``):
    #: every instrument the subsystems published during the run.  All
    #: values are simulation-deterministic (no wall-clock quantities are
    #: ever published), so the snapshot participates in bit-identity
    #: checks; the ``engine_*`` gauges mirror the profile fields and are
    #: filtered alongside them by ``identity_dict(include_profile=False)``.
    metrics: dict[str, float] = field(default_factory=dict)

    # -- control-variate extensions (defaulted for compatibility) ----------

    #: Covariate observations with analytically known expectations,
    #: emitted on every run (pure counter bookkeeping -- no extra RNG
    #: draws, no trace events, so sample paths and golden traces are
    #: untouched).  Keys: ``arrivals_a`` / ``arrivals_b`` (measured
    #: thinned-Poisson arrival counts) and ``demand_seconds`` (summed
    #: local service demand).  See :mod:`repro.analysis.variance`.
    covariates: dict[str, float] = field(default_factory=dict)
    #: The matching analytic expectations (``p_local * rate * T`` etc.),
    #: computed from the configuration alone.
    covariate_means: dict[str, float] = field(default_factory=dict)

    # -- commit-protocol extensions (defaulted for compatibility) ----------

    #: The commit protocol that produced this run (a name from
    #: :mod:`repro.hybrid.protocols`).
    protocol: str = "optimistic"
    #: Protocol-specific event counters (``record_protocol_event``
    #: mirror: prepare rounds, epoch flushes, blocked-transaction
    #: resolutions, ...).  Empty under the default protocol, which keeps
    #: pre-extraction results field-identical.
    protocol_counters: dict[str, int] = field(default_factory=dict)

    @property
    def shipped_fraction(self) -> float:
        """Fraction of measured class A arrivals routed to the central site."""
        if self.class_a_arrivals == 0:
            return 0.0
        return self.class_a_shipped / self.class_a_arrivals

    @property
    def abort_rate(self) -> float:
        """Aborts per committed transaction."""
        if self.completed == 0:
            return 0.0
        return self.aborts_total / self.completed

    @property
    def availability(self) -> float:
        """Fraction of measured work requests eventually served.

        Committed transactions over committed plus permanently failed
        plus rejected-at-arrival plus shed-by-admission plus
        lost-in-crash.  1.0 for any run without faults.
        """
        denominator = (self.completed + self.txns_failed +
                       self.arrivals_rejected + self.arrivals_shed +
                       self.txns_lost_in_crash)
        if denominator == 0:
            return 1.0
        return self.completed / denominator

    #: Fields that legitimately differ between two otherwise identical
    #: runs (wall-clock timing) -- always excluded from identity
    #: comparisons.
    TIMING_FIELDS = ("wall_clock_seconds", "engine_events_per_sec")
    #: Engine-profile fields: identical for byte-for-byte duplicate runs,
    #: but different when a run carries extra *observer* processes (the
    #: invariant checker's audit loop schedules its own timeouts).
    PROFILE_FIELDS = ("engine_events", "engine_heap_peak")

    def identity_dict(self, *, include_profile: bool = True,
                      include_strategy: bool = True) -> dict:
        """Deep dict of every deterministic field, for bit-identity checks.

        Two runs that followed the same sample path produce equal
        ``identity_dict()`` values; wall-clock-dependent fields are always
        dropped.  ``include_profile=False`` additionally drops the engine
        event/heap counters (use when one run carries read-only observer
        processes); ``include_strategy=False`` drops the strategy label
        (use when comparing differently-named but semantically forced
        routings, e.g. ``static(p=0)`` against ``no-load-sharing``).
        Used by :mod:`repro.verify.differential` and
        :mod:`repro.verify.metamorphic`.
        """
        data = asdict(self)
        for name in self.TIMING_FIELDS:
            data.pop(name, None)
        if not include_profile:
            for name in self.PROFILE_FIELDS:
                data.pop(name, None)
            # The registry mirrors the engine profile as gauges; an
            # observer that schedules its own (read-only) events shifts
            # them exactly like the profile fields, so they are filtered
            # together.
            data["metrics"] = {key: value
                               for key, value in data["metrics"].items()
                               if not key.startswith("engine_")}
        if not include_strategy:
            data.pop("strategy", None)
        return data

    @property
    def decomposition_residual(self) -> float:
        """Relative gap between the phase-mean sum and the mean RT.

        Near zero by construction; a large value indicates an
        instrumentation bug (a phase left open or double-counted).
        """
        if not self.response_time_decomposition or \
                self.mean_response_time == 0:
            return 0.0
        total = sum(self.response_time_decomposition.values())
        return abs(total - self.mean_response_time) / \
            self.mean_response_time


def _phase_stats() -> dict[str, RunningStat]:
    return {phase: RunningStat() for phase in PHASES}


def _phase_means(stats: dict[str, RunningStat]) -> dict[str, float]:
    return {phase: stat.mean for phase, stat in stats.items() if stat.count}


class MetricsCollector:
    """Accumulates statistics during a run and freezes them into a result.

    Every protocol-visible transition flows through this collector, so it
    doubles as the system's trace point: pass a
    :class:`~repro.sim.trace.Tracer` to record a structured event log
    (kinds: ``route``, ``commit``, ``spans``, ``abort``, ``negative-ack``,
    ``message``).  Trace emission is unconditional (not gated on the
    warm-up window) so debugging runs see the start-up transient too.

    The scalar protocol counters live in a
    :class:`~repro.obs.registry.MetricsRegistry` (one is created when
    none is passed): each hook increments a pre-bound registry child,
    and the historical attribute names (``completed``,
    ``aborts_deadlock``, ...) remain available as read-only properties.
    An optional :class:`~repro.obs.audit.RoutingAudit` receives every
    placement decision together with the observation that drove it.
    Both are strictly observational and deterministic.
    """

    def __init__(self, env: "Environment", warmup_time: float,
                 tracer=None, registry: MetricsRegistry | None = None,
                 audit: "RoutingAudit | None" = None):
        self.env = env
        self.warmup_time = warmup_time
        from ..sim.trace import NullTracer

        self.tracer = tracer if tracer is not None else NullTracer()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.audit = audit

        self.response_all = RunningStat()
        self.response_quantiles = QuantileSet()
        self.response_by_class: dict[TransactionClass, RunningStat] = {
            cls: RunningStat() for cls in TransactionClass}
        self.response_by_kind: dict[TransactionKind, RunningStat] = {
            kind: RunningStat() for kind in TransactionKind}

        # Per-phase response-time decomposition (seconds per txn).
        self.phase_stats = _phase_stats()
        self.phase_by_class: dict[TransactionClass,
                                  dict[str, RunningStat]] = {
            cls: _phase_stats() for cls in TransactionClass}
        self.phase_by_placement: dict[Placement,
                                      dict[str, RunningStat]] = {
            placement: _phase_stats() for placement in Placement}

        self.n_central = TimeWeightedStat()
        self.n_local = TimeWeightedStat()

        # -- registry instruments (children bound once; hooks do one
        # -- attribute add per event).  All are gated on the measurement
        # -- window exactly as the historical plain-int fields were.
        reg = self.registry
        self._completed = reg.counter(
            "txn_completed", "transactions committed in the "
            "measurement window").single
        arrivals = reg.counter(
            "txn_arrivals", "measured arrivals by class",
            labels=("txn_class",))
        self._arrivals_a = arrivals.labels("A")
        self._arrivals_b = arrivals.labels("B")
        self._shipped_a = reg.counter(
            "txn_shipped", "class A arrivals routed to the central "
            "complex").single
        aborts = reg.counter("txn_aborts", "aborts by cause",
                             labels=("cause",))
        self._aborts_deadlock = aborts.labels("deadlock")
        self._aborts_local = aborts.labels("local-invalidated")
        self._aborts_central = aborts.labels("central-invalidated")
        self._nak = reg.counter(
            "auth_negative_acks", "authentication rounds answered "
            "NAK").single
        auth_rounds = reg.counter(
            "auth_rounds", "completed authentication rounds by verdict",
            labels=("verdict",))
        self._auth_granted = auth_rounds.labels("granted")
        self._auth_refused = auth_rounds.labels("refused")
        messages = reg.counter(
            "messages_sent", "protocol messages by direction",
            labels=("direction",))
        self._msg_central = messages.labels("to-central")
        self._msg_sites = messages.labels("to-sites")
        self._routing = reg.counter(
            "routing_decisions", "placement decisions by placement "
            "and reason (counted from simulation start)",
            labels=("placement", "reason"))
        self._response_hist_family = reg.histogram(
            "response_time_seconds", "measured response times by class",
            labels=("txn_class",))
        self._response_hist = {
            cls: self._response_hist_family.labels(cls.value)
            for cls in TransactionClass}

        # Robustness / availability counters (all stay zero without a
        # fault plan -- none of the hooks below fire then).
        self._timed_out = reg.counter(
            "txn_timeouts", "shipments whose retry budget was "
            "exhausted").single
        self._failed_over = reg.counter(
            "txn_failovers", "timed-out class A shipments re-run at "
            "home").single
        self._failed = reg.counter(
            "txn_failures", "transactions abandoned permanently").single
        self._cancelled = reg.counter(
            "txn_cancelled_central", "central executions killed by a "
            "ShipmentCancel").single
        self._fallbacks = reg.counter(
            "fallback_routings", "class A arrivals kept local by "
            "failure awareness").single
        self._rejected = reg.counter(
            "arrivals_rejected", "arrivals turned away by crashed "
            "sites").single
        self._dropped = reg.counter(
            "messages_dropped", "messages lost on degraded links").single
        self._retransmitted = reg.counter(
            "messages_retransmitted", "reliable-channel "
            "retransmissions").single
        self._duplicates = reg.counter(
            "messages_duplicate", "duplicate deliveries discarded").single
        self._faults = reg.counter(
            "fault_events", "fault-episode transitions (applies + "
            "reverts)").single

        # Survivability counters (all stay zero unless the fault plan's
        # recovery policy arms the corresponding protocol).
        self._shed = reg.counter(
            "arrivals_shed", "arrivals shed by bounded admission",
            labels=("node",))
        self._shed_total = 0
        self._lost_in_crash = reg.counter(
            "txns_lost_in_crash", "transactions destroyed with a "
            "site's volatile state").single
        self._deadline_cancelled = reg.counter(
            "txn_deadline_cancels", "shipments cancelled past their "
            "deadline").single
        self._reshipped = reg.counter(
            "txn_reshipped", "class B shipments re-shipped to the "
            "standby after failover").single
        self._breaker = reg.counter(
            "breaker_transitions", "circuit-breaker transitions by "
            "site and new state", labels=("site", "state"))
        self._breaker_total = 0
        self._takeovers = reg.counter(
            "takeover_events", "standby takeover protocol events",
            labels=("event",))
        self._recovery_counter = reg.counter(
            "recoveries", "completed recovery protocols by kind",
            labels=("kind",))
        self._fenced = reg.counter(
            "fenced_frames", "frames discarded from a deposed primary",
            labels=("site",))
        self._auth_deadline = reg.counter(
            "auth_deadline_refusals", "authentication rounds refused "
            "for an expired deadline", labels=("site",))
        # Commit-protocol event counters (prepare rounds, epoch flushes,
        # ...).  The default protocol never fires these, so the registry
        # snapshot -- and with it every golden fingerprint -- is
        # unchanged for pre-existing runs.
        self._protocol_events = reg.counter(
            "protocol_events", "commit-protocol events by kind",
            labels=("event",))
        self.protocol_event_counts: dict[str, int] = {}
        #: Protocol-level recovery timings
        #: (:class:`~repro.sim.faults.RecoveryRecord`).
        self.recoveries: list = []

    # -- recording hooks (called by the sites) ------------------------------

    @property
    def measuring(self) -> bool:
        return self.env.now >= self.warmup_time

    def record_routing(self, txn: Transaction, observation=None,
                       reason: str = "strategy") -> None:
        """The placement decision for ``txn`` was made.

        ``observation`` is the :class:`RoutingObservation` the router
        consulted (``None`` for forced placements) and ``reason`` the
        decision category -- both feed the routing audit and the
        ``routing_decisions`` counter; the trace payload is unchanged.
        """
        # Anchor the lifecycle timeline at the routing decision (which
        # coincides with arrival); time until the first attributed phase
        # falls into the catch-all ``other`` bucket.
        txn.spans.enter(PHASE_OTHER, self.env.now)
        self.tracer.emit(self.env.now, "route", txn=txn.txn_id,
                         site=txn.home_site,
                         txn_class=txn.txn_class.value,
                         placement=txn.placement.value)
        self._routing.labels(txn.placement.value, reason).inc()
        if self.audit is not None:
            self.audit.record(txn, placement=txn.placement.value,
                              reason=reason, observation=observation,
                              now=self.env.now)
        if not self.measuring:
            return
        if txn.txn_class is TransactionClass.A:
            self._arrivals_a.inc()
            if txn.placement is Placement.SHIPPED:
                self._shipped_a.inc()
        else:
            self._arrivals_b.inc()

    def record_completion(self, txn: Transaction) -> None:
        self.tracer.emit(self.env.now, "commit", txn=txn.txn_id,
                         site=txn.home_site, txn_kind=txn.kind().value,
                         response=round(txn.response_time, 6),
                         runs=txn.run_count)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "spans", txn=txn.txn_id,
                site=txn.home_site, txn_kind=txn.kind().value,
                response=round(txn.response_time, 6),
                phases={phase: round(seconds, 6) for phase, seconds
                        in txn.spans.as_dict().items()})
        if not self.measuring:
            return
        self._completed.inc()
        response = txn.response_time
        self._response_hist[txn.txn_class].observe(response)
        self.response_all.add(response)
        self.response_quantiles.add(response)
        self.response_by_class[txn.txn_class].add(response)
        self.response_by_kind[txn.kind()].add(response)
        phase_totals = txn.spans.as_dict()
        by_class = self.phase_by_class[txn.txn_class]
        by_placement = self.phase_by_placement[txn.placement]
        for phase, seconds in phase_totals.items():
            self.phase_stats[phase].add(seconds)
            by_class[phase].add(seconds)
            by_placement[phase].add(seconds)

    def record_abort(self, txn: Transaction, cause: str) -> None:
        self.tracer.emit(self.env.now, "abort", txn=txn.txn_id,
                         site=txn.home_site, cause=cause,
                         run=txn.run_count)
        if not self.measuring:
            return
        if cause == "deadlock":
            self._aborts_deadlock.inc()
        elif cause == "local-invalidated":
            self._aborts_local.inc()
        elif cause == "central-invalidated":
            self._aborts_central.inc()
        else:
            raise ValueError(f"unknown abort cause: {cause}")

    def record_negative_ack(self, txn: Transaction | None = None,
                            sites: tuple[int, ...] = ()) -> None:
        """One authentication round answered NAK.

        ``txn`` is the authenticating transaction and ``sites`` the
        master sites that refused, so the event log can attribute the
        rerun (the counters never needed them, the trace does).
        """
        self.tracer.emit(self.env.now, "negative-ack",
                         txn=None if txn is None else txn.txn_id,
                         sites=sites)
        if self.measuring:
            self._nak.inc()

    def record_auth_round(self, granted: bool) -> None:
        """One authentication round concluded (registry-only hook).

        Deliberately emits no trace event: the committed golden traces
        hash the exact event stream, so new observability lands in the
        registry, never in the tracer vocabulary.
        """
        if self.measuring:
            (self._auth_granted if granted else self._auth_refused).inc()

    def record_protocol_event(self, event: str) -> None:
        """One commit-protocol event (registry-only hook).

        Like :meth:`record_auth_round` this deliberately emits no trace
        event -- golden traces hash the exact event stream, so
        per-protocol observability (prepare rounds, votes, epoch
        flushes, blocked-transaction resolutions) lands in the registry
        and the result's ``protocol_counters``, never in the tracer
        vocabulary.  Counted unconditionally: protocol rounds are
        structural behaviour, not a warmup-sensitive measurement.
        """
        self._protocol_events.labels(event).inc()
        self.protocol_event_counts[event] = \
            self.protocol_event_counts.get(event, 0) + 1

    def record_message(self, to_central: bool, kind: str | None = None,
                       site: int | None = None) -> None:
        """One protocol message sent (``kind``/``site`` enrich the trace)."""
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now, "message",
                direction="to-central" if to_central else "to-site",
                message=kind, site=site)
        if not self.measuring:
            return
        if to_central:
            self._msg_central.inc()
        else:
            self._msg_sites.inc()

    # -- robustness hooks (active only under a fault plan) -------------------

    def record_fault(self, kind: str, phase: str,
                     site: int | None = None) -> None:
        """A fault episode was applied or reverted (``phase``).

        Counted unconditionally -- the fault schedule is part of the
        experiment design, not a measured quantity.
        """
        self.tracer.emit(self.env.now, "fault", fault=kind, phase=phase,
                         site=site)
        self._faults.inc()

    def record_timeout(self, txn: Transaction) -> None:
        """A shipped transaction's response retry budget was exhausted."""
        self.tracer.emit(self.env.now, "timeout", txn=txn.txn_id,
                         site=txn.home_site,
                         txn_class=txn.txn_class.value)
        if self.measuring:
            self._timed_out.inc()

    def record_failover(self, txn: Transaction) -> None:
        """A timed-out class A shipment re-runs at its home site."""
        self.tracer.emit(self.env.now, "failover", txn=txn.txn_id,
                         site=txn.home_site)
        if self.audit is not None:
            self.audit.record(txn, placement=Placement.LOCAL.value,
                              reason="failover", now=self.env.now)
        if self.measuring:
            self._failed_over.inc()

    def record_failure(self, txn: Transaction, cause: str) -> None:
        """A transaction was abandoned permanently (never commits)."""
        self.tracer.emit(self.env.now, "txn-failed", txn=txn.txn_id,
                         site=txn.home_site, cause=cause)
        if self.measuring:
            self._failed.inc()

    def record_cancelled(self, txn: Transaction) -> None:
        """Central killed an execution on a ShipmentCancel."""
        self.tracer.emit(self.env.now, "cancel", txn=txn.txn_id,
                         site=txn.home_site)
        if self.measuring:
            self._cancelled.inc()

    def record_fallback_routing(self, txn: Transaction,
                                reason: str) -> None:
        """Failure-aware routing kept a class A arrival local."""
        self.tracer.emit(self.env.now, "fallback", txn=txn.txn_id,
                         site=txn.home_site, reason=reason)
        if self.measuring:
            self._fallbacks.inc()

    def record_rejected_arrival(self, txn: Transaction) -> None:
        """An arrival hit a crashed site and was turned away."""
        self.tracer.emit(self.env.now, "rejected", txn=txn.txn_id,
                         site=txn.home_site)
        if self.measuring:
            self._rejected.inc()

    def record_drop(self, message) -> None:
        """A degraded link lost a message."""
        if self.tracer.enabled:
            self.tracer.emit(self.env.now, "drop", message=message.kind)
        if self.measuring:
            self._dropped.inc()

    def record_retransmit(self, message) -> None:
        """A reliable channel resent an unacknowledged message."""
        if self.tracer.enabled:
            self.tracer.emit(self.env.now, "retransmit",
                             message=message.kind)
        if self.measuring:
            self._retransmitted.inc()

    def record_duplicate(self, message) -> None:
        """A reliable channel discarded a duplicate delivery."""
        if self.measuring:
            self._duplicates.inc()

    # -- survivability hooks (active only under a recovery policy) ----------

    def record_shed(self, txn: Transaction, node: str) -> None:
        """Bounded admission shed an arrival at ``node``."""
        self.tracer.emit(self.env.now, "shed", txn=txn.txn_id,
                         site=txn.home_site, node=node)
        if self.measuring:
            self._shed.labels(node).inc()
            self._shed_total += 1

    def record_lost_in_crash(self, txn: Transaction) -> None:
        """A site crash destroyed this in-flight transaction."""
        self.tracer.emit(self.env.now, "txn-lost", txn=txn.txn_id,
                         site=txn.home_site)
        if self.measuring:
            self._lost_in_crash.inc()

    def record_deadline_cancel(self, txn: Transaction) -> None:
        """A shipment was cancelled because its deadline passed."""
        self.tracer.emit(self.env.now, "deadline-cancel",
                         txn=txn.txn_id, site=txn.home_site)
        if self.measuring:
            self._deadline_cancelled.inc()

    def record_reship(self, txn: Transaction) -> None:
        """A class B shipment was re-shipped to the standby."""
        self.tracer.emit(self.env.now, "reship", txn=txn.txn_id,
                         site=txn.home_site)
        if self.measuring:
            self._reshipped.inc()

    def record_breaker(self, site: int, state: str) -> None:
        """A site's circuit breaker changed state.

        Counted unconditionally: breaker state is part of the failure
        timeline, like fault-episode transitions.
        """
        self.tracer.emit(self.env.now, "breaker", site=site, state=state)
        self._breaker.labels(f"site-{site}", state).inc()
        self._breaker_total += 1

    def record_takeover(self, event: str) -> None:
        """A takeover protocol event (``takeover``/``primary-deposed``/
        ``repoint-...``) occurred.  Counted unconditionally."""
        self.tracer.emit(self.env.now, "takeover", event=event)
        self._takeovers.labels(event).inc()

    def record_repoint(self, site: int) -> None:
        """A site re-pointed its central routing at the standby."""
        self.record_takeover(f"repoint-site-{site}")

    def record_recovery(self, kind: str, site: int | None,
                        started: float, completed: float) -> None:
        """One recovery protocol (failover or rejoin) completed.

        Recorded unconditionally -- recovery timing is part of the
        experiment design, like the fault schedule itself.
        """
        from ..sim.faults import RecoveryRecord
        self.tracer.emit(self.env.now, "recovery", recovery=kind,
                         site=site, started=round(started, 6),
                         completed=round(completed, 6))
        self._recovery_counter.labels(kind).inc()
        self.recoveries.append(RecoveryRecord(
            kind=kind, site=site, started=started, completed=completed))

    def record_fenced(self, site: int) -> None:
        """A frame from the deposed primary was discarded (registry-only
        hook: fencing is too frequent for the trace)."""
        self._fenced.labels(f"site-{site}").inc()

    def record_auth_deadline_refusal(self, site: int) -> None:
        """A master refused authentication for an expired deadline
        (registry-only hook)."""
        if self.measuring:
            self._auth_deadline.labels(f"site-{site}").inc()

    def record_population(self, n_local_total: int, n_central: int) -> None:
        """Sample the per-site population time series (called on changes)."""
        self.n_local.record(self.env.now, n_local_total)
        self.n_central.record(self.env.now, n_central)

    # -- historical counter names (read-only registry views) -----------------

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def class_a_arrivals(self) -> int:
        return int(self._arrivals_a.value)

    @property
    def class_b_arrivals(self) -> int:
        return int(self._arrivals_b.value)

    @property
    def class_a_shipped(self) -> int:
        return int(self._shipped_a.value)

    @property
    def aborts_deadlock(self) -> int:
        return int(self._aborts_deadlock.value)

    @property
    def aborts_local_invalidated(self) -> int:
        return int(self._aborts_local.value)

    @property
    def aborts_central_invalidated(self) -> int:
        return int(self._aborts_central.value)

    @property
    def auth_negative_acks(self) -> int:
        return int(self._nak.value)

    @property
    def messages_to_central(self) -> int:
        return int(self._msg_central.value)

    @property
    def messages_to_sites(self) -> int:
        return int(self._msg_sites.value)

    @property
    def txns_timed_out(self) -> int:
        return int(self._timed_out.value)

    @property
    def txns_failed_over(self) -> int:
        return int(self._failed_over.value)

    @property
    def txns_failed(self) -> int:
        return int(self._failed.value)

    @property
    def txns_cancelled_central(self) -> int:
        return int(self._cancelled.value)

    @property
    def fallback_routings(self) -> int:
        return int(self._fallbacks.value)

    @property
    def arrivals_rejected(self) -> int:
        return int(self._rejected.value)

    @property
    def messages_dropped(self) -> int:
        return int(self._dropped.value)

    @property
    def messages_retransmitted(self) -> int:
        return int(self._retransmitted.value)

    @property
    def duplicate_messages(self) -> int:
        return int(self._duplicates.value)

    @property
    def fault_events(self) -> int:
        return int(self._faults.value)

    @property
    def arrivals_shed(self) -> int:
        return self._shed_total

    @property
    def txns_lost_in_crash(self) -> int:
        return int(self._lost_in_crash.value)

    @property
    def txns_deadline_cancelled(self) -> int:
        return int(self._deadline_cancelled.value)

    @property
    def txns_reshipped(self) -> int:
        return int(self._reshipped.value)

    @property
    def breaker_transitions(self) -> int:
        return self._breaker_total

    # -- summary -------------------------------------------------------------

    @property
    def aborts_total(self) -> int:
        return (self.aborts_deadlock + self.aborts_local_invalidated +
                self.aborts_central_invalidated)

    def freeze(self, *, total_rate: float, comm_delay: float, strategy: str,
               seed: int, local_utilizations: list[float],
               central_utilization: float,
               mean_local_queue: float,
               mean_central_queue: float,
               telemetry: tuple["TelemetryWindow", ...] = (),
               telemetry_interval: float = 0.0,
               telemetry_windows_dropped: int = 0,
               warmup_adequate: bool | None = None,
               warmup_trend: dict[str, float] | None = None,
               engine_events: int = 0,
               engine_events_per_sec: float = 0.0,
               engine_heap_peak: int = 0,
               wall_clock_seconds: float = 0.0,
               fault_episodes: tuple = (),
               covariates: dict[str, float] | None = None,
               covariate_means: dict[str, float] | None = None,
               protocol: str = "optimistic",
               ) -> SimulationResult:
        """Produce the immutable result for this run."""
        measured_time = max(self.env.now - self.warmup_time, 1e-12)
        mean_local_util = (sum(local_utilizations) /
                           len(local_utilizations)
                           if local_utilizations else 0.0)
        by_class = {cls: stat.mean
                    for cls, stat in self.response_by_class.items()
                    if stat.count}
        by_kind = {kind: stat.mean
                   for kind, stat in self.response_by_kind.items()
                   if stat.count}
        decomposition = _phase_means(self.phase_stats)
        decomposition_by_class = {
            cls: _phase_means(stats)
            for cls, stats in self.phase_by_class.items()
            if any(stat.count for stat in stats.values())}
        decomposition_by_placement = {
            placement: _phase_means(stats)
            for placement, stats in self.phase_by_placement.items()
            if any(stat.count for stat in stats.values())}
        recoveries = tuple(self.recoveries)
        durations = [record.duration for record in recoveries]
        mttr = sum(durations) / len(durations) if durations else None
        episodes = tuple(fault_episodes)
        mtbf = None
        if episodes:
            downtime = sum(max(episode.end - episode.start, 0.0)
                           for episode in episodes)
            uptime = max(self.env.now - downtime, 0.0)
            mtbf = uptime / len(episodes)
        return SimulationResult(
            total_rate=total_rate,
            comm_delay=comm_delay,
            strategy=strategy,
            seed=seed,
            mean_response_time=self.response_all.mean,
            response_time_by_class=by_class,
            response_time_by_kind=by_kind,
            response_time_percentiles=self.response_quantiles.summary(),
            throughput=self.completed / measured_time,
            completed=self.completed,
            class_a_arrivals=self.class_a_arrivals,
            class_a_shipped=self.class_a_shipped,
            aborts_total=self.aborts_total,
            aborts_deadlock=self.aborts_deadlock,
            aborts_local_invalidated=self.aborts_local_invalidated,
            aborts_central_invalidated=self.aborts_central_invalidated,
            auth_negative_acks=self.auth_negative_acks,
            mean_local_utilization=mean_local_util,
            mean_central_utilization=central_utilization,
            mean_local_queue_length=mean_local_queue,
            mean_central_queue_length=mean_central_queue,
            messages_to_central=self.messages_to_central,
            messages_to_sites=self.messages_to_sites,
            response_time_decomposition=decomposition,
            decomposition_by_class=decomposition_by_class,
            decomposition_by_placement=decomposition_by_placement,
            telemetry=telemetry,
            telemetry_interval=telemetry_interval,
            telemetry_windows_dropped=telemetry_windows_dropped,
            warmup_adequate=warmup_adequate,
            warmup_trend=dict(warmup_trend or {}),
            engine_events=engine_events,
            engine_events_per_sec=engine_events_per_sec,
            engine_heap_peak=engine_heap_peak,
            wall_clock_seconds=wall_clock_seconds,
            txns_timed_out=self.txns_timed_out,
            txns_failed_over=self.txns_failed_over,
            txns_failed=self.txns_failed,
            txns_cancelled_central=self.txns_cancelled_central,
            fallback_routings=self.fallback_routings,
            arrivals_rejected=self.arrivals_rejected,
            messages_dropped=self.messages_dropped,
            messages_retransmitted=self.messages_retransmitted,
            duplicate_messages=self.duplicate_messages,
            fault_events=self.fault_events,
            fault_episodes=episodes,
            arrivals_shed=self.arrivals_shed,
            txns_lost_in_crash=self.txns_lost_in_crash,
            txns_deadline_cancelled=self.txns_deadline_cancelled,
            txns_reshipped=self.txns_reshipped,
            breaker_transitions=self.breaker_transitions,
            failover_takeovers=sum(1 for record in recoveries
                                   if record.kind == "failover"),
            site_rejoins=sum(1 for record in recoveries
                             if record.kind == "rejoin"),
            recoveries=recoveries,
            mttr=mttr,
            mtbf=mtbf,
            metrics=self.registry.snapshot(),
            covariates=dict(covariates or {}),
            covariate_means=dict(covariate_means or {}),
            protocol=protocol,
            protocol_counters=dict(self.protocol_event_counts),
        )
