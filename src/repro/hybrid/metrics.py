"""Measurement collection for hybrid-system simulations.

The collector honours a warm-up period: observations before
``warmup_time`` are discarded so the steady-state estimates are not
biased by the empty-and-idle initial state.  Everything the paper's
figures need is gathered here:

* mean response time over **all** transactions (class A and B -- the
  y-axis of Figures 4.1/4.2/4.4/4.5/4.7), split by the six transaction
  kinds and by class;
* throughput (committed transactions per second of measured time);
* the fraction of class A transactions shipped (Figures 4.3/4.6);
* abort statistics split by cause (deadlock, invalidation of local
  transactions by authentication, invalidation of central transactions by
  asynchronous updates, negative acknowledgements);
* message counts and mean CPU utilisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..db.transaction import (
    Placement,
    Transaction,
    TransactionClass,
    TransactionKind,
)
from ..sim.quantiles import QuantileSet
from ..sim.stats import RunningStat, TimeWeightedStat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Environment

__all__ = ["MetricsCollector", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Immutable summary of one simulation run (one curve point)."""

    total_rate: float
    comm_delay: float
    strategy: str
    seed: int

    mean_response_time: float
    response_time_by_class: dict[TransactionClass, float]
    response_time_by_kind: dict[TransactionKind, float]
    #: Streaming P^2 estimates: keys p50/p90/p95/p99/min/max.
    response_time_percentiles: dict[str, float]
    throughput: float
    completed: int

    class_a_arrivals: int
    class_a_shipped: int

    aborts_total: int
    aborts_deadlock: int
    aborts_local_invalidated: int
    aborts_central_invalidated: int
    auth_negative_acks: int

    mean_local_utilization: float
    mean_central_utilization: float
    mean_local_queue_length: float
    mean_central_queue_length: float
    messages_to_central: int
    messages_to_sites: int

    @property
    def shipped_fraction(self) -> float:
        """Fraction of measured class A arrivals routed to the central site."""
        if self.class_a_arrivals == 0:
            return 0.0
        return self.class_a_shipped / self.class_a_arrivals

    @property
    def abort_rate(self) -> float:
        """Aborts per committed transaction."""
        if self.completed == 0:
            return 0.0
        return self.aborts_total / self.completed


class MetricsCollector:
    """Accumulates statistics during a run and freezes them into a result.

    Every protocol-visible transition flows through this collector, so it
    doubles as the system's trace point: pass a
    :class:`~repro.sim.trace.Tracer` to record a structured event log
    (kinds: ``route``, ``commit``, ``abort``, ``negative-ack``).  Trace
    emission is unconditional (not gated on the warm-up window) so
    debugging runs see the start-up transient too.
    """

    def __init__(self, env: "Environment", warmup_time: float,
                 tracer=None):
        self.env = env
        self.warmup_time = warmup_time
        from ..sim.trace import NullTracer

        self.tracer = tracer if tracer is not None else NullTracer()

        self.response_all = RunningStat()
        self.response_quantiles = QuantileSet()
        self.response_by_class: dict[TransactionClass, RunningStat] = {
            cls: RunningStat() for cls in TransactionClass}
        self.response_by_kind: dict[TransactionKind, RunningStat] = {
            kind: RunningStat() for kind in TransactionKind}
        self.completed = 0

        self.class_a_arrivals = 0
        self.class_a_shipped = 0

        self.aborts_deadlock = 0
        self.aborts_local_invalidated = 0
        self.aborts_central_invalidated = 0
        self.auth_negative_acks = 0

        self.n_central = TimeWeightedStat()
        self.n_local = TimeWeightedStat()
        self.messages_to_central = 0
        self.messages_to_sites = 0

    # -- recording hooks (called by the sites) ------------------------------

    @property
    def measuring(self) -> bool:
        return self.env.now >= self.warmup_time

    def record_routing(self, txn: Transaction) -> None:
        self.tracer.emit(self.env.now, "route", txn=txn.txn_id,
                         site=txn.home_site,
                         txn_class=txn.txn_class.value,
                         placement=txn.placement.value)
        if not self.measuring or txn.txn_class is not TransactionClass.A:
            return
        self.class_a_arrivals += 1
        if txn.placement is Placement.SHIPPED:
            self.class_a_shipped += 1

    def record_completion(self, txn: Transaction) -> None:
        self.tracer.emit(self.env.now, "commit", txn=txn.txn_id,
                         site=txn.home_site, txn_kind=txn.kind().value,
                         response=round(txn.response_time, 6),
                         runs=txn.run_count)
        if not self.measuring:
            return
        self.completed += 1
        response = txn.response_time
        self.response_all.add(response)
        self.response_quantiles.add(response)
        self.response_by_class[txn.txn_class].add(response)
        self.response_by_kind[txn.kind()].add(response)

    def record_abort(self, txn: Transaction, cause: str) -> None:
        self.tracer.emit(self.env.now, "abort", txn=txn.txn_id,
                         site=txn.home_site, cause=cause,
                         run=txn.run_count)
        if not self.measuring:
            return
        if cause == "deadlock":
            self.aborts_deadlock += 1
        elif cause == "local-invalidated":
            self.aborts_local_invalidated += 1
        elif cause == "central-invalidated":
            self.aborts_central_invalidated += 1
        else:
            raise ValueError(f"unknown abort cause: {cause}")

    def record_negative_ack(self) -> None:
        self.tracer.emit(self.env.now, "negative-ack")
        if self.measuring:
            self.auth_negative_acks += 1

    def record_message(self, to_central: bool) -> None:
        if not self.measuring:
            return
        if to_central:
            self.messages_to_central += 1
        else:
            self.messages_to_sites += 1

    def record_population(self, n_local_total: int, n_central: int) -> None:
        """Sample the per-site population time series (called on changes)."""
        self.n_local.record(self.env.now, n_local_total)
        self.n_central.record(self.env.now, n_central)

    # -- summary -------------------------------------------------------------

    @property
    def aborts_total(self) -> int:
        return (self.aborts_deadlock + self.aborts_local_invalidated +
                self.aborts_central_invalidated)

    def freeze(self, *, total_rate: float, comm_delay: float, strategy: str,
               seed: int, local_utilizations: list[float],
               central_utilization: float,
               mean_local_queue: float,
               mean_central_queue: float) -> SimulationResult:
        """Produce the immutable result for this run."""
        measured_time = max(self.env.now - self.warmup_time, 1e-12)
        mean_local_util = (sum(local_utilizations) /
                           len(local_utilizations)
                           if local_utilizations else 0.0)
        by_class = {cls: stat.mean
                    for cls, stat in self.response_by_class.items()
                    if stat.count}
        by_kind = {kind: stat.mean
                   for kind, stat in self.response_by_kind.items()
                   if stat.count}
        return SimulationResult(
            total_rate=total_rate,
            comm_delay=comm_delay,
            strategy=strategy,
            seed=seed,
            mean_response_time=self.response_all.mean,
            response_time_by_class=by_class,
            response_time_by_kind=by_kind,
            response_time_percentiles=self.response_quantiles.summary(),
            throughput=self.completed / measured_time,
            completed=self.completed,
            class_a_arrivals=self.class_a_arrivals,
            class_a_shipped=self.class_a_shipped,
            aborts_total=self.aborts_total,
            aborts_deadlock=self.aborts_deadlock,
            aborts_local_invalidated=self.aborts_local_invalidated,
            aborts_central_invalidated=self.aborts_central_invalidated,
            auth_negative_acks=self.auth_negative_acks,
            mean_local_utilization=mean_local_util,
            mean_central_utilization=central_utilization,
            mean_local_queue_length=mean_local_queue,
            mean_central_queue_length=mean_central_queue,
            messages_to_central=self.messages_to_central,
            messages_to_sites=self.messages_to_sites,
        )
