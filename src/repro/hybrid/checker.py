"""Runtime protocol-invariant checking for hybrid-system simulations.

`attach_checker` wires an :class:`InvariantChecker` into a built (not
yet run) :class:`~repro.hybrid.system.HybridSystem`.  The checker
periodically audits structural invariants of the protocol state and
intercepts key transitions to verify ordering properties:

* **lock compatibility** -- no entity is ever held in incompatible modes
  at one site;
* **coherence sanity** -- coherence counts are non-negative and, summed
  per site, equal the number of unacknowledged update batches in flight
  times their batch contents;
* **update application order** -- the central site applies each site's
  asynchronous update batches in the exact order the site committed them
  (the protocol's FIFO requirement from Section 2);
* **authentication discipline** -- every authentication round concludes
  (granted, refused, or released) and no transaction commits centrally
  while marked for abort;
* **completion sanity** -- response times are positive and transactions
  complete exactly once.

The checker costs one audit pass per ``interval`` simulated seconds plus
O(1) work per intercepted event; it is intended for tests and debugging
runs, not for the large benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.locks import LockMode
from .protocol import UpdatePropagation
from .system import HybridSystem

__all__ = ["InvariantViolation", "InvariantChecker", "attach_checker"]


class InvariantViolation(AssertionError):
    """A protocol invariant failed during simulation."""


@dataclass
class CheckerStats:
    """What the checker observed (useful assertions for tests)."""

    audits: int = 0
    updates_checked: int = 0
    completions_checked: int = 0
    max_coherence_count: int = 0
    max_locks_held_central: int = 0
    max_divergent_entities: int = 0


class InvariantChecker:
    """Audits a running hybrid system; raise on any violation."""

    def __init__(self, system: HybridSystem, interval: float = 0.5):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.system = system
        self.interval = interval
        self.stats = CheckerStats()
        #: Per-site sequence number of the last update batch applied at
        #: the central site (ordering check).
        self._applied_seq: dict[int, int] = {}
        self._sent_seq: dict[int, int] = {}
        self._completed_ids: set[int] = set()
        self._install_hooks()
        system.env.process(self._audit_loop(), name="invariant-checker")

    # -- hooks ---------------------------------------------------------------

    def _install_hooks(self) -> None:
        system = self.system

        # Intercept update propagation: stamp a per-site sequence at the
        # sending site, verify monotone application at the central site.
        for site in system.sites:
            self._sent_seq[site.site_id] = 0
            self._applied_seq[site.site_id] = 0
            original_queue = site._queue_update

            def stamped_queue(updates, _site=site,
                              _original=original_queue):
                self._sent_seq[_site.site_id] += 1
                return _original(updates)

            site._queue_update = stamped_queue

        original_apply = system.central._apply_updates

        def checked_apply(propagation: UpdatePropagation,
                          _original=original_apply):
            source = propagation.source_site
            expected = self._applied_seq[source] + len(propagation.updates)
            result = yield from _original(propagation)
            self._applied_seq[source] += len(propagation.updates)
            if self._applied_seq[source] != expected:
                raise InvariantViolation(
                    f"update batches from site {source} applied out of "
                    f"order")
            if self._applied_seq[source] > self._sent_seq[source]:
                raise InvariantViolation(
                    f"central applied more batches from site {source} "
                    f"than were sent")
            self.stats.updates_checked += 1
            return result

        system.central._apply_updates = checked_apply

        # Intercept completions for exactly-once and positivity checks.
        original_completion = system.metrics.record_completion

        def checked_completion(txn, _original=original_completion):
            if txn.txn_id in self._completed_ids:
                raise InvariantViolation(
                    f"transaction {txn.txn_id} completed twice")
            self._completed_ids.add(txn.txn_id)
            if txn.response_time <= 0:
                raise InvariantViolation(
                    f"non-positive response time for {txn.txn_id}")
            if txn.marked_for_abort:
                raise InvariantViolation(
                    f"transaction {txn.txn_id} committed while marked "
                    f"for abort")
            self.stats.completions_checked += 1
            return _original(txn)

        system.metrics.record_completion = checked_completion

    # -- periodic audit --------------------------------------------------------

    def _audit_loop(self):
        env = self.system.env
        while True:
            yield env.timeout(self.interval)
            self.audit()

    def audit(self) -> None:
        """One full structural audit (also callable from tests)."""
        self.stats.audits += 1
        for site in self.system.sites:
            self._audit_lock_table(site.locks, site.name)
        self._audit_lock_table(self.system.central.locks, "central")
        self.stats.max_locks_held_central = max(
            self.stats.max_locks_held_central,
            self.system.central.locks.total_locks_held())
        # Replica counters may diverge transiently (messages in flight)
        # but never regress: central count <= master count + in-flight
        # commit orders is hard to bound cheaply, so the audit tracks the
        # divergence magnitude; the drain tests assert it returns to 0.
        from ..db.replica import replica_divergence

        divergence = replica_divergence(self.system)
        self.stats.max_divergent_entities = max(
            self.stats.max_divergent_entities, len(divergence))

    def _audit_lock_table(self, manager, name: str) -> None:
        for entity, lock in manager._locks.items():
            modes = list(lock.holders.values())
            if len(modes) > 1 and any(
                    mode is LockMode.EXCLUSIVE for mode in modes):
                raise InvariantViolation(
                    f"{name}: entity {entity} held in incompatible "
                    f"modes {modes}")
            if lock.coherence_count < 0:
                raise InvariantViolation(
                    f"{name}: negative coherence count on {entity}")
            self.stats.max_coherence_count = max(
                self.stats.max_coherence_count, lock.coherence_count)
            if manager._waits_for.has_cycle():
                raise InvariantViolation(
                    f"{name}: waits-for cycle survived detection")


def attach_checker(system: HybridSystem,
                   interval: float = 0.5) -> InvariantChecker:
    """Attach an :class:`InvariantChecker` to a freshly built system."""
    return InvariantChecker(system, interval=interval)
