"""The hybrid distributed-centralized database system model."""

from .base import SiteBase
from .central import CentralSite
from .checker import InvariantChecker, InvariantViolation, attach_checker
from .config import PAPER_BASE, SystemConfig, paper_config
from .local import LocalSite
from .metrics import MetricsCollector, SimulationResult
from .protocol import (
    AuthReply,
    AuthRequest,
    CentralSnapshot,
    CommitOrder,
    ReleaseOrder,
    TxnShipment,
    UpdateAck,
    UpdatePropagation,
)
from .protocols import CommitProtocol, get_protocol, protocol_names
from .system import HybridSystem, simulate
from .telemetry import TelemetrySampler, TelemetrySeries, TelemetryWindow

__all__ = [
    "SiteBase",
    "CentralSite",
    "InvariantChecker",
    "InvariantViolation",
    "attach_checker",
    "PAPER_BASE",
    "SystemConfig",
    "paper_config",
    "LocalSite",
    "MetricsCollector",
    "SimulationResult",
    "AuthReply",
    "AuthRequest",
    "CentralSnapshot",
    "CommitOrder",
    "ReleaseOrder",
    "TxnShipment",
    "UpdateAck",
    "UpdatePropagation",
    "CommitProtocol",
    "get_protocol",
    "protocol_names",
    "HybridSystem",
    "simulate",
    "TelemetrySampler",
    "TelemetrySeries",
    "TelemetryWindow",
]
