"""Local (distributed) site: class A execution and master-site protocol.

A local site

* receives the arrival stream for its region, routes each class A
  transaction (retain or ship) by consulting its :class:`~repro.core.router.Router`,
  and ships every class B transaction;
* runs retained class A transactions under strict two-phase locking with
  the paper's commit rule: check the abort mark, release locks, increment
  coherence counts, and send the update propagation message
  *asynchronously* (the transaction completes without waiting);
* acts as the *master* in the authentication phase of central/shipped
  transactions: answers NAK when coherence counts are non-zero, grants
  locks (evicting and marking incompatible local holders for abort)
  otherwise, and applies commit/release orders;
* maintains the newest :class:`CentralSnapshot` gleaned from incoming
  central messages -- the (delayed) central state the dynamic routing
  strategies consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..db.locks import DeadlockError
from ..db.replica import ReplicaStore
from ..db.transaction import Placement, Reference, Transaction, \
    TransactionClass
from ..sim.engine import Environment, Event
from ..sim.network import Link, Message, ReliableEndpoint
from ..sim.spans import PHASE_COMM
from .base import SiteBase
from .protocol import (
    AuthReply,
    AuthRequest,
    CancelAck,
    CentralSnapshot,
    CommitOrder,
    ReleaseOrder,
    RemoteCommit,
    RemoteInvalidate,
    RemoteLockReply,
    RemoteLockRequest,
    RemoteRelease,
    ShipmentCancel,
    TxnResponse,
    TxnShipment,
    UpdateAck,
    UpdatePropagation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.router import Router
    from ..sim.faults import RetryPolicy
    from .config import SystemConfig
    from .metrics import MetricsCollector
    from .system import HybridSystem

__all__ = ["LocalSite"]


class LocalSite(SiteBase):
    """One geographically distributed system of the hybrid architecture."""

    def __init__(self, env: Environment, site_id: int,
                 config: "SystemConfig", system: "HybridSystem",
                 router: "Router"):
        super().__init__(env, config, config.local_mips,
                         name=f"site-{site_id}")
        self.site_id = site_id
        self.system = system
        self.router = router
        self.metrics: "MetricsCollector" = system.metrics

        #: Class A transactions currently running at this site.
        self.active: dict[int, Transaction] = {}
        #: Master replica of this region's data (update counters).
        self.data = ReplicaStore(name=f"site-{site_id}")
        #: Transactions shipped from this site and not yet responded.
        self.shipped_in_flight = 0
        #: Newest central state heard via protocol messages.
        self.central_snapshot = CentralSnapshot.empty()

        # Links are attached by the system after both endpoints exist.
        self.to_central: Link | None = None
        self.from_central: Link | None = None

        self._update_buffer: list[tuple[int, ...]] = []
        # Remote-call bookkeeping (fully distributed class B mode).
        self._remote_call_ids = 0
        self._pending_remote_calls: dict[int, "Event"] = {}

        # Fault tolerance (populated only when a fault plan is active;
        # everything below stays inert otherwise).
        self.channel: ReliableEndpoint | None = None
        self.retry: "RetryPolicy | None" = None
        #: Whether repeated shipment timeouts have marked central suspect.
        self.central_suspected = False
        #: Shipped transactions awaiting their response: txn_id -> txn.
        self._pending_ship: dict[int, Transaction] = {}
        #: In-progress ShipmentCancel handshakes: txn_id -> Event.
        self._pending_cancels: dict[int, "Event"] = {}

    # -- wiring --------------------------------------------------------------

    def attach_links(self, to_central: Link, from_central: Link) -> None:
        self.to_central = to_central
        self.from_central = from_central
        self.env.process(self._dispatch(), name=f"{self.name}:dispatch")
        if self.config.update_batching > 1:
            self.env.process(self._flush_loop(),
                             name=f"{self.name}:flush")

    def enable_reliability(self, channel: ReliableEndpoint,
                           retry: "RetryPolicy") -> None:
        """Route site->central traffic through a reliable channel."""
        self.channel = channel
        self.retry = retry

    # -- arrival handling --------------------------------------------------------

    def submit(self, txn: Transaction) -> None:
        """Entry point for the arrival process."""
        if self.down:
            # A crashed site accepts no work; the arrival is turned away
            # (and counted against availability).
            self.metrics.record_rejected_arrival(txn)
            return
        if txn.txn_class is TransactionClass.B:
            if self.config.class_b_mode == "remote-call":
                txn.route(Placement.DISTRIBUTED)
                self.metrics.record_routing(txn, reason="class-b")
                self.env.process(self._run_distributed(txn),
                                 name=f"txn-{txn.txn_id}@{self.name}:dist")
            else:
                txn.route(Placement.CENTRAL)
                self.metrics.record_routing(txn, reason="class-b")
                self._ship(txn)
            return
        fallback = self._fallback_reason()
        if fallback is not None:
            # Failure-aware routing: with central suspected (or its state
            # aged beyond trust) class A work stays home without even
            # consulting the strategy.
            txn.route(Placement.LOCAL)
            self.metrics.record_fallback_routing(txn, fallback)
            self.metrics.record_routing(txn,
                                        reason=f"fallback:{fallback}")
            self.env.process(self._run_local(txn),
                             name=f"txn-{txn.txn_id}@{self.name}")
            return
        observation = self.observe()
        decision = self.router.decide(txn, observation)
        txn.route(decision)
        self.metrics.record_routing(txn, observation=observation,
                                    reason="strategy")
        if decision is Placement.LOCAL:
            self.env.process(self._run_local(txn),
                             name=f"txn-{txn.txn_id}@{self.name}")
        else:
            self.shipped_in_flight += 1
            self._ship(txn)

    def _fallback_reason(self) -> str | None:
        """Why class A must stay local, or ``None`` when central is fine.

        Only meaningful under a fault plan (``retry`` is ``None``
        otherwise).  The bootstrap state -- no central message heard yet,
        snapshot time ``-inf`` -- is *not* stale: the paper's optimistic
        start behaviour is preserved.
        """
        if self.retry is None:
            return None
        if self.central_suspected:
            return "central-suspected"
        snapshot_time = self.central_snapshot.time
        if snapshot_time > float("-inf") and \
                self.env.now - snapshot_time > self.retry.snapshot_max_age:
            return "snapshot-stale"
        return None

    def observe(self):
        """Build the routing observation (exact local, delayed central)."""
        from ..core.router import RoutingObservation
        central = (self.system.central.snapshot()
                   if self.config.instant_central_state
                   else self.central_snapshot)
        return RoutingObservation(
            now=self.env.now,
            site=self.site_id,
            local_queue_length=self.cpu_queue_length,
            local_n_txns=len(self.active),
            local_locks_held=self.locks.total_locks_held(),
            shipped_in_flight=self.shipped_in_flight,
            central=central,
        )

    def _send_central(self, kind: str, payload) -> None:
        """Send one site->central message (reliably under a fault plan)."""
        self.metrics.record_message(to_central=True, kind=kind,
                                    site=self.site_id)
        message = Message(kind=kind, source=self.site_id, payload=payload)
        if self.channel is not None:
            self.channel.send(message)
        else:
            self.to_central.send(message)

    def _ship(self, txn: Transaction) -> None:
        txn.spans.enter(PHASE_COMM, self.env.now)
        self._send_central("txn", TxnShipment(txn))
        if self.channel is not None:
            self._pending_ship[txn.txn_id] = txn
            self.env.process(self._ship_watchdog(txn),
                             name=f"txn-{txn.txn_id}@{self.name}:watchdog")

    def on_shipped_response(self, txn: Transaction) -> None:
        """The central site delivered the response for a shipped class A."""
        self.shipped_in_flight -= 1
        self.router.observe_completion(txn)

    # -- shipment supervision (active only under a fault plan) ---------------

    def _ship_watchdog(self, txn: Transaction):
        """Bound the transaction-level wait for a shipment's response.

        The reliable channel already retries individual messages forever;
        this watchdog is the *bounded* retry budget the protocol puts on
        the whole request/response exchange.  When the budget is
        exhausted the site suspects the central complex and settles the
        transaction's fate with a cancel handshake: because the channel
        is FIFO and exactly-once, the cancel is processed strictly after
        the shipment, so central's answer ("killed" or "completed") is
        definitive and the transaction can never run twice.
        """
        retry = self.retry
        delay = retry.shipment_timeout
        for _attempt in range(retry.shipment_attempts):
            yield self.env.timeout(delay)
            if txn.txn_id not in self._pending_ship:
                return  # response arrived
            delay *= retry.backoff
        self.metrics.record_timeout(txn)
        self._suspect_central()
        outcome = yield from self._cancel_shipment(txn)
        if txn.txn_id not in self._pending_ship:
            return  # response raced the cancel and won
        if outcome != "killed":
            return  # "completed": the response is on the wire
        del self._pending_ship[txn.txn_id]
        if txn.txn_class is TransactionClass.A:
            # Fail over: re-run the class A transaction at home.
            self.shipped_in_flight -= 1
            txn.route(Placement.LOCAL)
            self.metrics.record_failover(txn)
            self.env.process(self._run_local(txn),
                             name=f"txn-{txn.txn_id}@{self.name}:failover")
        else:
            # Class B can only run centrally; the transaction fails.
            self.metrics.record_failure(txn, cause="shipment-cancelled")

    def _cancel_shipment(self, txn: Transaction):
        """ShipmentCancel round trip; returns central's verdict."""
        done = Event(self.env)
        self._pending_cancels[txn.txn_id] = done
        self._send_central("cancel",
                           ShipmentCancel(txn_id=txn.txn_id,
                                          site=self.site_id))
        ack: CancelAck = yield done
        return ack.outcome

    def _suspect_central(self) -> None:
        """Mark central suspect and age out its (now stale) snapshot."""
        if self.central_suspected:
            return
        self.central_suspected = True
        self.central_snapshot = CentralSnapshot.empty()

    def _complete_shipped(self, response: TxnResponse) -> None:
        """A TxnResponse closed out a shipped/central transaction."""
        txn = response.txn
        if self._pending_ship.pop(txn.txn_id, None) is None:
            return  # already settled by the cancel handshake
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)
        if txn.placement is Placement.SHIPPED:
            self.on_shipped_response(txn)

    # -- local class A execution ----------------------------------------------

    def _run_local(self, txn: Transaction):
        config = self.config
        self.active[txn.txn_id] = txn
        try:
            while True:
                txn.begin_run(self.env.now)
                first_run = txn.run_count == 1
                if first_run:
                    yield from self.io_wait(config.io_initial, txn)
                yield from self.cpu_burst(config.instr_txn_overhead, txn)
                try:
                    yield from self._execute_calls(txn, first_run)
                except DeadlockError:
                    self._abort_deadlock(txn)
                    continue
                # Commit time: first check the abort mark set by committed
                # shipped/central transactions (Section 2).
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                yield from self.cpu_burst(config.instr_commit, txn)
                # Re-check after commit processing: an authentication may
                # have evicted us while we held the CPU for the commit
                # burst; the check and the release must be atomic with
                # respect to authentication handling.
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                self._commit(txn)
                return
        finally:
            self.active.pop(txn.txn_id, None)

    def _execute_calls(self, txn: Transaction, first_run: bool):
        """The ten database calls: lock, CPU burst, data I/O."""
        config = self.config
        for reference in txn.references:
            if not self.locks.is_held_by(reference.entity, txn.txn_id):
                # Raises DeadlockError on a cycle.
                yield from self.lock_wait(txn, reference)
            yield from self.cpu_burst(config.instr_per_db_call, txn)
            if first_run:
                yield from self.io_wait(config.io_per_db_call, txn)

    def _abort_deadlock(self, txn: Transaction) -> None:
        """Deadlock victim: release *all* locks (Section 4.1) and re-run."""
        txn.record_abort(deadlock=True)
        self.metrics.record_abort(txn, "deadlock")
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()

    def _abort_invalidated(self, txn: Transaction) -> None:
        """Aborted by a committed central/shipped transaction."""
        txn.record_abort()
        self.metrics.record_abort(txn, "local-invalidated")
        if not self.config.keep_locks_on_abort:
            self.locks.release_all(txn.txn_id)
            txn.locked_entities.clear()
        # Under the paper's modelling assumption surviving locks are kept;
        # entities taken by the authenticating transaction were already
        # removed from ``locked_entities`` during eviction.

    def _commit(self, txn: Transaction) -> None:
        """Release locks, start asynchronous propagation, complete."""
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        updates = txn.update_entities
        if updates:
            self.data.apply_updates(updates)
            for entity in updates:
                self.locks.increment_coherence(entity)
            self._queue_update(updates)
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)
        self.router.observe_completion(txn)

    def _queue_update(self, updates: tuple[int, ...]) -> None:
        """Send (or batch) the asynchronous update propagation message."""
        self._update_buffer.append(updates)
        if len(self._update_buffer) >= self.config.update_batching:
            self._flush_updates()

    def _flush_updates(self) -> None:
        if not self._update_buffer:
            return
        batch = tuple(self._update_buffer)
        self._update_buffer.clear()
        self._send_central("update", UpdatePropagation(self.site_id, batch))

    def _flush_loop(self):
        """Periodic flush so partial batches are never stranded."""
        interval = self.config.update_flush_interval
        while True:
            yield self.env.timeout(interval)
            self._flush_updates()

    # -- fully distributed class B execution (remote-call mode) -----------------

    def _split_references(self, txn: Transaction) -> tuple[list, list]:
        """Home-partition references first, remote references second.

        The two-phase ordering (all local locks before any remote lock)
        prevents cross-site deadlock: a transaction holding remote locks
        never waits for a local one, so every wait cycle is confined to
        a single lock table, where the per-site detectors see it.
        """
        low, high = self.system.partition.site_range(self.site_id)
        local_refs = [ref for ref in txn.references
                      if low <= ref.entity < high]
        remote_refs = [ref for ref in txn.references
                       if not low <= ref.entity < high]
        return local_refs, remote_refs

    def _run_distributed(self, txn: Transaction):
        """Run a class B transaction here, with remote calls for
        non-local data (the introduction's fully distributed mode)."""
        config = self.config
        local_refs, remote_refs = self._split_references(txn)
        remote_locked: set[int] = set()
        self.active[txn.txn_id] = txn
        try:
            while True:
                txn.begin_run(self.env.now)
                first_run = txn.run_count == 1
                if first_run:
                    yield from self.io_wait(config.io_initial, txn)
                yield from self.cpu_burst(config.instr_txn_overhead, txn)
                try:
                    # Phase 1: home-partition data under local locking.
                    for reference in local_refs:
                        if not self.locks.is_held_by(reference.entity,
                                                     txn.txn_id):
                            yield from self.lock_wait(txn, reference)
                        yield from self.cpu_burst(
                            config.instr_per_db_call, txn)
                        if first_run:
                            yield from self.io_wait(
                                config.io_per_db_call, txn)
                    # Phase 2: remote data from the central server.
                    for reference in remote_refs:
                        if reference.entity not in remote_locked:
                            granted = yield from self._remote_call(
                                txn, reference)
                            if not granted:
                                raise DeadlockError(txn.txn_id,
                                                    reference.entity)
                            remote_locked.add(reference.entity)
                        yield from self.cpu_burst(
                            config.instr_per_db_call, txn)
                except DeadlockError:
                    txn.record_abort(deadlock=True)
                    self.metrics.record_abort(txn, "deadlock")
                    self.locks.release_all(txn.txn_id)
                    txn.locked_entities.clear()
                    if remote_locked:
                        self._send_remote(RemoteRelease(
                            txn_id=txn.txn_id, site=self.site_id),
                            kind="remote-release")
                        remote_locked.clear()
                    continue
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                yield from self.cpu_burst(config.instr_commit, txn)
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                self._commit_distributed(txn, remote_locked)
                return
        finally:
            self.active.pop(txn.txn_id, None)

    def _remote_call(self, txn: Transaction, reference: Reference):
        """Synchronous lock-and-fetch round trip to the data server."""
        self._remote_call_ids += 1
        call_id = self._remote_call_ids
        done = Event(self.env)
        self._pending_remote_calls[call_id] = done
        self._send_remote(RemoteLockRequest(
            call_id=call_id, txn_id=txn.txn_id, site=self.site_id,
            entity=reference.entity, mode=reference.mode),
            kind="remote-lock")
        # The round trip (both legs plus central-side queueing/locking)
        # is communication from this transaction's point of view.
        txn.spans.enter(PHASE_COMM, self.env.now)
        reply = yield done
        txn.spans.exit(self.env.now)
        return reply.granted

    def _send_remote(self, payload, kind: str) -> None:
        self._send_central(kind, payload)

    def _commit_distributed(self, txn: Transaction,
                            remote_locked: set[int]) -> None:
        """Commit: local part like a class A commit, remote part via the
        data server (which forwards updates to the owning masters)."""
        low, high = self.system.partition.site_range(self.site_id)
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        home_updates = tuple(entity for entity in txn.update_entities
                             if low <= entity < high)
        remote_updates = tuple(entity for entity in txn.update_entities
                               if not low <= entity < high)
        if home_updates:
            self.data.apply_updates(home_updates)
            for entity in home_updates:
                self.locks.increment_coherence(entity)
            self._queue_update(home_updates)
        if remote_locked or remote_updates:
            self._send_remote(RemoteCommit(
                txn_id=txn.txn_id, site=self.site_id,
                updates=remote_updates), kind="remote-commit")
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)

    # -- master-site protocol ------------------------------------------------------

    def _dispatch(self):
        """Handle central -> site messages in arrival order."""
        while True:
            message = yield self.from_central.mailbox.get()
            if self.channel is not None:
                # Any frame from central -- app message or bare ack --
                # proves it is reachable again.
                self.central_suspected = False
                for delivered in self.channel.pump(message):
                    self._on_central_message(delivered)
            else:
                self._on_central_message(message)

    def _on_central_message(self, message: Message) -> None:
        payload = message.payload
        snapshot = getattr(payload, "snapshot", None)
        # Section 4.2: by default the sites learn central state only
        # from authentication-phase traffic, not from the (far more
        # frequent) asynchronous-update acknowledgements.
        usable = (not isinstance(payload, UpdateAck) or
                  self.config.snapshot_on_update_acks)
        if snapshot is not None and usable and \
                snapshot.time > self.central_snapshot.time:
            self.central_snapshot = snapshot
        if isinstance(payload, AuthRequest):
            # Authentication checks consume local CPU; handle in a
            # child process so unrelated messages are not blocked.
            self.env.process(self._handle_auth(payload),
                             name=f"{self.name}:auth")
        elif isinstance(payload, CommitOrder):
            self._handle_commit_order(payload)
        elif isinstance(payload, ReleaseOrder):
            self._handle_release_order(payload)
        elif isinstance(payload, UpdateAck):
            self._handle_update_ack(payload)
        elif isinstance(payload, TxnResponse):
            self._complete_shipped(payload)
        elif isinstance(payload, CancelAck):
            pending = self._pending_cancels.pop(payload.txn_id, None)
            if pending is not None:
                pending.succeed(payload)
        elif isinstance(payload, RemoteLockReply):
            pending = self._pending_remote_calls.pop(payload.call_id)
            pending.succeed(payload)
        elif isinstance(payload, RemoteInvalidate):
            victim = self.active.get(payload.txn_id)
            if victim is not None and not victim.marked_for_abort:
                victim.mark_for_abort("remote-lock-invalidated")
        else:
            raise TypeError(f"unexpected payload {payload!r}")

    def _handle_auth(self, request: AuthRequest):
        """Authentication phase at the master site (Section 2)."""
        yield from self.cpu_burst(self.config.instr_auth_master)
        entities = [entity for entity, _mode in request.references]
        aborted: list[int] = []
        if any(self.locks.coherence_count(entity) for entity in entities):
            granted = False  # in-flight asynchronous updates -> NAK
        else:
            granted = True
            for entity, mode in request.references:
                evicted = self.locks.force_grant(request.txn_id, entity,
                                                 mode)
                for victim_id in evicted:
                    victim = self.active.get(victim_id)
                    if victim is not None:
                        victim.mark_for_abort("invalidated-by-authentication")
                        if entity in victim.locked_entities:
                            victim.locked_entities.remove(entity)
                        aborted.append(victim_id)
        self._send_central("auth-reply", AuthReply(
            auth_id=request.auth_id, txn_id=request.txn_id,
            site=self.site_id, granted=granted,
            aborted_local_txns=tuple(aborted)))

    def _handle_commit_order(self, order: CommitOrder) -> None:
        """Apply the central transaction's updates, release its locks."""
        self.data.apply_updates(order.updates)
        self.locks.release_all(order.txn_id)

    def _handle_release_order(self, order: ReleaseOrder) -> None:
        """Failed authentication elsewhere: drop any granted locks."""
        self.locks.release_all(order.txn_id)

    def _handle_update_ack(self, ack: UpdateAck) -> None:
        """Central applied our updates: decrement the coherence counts."""
        for group in ack.updates:
            for entity in group:
                self.locks.decrement_coherence(entity)
