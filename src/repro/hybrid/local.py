"""Local (distributed) site: class A execution and master-site protocol.

A local site

* receives the arrival stream for its region, routes each class A
  transaction (retain or ship) by consulting its :class:`~repro.core.router.Router`,
  and ships every class B transaction;
* runs retained class A transactions under strict two-phase locking with
  the paper's commit rule: check the abort mark, release locks, increment
  coherence counts, and send the update propagation message
  *asynchronously* (the transaction completes without waiting);
* acts as the *master* in the authentication phase of central/shipped
  transactions: answers NAK when coherence counts are non-zero, grants
  locks (evicting and marking incompatible local holders for abort)
  otherwise, and applies commit/release orders;
* maintains the newest :class:`CentralSnapshot` gleaned from incoming
  central messages -- the (delayed) central state the dynamic routing
  strategies consume.

Under a fault plan with a :class:`~repro.sim.faults.RecoveryPolicy` the
site additionally participates in the survivability protocols:

* **failover** -- on a :class:`FailoverNotice` from the hot standby the
  site re-points its central routing, fences all further traffic from
  the deposed primary (frames are still acked so retransmission stops,
  but never processed), settles every in-flight shipment (class A
  re-runs locally, class B re-ships to the standby), releases the dead
  primary's phantom master locks and re-sends unacknowledged update
  batches;
* **crash rejoin** -- a site crash destroys all volatile state (running
  transactions, lock table, replica counters, channel bookkeeping);
  when the outage ends the site resets its channel incarnations and
  runs the RejoinRequest/RejoinSnapshot catch-up before admitting the
  arrivals it queued while down;
* **overload control** -- bounded admission (shed when the active set
  is full), end-to-end deadlines propagated through shipment and
  authentication messages (doomed work is cancelled early), and a
  circuit breaker on the site->central path that trips on consecutive
  shipment timeouts and half-opens probabilistically.

All of this is inert -- zero events, zero RNG draws -- unless the
recovery policy enables it, so plain runs stay bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..db.locks import DeadlockError, LockManager
from ..db.replica import ReplicaStore
from ..db.transaction import Placement, Reference, Transaction, \
    TransactionClass
from ..sim.engine import Environment, Event, Interrupt, Process
from ..sim.network import Link, Message, ReliableEndpoint
from ..sim.spans import PHASE_COMM
from .base import SiteBase
from .protocol import (
    AuthReply,
    AuthRequest,
    CancelAck,
    CentralSnapshot,
    CommitOrder,
    FailoverNotice,
    RejoinRequest,
    RejoinSnapshot,
    ReleaseOrder,
    RemoteCommit,
    RemoteInvalidate,
    RemoteLockReply,
    RemoteLockRequest,
    RemoteRelease,
    ShipmentCancel,
    ShipmentReject,
    TxnResponse,
    TxnShipment,
    UpdateAck,
    UpdatePropagation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.router import Router
    from ..sim.faults import RecoveryPolicy, RetryPolicy
    from .config import SystemConfig
    from .metrics import MetricsCollector
    from .system import HybridSystem

__all__ = ["LocalSite", "CircuitBreaker"]


class CircuitBreaker:
    """Circuit breaker for one site's path to the central complex.

    Classic three-state machine: ``closed`` (normal), ``open`` (fail
    fast after ``threshold`` consecutive shipment timeouts), and
    ``half-open`` (after ``cooldown`` seconds each candidate shipment
    probes the path with probability ``probe``, drawn from the site's
    named ``breaker:`` RNG stream so runs stay reproducible).  Any
    completed shipment closes the breaker; a timeout in half-open
    re-opens it immediately.
    """

    def __init__(self, env: Environment, threshold: int, cooldown: float,
                 probe: float, rng_factory, on_transition):
        self.env = env
        self.threshold = threshold
        self.cooldown = cooldown
        self.probe = probe
        self._rng_factory = rng_factory
        self._on_transition = on_transition
        self.state = "closed"
        self.consecutive_timeouts = 0
        self.opened_at = float("-inf")

    def allows(self) -> bool:
        """May a shipment be sent right now?  (May transition states.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.env.now - self.opened_at < self.cooldown:
                return False
            self._transition("half-open")
        # Half-open: probabilistic probe.
        return self._rng_factory().random() < self.probe

    def on_timeout(self) -> None:
        self.consecutive_timeouts += 1
        if self.state == "half-open" or (
                self.state == "closed" and
                self.consecutive_timeouts >= self.threshold):
            self.opened_at = self.env.now
            self._transition("open")

    def on_success(self) -> None:
        self.consecutive_timeouts = 0
        if self.state != "closed":
            self._transition("closed")

    def reset(self) -> None:
        """Silent reset (crash recovery wipes the breaker's memory)."""
        self.state = "closed"
        self.consecutive_timeouts = 0
        self.opened_at = float("-inf")

    def _transition(self, to: str) -> None:
        if to == self.state:
            return
        self.state = to
        self._on_transition(to)


class LocalSite(SiteBase):
    """One geographically distributed system of the hybrid architecture."""

    def __init__(self, env: Environment, site_id: int,
                 config: "SystemConfig", system: "HybridSystem",
                 router: "Router"):
        super().__init__(env, config, config.local_mips,
                         name=f"site-{site_id}")
        self.site_id = site_id
        self.system = system
        self.router = router
        self.metrics: "MetricsCollector" = system.metrics

        #: Class A transactions currently running at this site.
        self.active: dict[int, Transaction] = {}
        #: Master replica of this region's data (update counters).
        self.data = ReplicaStore(name=f"site-{site_id}")
        #: Transactions shipped from this site and not yet responded.
        self.shipped_in_flight = 0
        #: Newest central state heard via protocol messages.
        self.central_snapshot = CentralSnapshot.empty()

        # Links are attached by the system after both endpoints exist.
        self.to_central: Link | None = None
        self.from_central: Link | None = None

        self._update_buffer: list[tuple[int, ...]] = []
        #: Per-site monotone batch number for update propagation; every
        #: sent batch is tracked until its ack arrives so a stale or
        #: duplicated ack (crash/failover re-sends) cannot drive a
        #: coherence count below zero.
        self._update_seq = 0
        self._unacked_updates: dict[int, tuple[tuple[int, ...], ...]] = {}
        # Remote-call bookkeeping (fully distributed class B mode).
        self._remote_call_ids = 0
        self._pending_remote_calls: dict[int, "Event"] = {}

        # Fault tolerance (populated only when a fault plan is active;
        # everything below stays inert otherwise).
        self.channel: ReliableEndpoint | None = None
        self.retry: "RetryPolicy | None" = None
        #: Whether repeated shipment timeouts have marked central suspect.
        self.central_suspected = False
        #: Shipped transactions awaiting their response: txn_id -> txn.
        self._pending_ship: dict[int, Transaction] = {}
        #: In-progress ShipmentCancel handshakes: txn_id -> Event.
        self._pending_cancels: dict[int, "Event"] = {}

        # Recovery subsystem (populated only when the fault plan's
        # RecoveryPolicy enables it; inert otherwise).
        self.recovery: "RecoveryPolicy | None" = None
        self.to_standby: Link | None = None
        self.from_standby: Link | None = None
        self.standby_channel: ReliableEndpoint | None = None
        #: True once a FailoverNotice re-pointed routing at the standby.
        self.on_standby = False
        #: True while a SITE_CRASH episode is destroying this site.
        self.crashed = False
        #: True between episode end and rejoin-snapshot installation.
        self.recovering = False
        self._rejoin_started = 0.0
        #: Arrivals queued during crash/recovery (bounded admission).
        self._admission_queue: list[Transaction] = []
        #: Running transaction processes, so a crash can interrupt them.
        self._local_processes: dict[int, Process] = {}
        #: Shipment watchdogs, likewise interruptible on crash.
        self._watchdogs: dict[int, Process] = {}
        self.breaker: CircuitBreaker | None = None
        #: App frames discarded because they came from a deposed
        #: primary (or arrived at a crashed site).
        self.fenced_messages = 0
        self.txns_lost_in_crash = 0

    # -- wiring --------------------------------------------------------------

    def attach_links(self, to_central: Link, from_central: Link) -> None:
        self.to_central = to_central
        self.from_central = from_central
        self.env.process(self._dispatch(), name=f"{self.name}:dispatch")
        if self.config.update_batching > 1:
            self.env.process(self._flush_loop(),
                             name=f"{self.name}:flush")

    def enable_reliability(self, channel: ReliableEndpoint,
                           retry: "RetryPolicy") -> None:
        """Route site->central traffic through a reliable channel."""
        self.channel = channel
        self.retry = retry

    def enable_recovery(self, recovery: "RecoveryPolicy") -> None:
        """Arm the survivability protocols this site participates in."""
        self.recovery = recovery
        if recovery.breaker_threshold > 0:
            self.breaker = CircuitBreaker(
                self.env,
                threshold=recovery.breaker_threshold,
                cooldown=recovery.breaker_cooldown,
                probe=recovery.breaker_probe,
                rng_factory=lambda: self.system.streams.stream(
                    f"breaker:{self.name}"),
                on_transition=lambda state: self.metrics.record_breaker(
                    self.site_id, state))

    def attach_standby(self, to_standby: Link, from_standby: Link,
                       channel: ReliableEndpoint) -> None:
        """Wire the pre-established link pair to the hot standby."""
        self.to_standby = to_standby
        self.from_standby = from_standby
        self.standby_channel = channel
        self.env.process(self._dispatch_standby(),
                         name=f"{self.name}:standby-dispatch")

    @property
    def standby_links(self) -> tuple[Link, ...]:
        """Both directions of the site<->standby pair (for the injector)."""
        if self.to_standby is None or self.from_standby is None:
            return ()
        return (self.to_standby, self.from_standby)

    # -- arrival handling --------------------------------------------------------

    def submit(self, txn: Transaction) -> None:
        """Entry point for the arrival process."""
        recovery = self.recovery
        if self.down or self.crashed or self.recovering:
            if recovery is not None and recovery.rejoin:
                # Queue for post-rejoin admission (bounded).
                limit = recovery.admission_limit
                if limit and len(self._admission_queue) >= limit:
                    self.metrics.record_shed(txn, node=self.name)
                else:
                    self._admission_queue.append(txn)
                return
            # A crashed site accepts no work; the arrival is turned away
            # (and counted against availability).
            self.metrics.record_rejected_arrival(txn)
            return
        if recovery is not None:
            if recovery.deadline > 0 and txn.deadline is None:
                txn.deadline = self.env.now + recovery.deadline
            limit = recovery.admission_limit
            if limit and len(self.active) >= limit:
                # Bounded admission: shed rather than build an unbounded
                # backlog that would miss every deadline anyway.
                self.metrics.record_shed(txn, node=self.name)
                return
        if txn.txn_class is TransactionClass.B:
            if self.config.class_b_mode == "remote-call":
                txn.route(Placement.DISTRIBUTED)
                self.metrics.record_routing(txn, reason="class-b")
                self._start_process(txn, self._run_distributed(txn),
                                    suffix=":dist")
            else:
                txn.route(Placement.CENTRAL)
                self.metrics.record_routing(txn, reason="class-b")
                if self.breaker is not None and not self.breaker.allows():
                    # Class B can only run centrally: fail fast while
                    # the breaker holds the path open.
                    self.metrics.record_failure(txn, cause="breaker-open")
                    return
                self._ship(txn)
            return
        fallback = self._fallback_reason()
        if fallback is not None:
            # Failure-aware routing: with central suspected (or its state
            # aged beyond trust) class A work stays home without even
            # consulting the strategy.
            txn.route(Placement.LOCAL)
            self.metrics.record_fallback_routing(txn, fallback)
            self.metrics.record_routing(txn,
                                        reason=f"fallback:{fallback}")
            self._start_process(txn, self._run_local(txn))
            return
        observation = self.observe()
        decision = self.router.decide(txn, observation)
        txn.route(decision)
        self.metrics.record_routing(txn, observation=observation,
                                    reason="strategy")
        if decision is Placement.LOCAL:
            self._start_process(txn, self._run_local(txn))
        else:
            self.shipped_in_flight += 1
            self._ship(txn)

    def _start_process(self, txn: Transaction, generator,
                       suffix: str = "") -> None:
        """Spawn and register a transaction process (crash-interruptible)."""
        process = self.env.process(
            generator, name=f"txn-{txn.txn_id}@{self.name}{suffix}")
        self._local_processes[txn.txn_id] = process

    def _fallback_reason(self) -> str | None:
        """Why class A must stay local, or ``None`` when central is fine.

        Only meaningful under a fault plan (``retry`` is ``None``
        otherwise).  The bootstrap state -- no central message heard yet,
        snapshot time ``-inf`` -- is *not* stale: the paper's optimistic
        start behaviour is preserved.
        """
        if self.retry is None:
            return None
        if self.central_suspected:
            return "central-suspected"
        if self.breaker is not None and not self.breaker.allows():
            return "breaker-open"
        snapshot_time = self.central_snapshot.time
        if snapshot_time > float("-inf") and \
                self.env.now - snapshot_time > self.retry.snapshot_max_age:
            return "snapshot-stale"
        return None

    def observe(self):
        """Build the routing observation (exact local, delayed central)."""
        from ..core.router import RoutingObservation
        central = (self.system.acting_central.snapshot()
                   if self.config.instant_central_state
                   else self.central_snapshot)
        return RoutingObservation(
            now=self.env.now,
            site=self.site_id,
            local_queue_length=self.cpu_queue_length,
            local_n_txns=len(self.active),
            local_locks_held=self.locks.total_locks_held(),
            shipped_in_flight=self.shipped_in_flight,
            central=central,
            central_reachable=self._fallback_reason() is None,
        )

    def _send_central(self, kind: str, payload) -> None:
        """Send one site->central message (reliably under a fault plan).

        After a failover the message goes to the standby -- which *is*
        the central complex now -- over the pre-wired standby channel.
        """
        self.metrics.record_message(to_central=True, kind=kind,
                                    site=self.site_id)
        message = Message(kind=kind, source=self.site_id, payload=payload)
        if self.on_standby and self.standby_channel is not None:
            self.standby_channel.send(message)
        elif self.channel is not None:
            self.channel.send(message)
        else:
            self.to_central.send(message)

    def _ship(self, txn: Transaction) -> None:
        txn.spans.enter(PHASE_COMM, self.env.now)
        self._send_central("txn", TxnShipment(txn))
        if self.channel is not None:
            self._pending_ship[txn.txn_id] = txn
            self._watchdogs[txn.txn_id] = self.env.process(
                self._ship_watchdog(txn),
                name=f"txn-{txn.txn_id}@{self.name}:watchdog")

    def on_shipped_response(self, txn: Transaction) -> None:
        """The central site delivered the response for a shipped class A."""
        self.shipped_in_flight -= 1
        self.router.observe_completion(txn)

    # -- shipment supervision (active only under a fault plan) ---------------

    def _ship_watchdog(self, txn: Transaction):
        """Bound the transaction-level wait for a shipment's response.

        The reliable channel already retries individual messages forever;
        this watchdog is the *bounded* retry budget the protocol puts on
        the whole request/response exchange.  When the budget is
        exhausted the site suspects the central complex and settles the
        transaction's fate with a cancel handshake: because the channel
        is FIFO and exactly-once, the cancel is processed strictly after
        the shipment, so central's answer ("killed" or "completed") is
        definitive and the transaction can never run twice.

        With a deadline armed the watchdog additionally cancels the
        shipment as soon as the deadline passes -- doomed work is pulled
        back before it wastes more central capacity.
        """
        try:
            retry = self.retry
            delay = retry.shipment_timeout
            deadline_hit = False
            for _attempt in range(retry.shipment_attempts):
                sleep = delay
                if txn.deadline is not None:
                    sleep = min(sleep,
                                max(txn.deadline - self.env.now, 0.0))
                yield self.env.timeout(sleep)
                if txn.txn_id not in self._pending_ship:
                    return  # response arrived
                if txn.deadline is not None and \
                        self.env.now >= txn.deadline:
                    # A missed deadline is a failed exchange on the
                    # site->central path; it feeds the breaker just
                    # like an exhausted retry budget.
                    deadline_hit = True
                    if self.breaker is not None:
                        self.breaker.on_timeout()
                    break
                delay *= retry.backoff
            else:
                self.metrics.record_timeout(txn)
                self._suspect_central()
                if self.breaker is not None:
                    self.breaker.on_timeout()
            outcome = yield from self._cancel_shipment(txn)
            if txn.txn_id not in self._pending_ship:
                return  # response (or a failover) raced the cancel
            if outcome != "killed":
                return  # "completed": the response is on the wire
            del self._pending_ship[txn.txn_id]
            if deadline_hit:
                # Past its deadline: the transaction fails outright --
                # re-running it anywhere would still miss it.
                if txn.placement is Placement.SHIPPED:
                    self.shipped_in_flight -= 1
                self.metrics.record_deadline_cancel(txn)
                self.metrics.record_failure(txn, cause="deadline")
                return
            if txn.txn_class is TransactionClass.A:
                # Fail over: re-run the class A transaction at home.
                self.shipped_in_flight -= 1
                txn.route(Placement.LOCAL)
                self.metrics.record_failover(txn)
                self._start_process(txn, self._run_local(txn),
                                    suffix=":failover")
            else:
                # Class B can only run centrally; the transaction fails.
                self.metrics.record_failure(txn,
                                            cause="shipment-cancelled")
        except Interrupt:
            return  # site crash: the shipment was settled by on_crash()
        finally:
            self._watchdogs.pop(txn.txn_id, None)

    def _cancel_shipment(self, txn: Transaction):
        """ShipmentCancel round trip; returns central's verdict."""
        done = Event(self.env)
        self._pending_cancels[txn.txn_id] = done
        self._send_central("cancel",
                           ShipmentCancel(txn_id=txn.txn_id,
                                          site=self.site_id))
        ack: CancelAck = yield done
        return ack.outcome

    def _suspect_central(self) -> None:
        """Mark central suspect and age out its (now stale) snapshot."""
        if self.central_suspected:
            return
        self.central_suspected = True
        self.central_snapshot = CentralSnapshot.empty()

    def _complete_shipped(self, response: TxnResponse) -> None:
        """A TxnResponse closed out a shipped/central transaction."""
        txn = response.txn
        if self._pending_ship.pop(txn.txn_id, None) is None:
            return  # already settled by the cancel handshake
        if self.breaker is not None:
            self.breaker.on_success()
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)
        if txn.placement is Placement.SHIPPED:
            self.on_shipped_response(txn)

    def _handle_ship_reject(self, reject: ShipmentReject) -> None:
        """Central admission control refused the shipment outright."""
        txn = self._pending_ship.pop(reject.txn_id, None)
        if txn is None:
            return
        if txn.txn_class is TransactionClass.A:
            self.shipped_in_flight -= 1
            txn.route(Placement.LOCAL)
            self.metrics.record_failover(txn)
            self._start_process(txn, self._run_local(txn),
                                suffix=":overload")
        else:
            self.metrics.record_failure(txn, cause="central-overload")

    # -- local class A execution ----------------------------------------------

    def _run_local(self, txn: Transaction):
        config = self.config
        self.active[txn.txn_id] = txn
        try:
            while True:
                txn.begin_run(self.env.now)
                first_run = txn.run_count == 1
                if first_run:
                    yield from self.io_wait(config.io_initial, txn)
                yield from self.cpu_burst(config.instr_txn_overhead, txn)
                try:
                    yield from self._execute_calls(txn, first_run)
                except DeadlockError:
                    self._abort_deadlock(txn)
                    continue
                # Commit time: first check the abort mark set by committed
                # shipped/central transactions (Section 2).
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                yield from self.cpu_burst(config.instr_commit, txn)
                # Re-check after commit processing: an authentication may
                # have evicted us while we held the CPU for the commit
                # burst; the check and the release must be atomic with
                # respect to authentication handling.
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                committed = yield from self._commit_phase(txn)
                if committed:
                    return
        except Interrupt:
            self._lose_to_crash(txn)
        finally:
            self.active.pop(txn.txn_id, None)
            self._local_processes.pop(txn.txn_id, None)

    def _lose_to_crash(self, txn: Transaction) -> None:
        """The site crashed under this running transaction."""
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        self.txns_lost_in_crash += 1
        self.metrics.record_lost_in_crash(txn)

    def _execute_calls(self, txn: Transaction, first_run: bool):
        """The ten database calls: lock, CPU burst, data I/O."""
        config = self.config
        for reference in txn.references:
            if not self.locks.is_held_by(reference.entity, txn.txn_id):
                # Raises DeadlockError on a cycle.
                yield from self.lock_wait(txn, reference)
            yield from self.cpu_burst(config.instr_per_db_call, txn)
            if first_run:
                yield from self.io_wait(config.io_per_db_call, txn)

    def _abort_deadlock(self, txn: Transaction) -> None:
        """Deadlock victim: release *all* locks (Section 4.1) and re-run."""
        txn.record_abort(deadlock=True)
        self.metrics.record_abort(txn, "deadlock")
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()

    def _abort_invalidated(self, txn: Transaction) -> None:
        """Aborted by a committed central/shipped transaction."""
        txn.record_abort()
        self.metrics.record_abort(txn, "local-invalidated")
        if not self.config.keep_locks_on_abort:
            self.locks.release_all(txn.txn_id)
            txn.locked_entities.clear()
        # Under the paper's modelling assumption surviving locks are kept;
        # entities taken by the authenticating transaction were already
        # removed from ``locked_entities`` during eviction.

    def _commit_phase(self, txn: Transaction):
        """Commit-protocol hook: finish a transaction that passed its
        abort checks.  Returns ``True`` when the transaction's run is
        over (committed, or its completion delegated elsewhere) and
        ``False`` to re-execute it (protocols whose commit round can be
        refused).

        The default is the optimistic protocol's synchronous local
        commit.  This generator never yields, so ``yield from`` runs it
        as a plain call -- the extraction changes nothing about the
        event stream, which the golden-trace gate pins byte-for-byte.
        """
        self._commit(txn)
        return True
        yield  # pragma: no cover - unreachable; makes this a generator

    def _commit(self, txn: Transaction) -> None:
        """Release locks, start asynchronous propagation, complete."""
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        updates = txn.update_entities
        if updates:
            self.data.apply_updates(updates)
            for entity in updates:
                self.locks.increment_coherence(entity)
            self._queue_update(updates)
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)
        self.router.observe_completion(txn)

    def _queue_update(self, updates: tuple[int, ...]) -> None:
        """Send (or batch) the asynchronous update propagation message."""
        self._update_buffer.append(updates)
        if len(self._update_buffer) >= self.config.update_batching:
            self._flush_updates()

    def _flush_updates(self) -> None:
        if not self._update_buffer:
            return
        batch = tuple(self._update_buffer)
        self._update_buffer.clear()
        self._update_seq += 1
        seq = self._update_seq
        self._unacked_updates[seq] = batch
        self._send_central("update",
                           UpdatePropagation(self.site_id, batch, seq=seq))

    def _flush_loop(self):
        """Periodic flush so partial batches are never stranded."""
        interval = self.config.update_flush_interval
        while True:
            yield self.env.timeout(interval)
            self._flush_updates()

    # -- fully distributed class B execution (remote-call mode) -----------------

    def _split_references(self, txn: Transaction) -> tuple[list, list]:
        """Home-partition references first, remote references second.

        The two-phase ordering (all local locks before any remote lock)
        prevents cross-site deadlock: a transaction holding remote locks
        never waits for a local one, so every wait cycle is confined to
        a single lock table, where the per-site detectors see it.
        """
        low, high = self.system.partition.site_range(self.site_id)
        local_refs = [ref for ref in txn.references
                      if low <= ref.entity < high]
        remote_refs = [ref for ref in txn.references
                       if not low <= ref.entity < high]
        return local_refs, remote_refs

    def _run_distributed(self, txn: Transaction):
        """Run a class B transaction here, with remote calls for
        non-local data (the introduction's fully distributed mode)."""
        config = self.config
        local_refs, remote_refs = self._split_references(txn)
        remote_locked: set[int] = set()
        self.active[txn.txn_id] = txn
        try:
            while True:
                txn.begin_run(self.env.now)
                first_run = txn.run_count == 1
                if first_run:
                    yield from self.io_wait(config.io_initial, txn)
                yield from self.cpu_burst(config.instr_txn_overhead, txn)
                try:
                    # Phase 1: home-partition data under local locking.
                    for reference in local_refs:
                        if not self.locks.is_held_by(reference.entity,
                                                     txn.txn_id):
                            yield from self.lock_wait(txn, reference)
                        yield from self.cpu_burst(
                            config.instr_per_db_call, txn)
                        if first_run:
                            yield from self.io_wait(
                                config.io_per_db_call, txn)
                    # Phase 2: remote data from the central server.
                    for reference in remote_refs:
                        if reference.entity not in remote_locked:
                            granted = yield from self._remote_call(
                                txn, reference)
                            if not granted:
                                raise DeadlockError(txn.txn_id,
                                                    reference.entity)
                            remote_locked.add(reference.entity)
                        yield from self.cpu_burst(
                            config.instr_per_db_call, txn)
                except DeadlockError:
                    txn.record_abort(deadlock=True)
                    self.metrics.record_abort(txn, "deadlock")
                    self.locks.release_all(txn.txn_id)
                    txn.locked_entities.clear()
                    if remote_locked:
                        self._send_remote(RemoteRelease(
                            txn_id=txn.txn_id, site=self.site_id),
                            kind="remote-release")
                        remote_locked.clear()
                    continue
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                yield from self.cpu_burst(config.instr_commit, txn)
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                self._commit_distributed(txn, remote_locked)
                return
        except Interrupt:
            # Remote locks of the dead transaction are cleaned up by the
            # central complex during the rejoin handshake.
            self._lose_to_crash(txn)
        finally:
            self.active.pop(txn.txn_id, None)
            self._local_processes.pop(txn.txn_id, None)

    def _remote_call(self, txn: Transaction, reference: Reference):
        """Synchronous lock-and-fetch round trip to the data server."""
        self._remote_call_ids += 1
        call_id = self._remote_call_ids
        done = Event(self.env)
        self._pending_remote_calls[call_id] = done
        self._send_remote(RemoteLockRequest(
            call_id=call_id, txn_id=txn.txn_id, site=self.site_id,
            entity=reference.entity, mode=reference.mode),
            kind="remote-lock")
        # The round trip (both legs plus central-side queueing/locking)
        # is communication from this transaction's point of view.
        txn.spans.enter(PHASE_COMM, self.env.now)
        reply = yield done
        txn.spans.exit(self.env.now)
        return reply.granted

    def _send_remote(self, payload, kind: str) -> None:
        self._send_central(kind, payload)

    def _commit_distributed(self, txn: Transaction,
                            remote_locked: set[int]) -> None:
        """Commit: local part like a class A commit, remote part via the
        data server (which forwards updates to the owning masters)."""
        low, high = self.system.partition.site_range(self.site_id)
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        home_updates = tuple(entity for entity in txn.update_entities
                             if low <= entity < high)
        remote_updates = tuple(entity for entity in txn.update_entities
                               if not low <= entity < high)
        if home_updates:
            self.data.apply_updates(home_updates)
            for entity in home_updates:
                self.locks.increment_coherence(entity)
            self._queue_update(home_updates)
        if remote_locked or remote_updates:
            self._send_remote(RemoteCommit(
                txn_id=txn.txn_id, site=self.site_id,
                updates=remote_updates), kind="remote-commit")
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)

    # -- master-site protocol ------------------------------------------------------

    def _dispatch(self):
        """Handle central -> site messages in arrival order.

        After a failover the deposed primary is *fenced*: its frames are
        still pumped through the channel (the ack stops its
        retransmission timers) but never processed.
        """
        while True:
            message = yield self.from_central.mailbox.get()
            if self.crashed:
                # A dead site neither acks nor processes anything.
                continue
            if self.channel is not None:
                if not self.on_standby:
                    # Any frame from the *active* central -- app message
                    # or bare ack -- proves it is reachable again.
                    self.central_suspected = False
                for delivered in self.channel.pump(message):
                    if self.on_standby:
                        self.fenced_messages += 1
                        self.metrics.record_fenced(self.site_id)
                        continue
                    self._on_central_message(delivered)
            else:
                self._on_central_message(message)

    def _dispatch_standby(self):
        """Handle standby -> site messages.

        Before the takeover the standby sends nothing but the
        :class:`FailoverNotice` itself; afterwards this is the central
        message stream.
        """
        while True:
            message = yield self.from_standby.mailbox.get()
            if self.crashed:
                continue
            for delivered in self.standby_channel.pump(message):
                payload = delivered.payload
                if isinstance(payload, FailoverNotice):
                    self._on_failover(payload)
                elif self.on_standby:
                    self.central_suspected = False
                    self._on_central_message(delivered)
                else:
                    self.fenced_messages += 1
                    self.metrics.record_fenced(self.site_id)

    def _on_central_message(self, message: Message) -> None:
        payload = message.payload
        snapshot = getattr(payload, "snapshot", None)
        # Section 4.2: by default the sites learn central state only
        # from authentication-phase traffic, not from the (far more
        # frequent) asynchronous-update acknowledgements.
        usable = (not isinstance(payload, UpdateAck) or
                  self.config.snapshot_on_update_acks)
        if snapshot is not None and usable and \
                snapshot.time > self.central_snapshot.time:
            self.central_snapshot = snapshot
        if isinstance(payload, AuthRequest):
            # Authentication checks consume local CPU; handle in a
            # child process so unrelated messages are not blocked.
            self.env.process(self._handle_auth(payload),
                             name=f"{self.name}:auth")
        elif isinstance(payload, CommitOrder):
            self._handle_commit_order(payload)
        elif isinstance(payload, ReleaseOrder):
            self._handle_release_order(payload)
        elif isinstance(payload, UpdateAck):
            self._handle_update_ack(payload)
        elif isinstance(payload, TxnResponse):
            self._complete_shipped(payload)
        elif isinstance(payload, CancelAck):
            pending = self._pending_cancels.pop(payload.txn_id, None)
            if pending is not None:
                pending.succeed(payload)
        elif isinstance(payload, ShipmentReject):
            self._handle_ship_reject(payload)
        elif isinstance(payload, RejoinSnapshot):
            self.env.process(self._install_rejoin_snapshot(payload),
                             name=f"{self.name}:rejoin-install")
        elif isinstance(payload, RemoteLockReply):
            pending = self._pending_remote_calls.pop(payload.call_id, None)
            if pending is not None:
                pending.succeed(payload)
        elif isinstance(payload, RemoteInvalidate):
            victim = self.active.get(payload.txn_id)
            if victim is not None and not victim.marked_for_abort:
                victim.mark_for_abort("remote-lock-invalidated")
        else:
            raise TypeError(f"unexpected payload {payload!r}")

    def _handle_auth(self, request: AuthRequest):
        """Authentication phase at the master site (Section 2)."""
        yield from self.cpu_burst(self.config.instr_auth_master)
        entities = [entity for entity, _mode in request.references]
        aborted: list[int] = []
        expired = (request.deadline is not None and
                   self.env.now > request.deadline)
        if expired:
            # Deadline propagation: refuse authentication for doomed
            # work so it stops consuming master locks.
            granted = False
            self.metrics.record_auth_deadline_refusal(self.site_id)
        elif any(self.locks.coherence_count(entity)
                 for entity in entities):
            granted = False  # in-flight asynchronous updates -> NAK
        else:
            granted = True
            for entity, mode in request.references:
                evicted = self.locks.force_grant(request.txn_id, entity,
                                                 mode)
                for victim_id in evicted:
                    victim = self.active.get(victim_id)
                    if victim is not None:
                        victim.mark_for_abort("invalidated-by-authentication")
                        if entity in victim.locked_entities:
                            victim.locked_entities.remove(entity)
                        aborted.append(victim_id)
        self._send_central("auth-reply", AuthReply(
            auth_id=request.auth_id, txn_id=request.txn_id,
            site=self.site_id, granted=granted,
            aborted_local_txns=tuple(aborted)))

    def _handle_commit_order(self, order: CommitOrder) -> None:
        """Apply the central transaction's updates, release its locks."""
        self.data.apply_updates(order.updates)
        self.locks.release_all(order.txn_id)

    def _handle_release_order(self, order: ReleaseOrder) -> None:
        """Failed authentication elsewhere: drop any granted locks."""
        self.locks.release_all(order.txn_id)

    def _handle_update_ack(self, ack: UpdateAck) -> None:
        """Central applied our updates: decrement the coherence counts.

        Only batches still accounted as outstanding count -- a stale or
        duplicated ack (possible across crash recovery or failover
        re-sends) must not drive a coherence count below zero.
        """
        if self._unacked_updates.pop(ack.seq, None) is None:
            return
        for group in ack.updates:
            for entity in group:
                self.locks.decrement_coherence(entity)

    # -- failover (hot standby took over) ------------------------------------

    def _on_failover(self, notice: FailoverNotice) -> None:
        """The standby is the central complex now: re-point and settle.

        Everything that was in flight against the dead primary is
        resolved conservatively: class A shipments re-run locally,
        class B shipments re-ship to the standby, cancel handshakes are
        answered "killed" on the primary's behalf, the primary's phantom
        master locks are released (it can no longer commit anything),
        and unacknowledged update batches are re-sent -- the standby
        deduplicates them against the shipped log by ``(site, seq)``.
        """
        if self.on_standby:
            return
        self.on_standby = True
        self.central_suspected = False
        if notice.snapshot.time > self.central_snapshot.time:
            self.central_snapshot = notice.snapshot
        self.metrics.record_repoint(self.site_id)
        if self.channel is not None:
            # Stop retransmitting to the dead primary.
            self.channel.abandon()
        self._release_phantom_locks()
        # Resolve in-flight cancel handshakes: the primary will never
        # answer, and it can no longer commit, so "killed" is safe.
        for txn_id in sorted(self._pending_cancels):
            done = self._pending_cancels.pop(txn_id)
            done.succeed(CancelAck(txn_id=txn_id, outcome="killed",
                                   snapshot=notice.snapshot))
        # Settle every in-flight shipment.
        for txn_id in sorted(self._pending_ship):
            txn = self._pending_ship.pop(txn_id)
            self._redispatch_after_failover(txn)
        # Re-send unacknowledged update batches to the standby.
        for seq in sorted(self._unacked_updates):
            self._send_central("update", UpdatePropagation(
                self.site_id, self._unacked_updates[seq], seq=seq))
        # Distributed-mode remote calls: refuse, the caller aborts and
        # retries against the standby.
        for call_id in sorted(self._pending_remote_calls):
            done = self._pending_remote_calls.pop(call_id)
            done.succeed(RemoteLockReply(call_id=call_id, txn_id=0,
                                         granted=False,
                                         snapshot=notice.snapshot))

    def _release_phantom_locks(self) -> None:
        """Release master locks held by the dead primary's transactions.

        Any holder that is not a transaction running *at this site* was
        granted during the authentication of a central/shipped
        transaction at the deposed primary; the primary can never send
        its commit or release order now, so the grant would pin the
        entities forever.  Conservative abort-and-retry: drop them.
        """
        holders: set[int] = set()
        for lock in self.locks._locks.values():
            holders.update(lock.holders)
        for txn_id in sorted(holders):
            if txn_id not in self.active:
                self.locks.release_all(txn_id)

    def _redispatch_after_failover(self, txn: Transaction) -> None:
        if txn.txn_class is TransactionClass.A:
            self.shipped_in_flight -= 1
            txn.route(Placement.LOCAL)
            self.metrics.record_failover(txn)
            self._start_process(txn, self._run_local(txn),
                                suffix=":failover")
        else:
            # Class B can only run centrally: re-ship to the standby.
            # This is the availability win over degrade-only operation,
            # where the same transaction would simply fail.
            self.metrics.record_reship(txn)
            self._ship(txn)

    # -- site crash and rejoin ------------------------------------------------

    def on_crash(self) -> None:
        """A SITE_CRASH episode begins (rejoin mode): lose volatile state.

        Running transactions are interrupted (their locks die with the
        lock table), shipped work is written off, the replica counters
        and channel bookkeeping are wiped.  Durable state is exactly
        what the rejoin snapshot can rebuild: nothing.
        """
        self.crashed = True
        for process in list(self._local_processes.values()):
            if process.is_alive:
                process.interrupt("site-crash")
        for process in list(self._watchdogs.values()):
            if process.is_alive:
                process.interrupt("site-crash")
        for txn_id in sorted(self._pending_ship):
            txn = self._pending_ship.pop(txn_id)
            if txn.placement is Placement.SHIPPED:
                self.shipped_in_flight -= 1
            self.txns_lost_in_crash += 1
            self.metrics.record_lost_in_crash(txn)
        self._pending_cancels.clear()
        self._pending_remote_calls.clear()
        self._update_buffer.clear()
        self._unacked_updates.clear()
        # Fresh volatile state: lock table (with its coherence counts)
        # and replica counters are gone.
        self.locks = LockManager(self.env, name=self.name)
        self.data = ReplicaStore(name=f"site-{self.site_id}")
        self.central_snapshot = CentralSnapshot.empty()
        self.central_suspected = False
        if self.breaker is not None:
            self.breaker.reset()

    def begin_rejoin(self) -> None:
        """The crash episode ended: run the catch-up protocol.

        Channel incarnations are reset on both ends first, so every
        frame from before (or during) the crash -- including the
        central's retransmissions of messages the dead site never
        processed -- is recognisably stale and dropped.
        """
        self.crashed = False
        self.recovering = True
        self._rejoin_started = self.env.now
        self.system.reset_site_channels(self.site_id)
        standby = getattr(self.system, "standby", None)
        if standby is not None and standby.is_active and \
                not self.on_standby:
            # A failover happened while this site was dead; the notice
            # was lost with everything else.  Re-point before rejoining.
            self._on_failover(FailoverNotice(snapshot=standby.snapshot()))
        self._send_central("rejoin", RejoinRequest(site=self.site_id))

    def _install_rejoin_snapshot(self, snap: RejoinSnapshot):
        """Catch-up state arrived: install it and open for business."""
        recovery = self.recovery
        if recovery is not None and recovery.instr_snapshot_apply:
            yield from self.cpu_burst(recovery.instr_snapshot_apply)
        store = ReplicaStore(name=f"site-{self.site_id}")
        store.restore(snap.counts)
        self.data = store
        self.recovering = False
        self.metrics.record_recovery("rejoin", self.site_id,
                                     self._rejoin_started, self.env.now)
        queued = self._admission_queue
        self._admission_queue = []
        for txn in queued:
            self.submit(txn)
