"""System configuration for the hybrid distributed-centralized model.

All parameters of the paper's simulation study (Section 3.1 / 4.1) are
collected in :class:`SystemConfig`.  Values stated in the paper:

* 10 distributed sites, central complex of 15 MIPS, 1 MIPS per local
  site, 0.2 s link delay (0.5 s in the sensitivity study);
* Poisson arrivals, identical rate per site, ``p_local = 0.75``;
* 10 database calls per transaction at 30 K instructions per call, plus
  150 K instructions of message processing and transaction initiation;
* global lock space of 32 K entities; class A references uniform over the
  home tenth, class B uniform over the whole space;
* the collision constant ``C = N_l / lockspace``;
* CPU released on lock contention, on every I/O, and for communication;
* deadlock victims release all locks; transactions aborted by cross-site
  collisions re-run finding all data in memory.

The paper does not print numeric values for I/O times or the commit /
authentication / update-apply overhead pathlengths (they come from the
internal [YU87] trace).  The defaults below are chosen once, recorded in
EXPERIMENTS.md, and produce the paper's qualitative behaviour: local
saturation near 20 tps without load sharing, static load sharing carrying
the system to about 30 tps, and dynamic schemes beyond that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from ..db.workload import WorkloadParams

__all__ = ["SystemConfig", "PAPER_BASE", "paper_config"]

#: Instructions are expressed in raw counts; MIPS ratings convert them to
#: seconds of CPU service (e.g. 30 K instructions on a 1 MIPS site = 30 ms).
MILLION = 1_000_000.0


@dataclass(frozen=True)
class SystemConfig:
    """Full parameterisation of one simulated hybrid system."""

    workload: WorkloadParams = field(default_factory=WorkloadParams)

    # -- hardware ---------------------------------------------------------
    central_mips: float = 15.0
    local_mips: float = 1.0
    comm_delay: float = 0.2            # one-way site <-> central (seconds)

    # -- pathlengths (instructions), Section 3.1 --------------------------
    instr_per_db_call: int = 30_000    # 10 calls per transaction
    instr_txn_overhead: int = 150_000  # message processing + initiation
    # Overheads not quantified in the paper text (see module docstring):
    instr_commit: int = 30_000         # commit processing at the run site
    instr_update_apply: int = 60_000   # apply one async update msg (central)
    instr_auth_master: int = 30_000    # authentication check at a master
    instr_auth_central: int = 30_000   # authentication handling at central

    # -- I/O model ---------------------------------------------------------
    io_initial: float = 0.025          # transaction set-up I/O (no locks)
    io_per_db_call: float = 0.025      # data I/O per call, first run only

    # -- protocol options ---------------------------------------------------
    keep_locks_on_abort: bool = True   # Section 3.1 modelling assumption
    instant_central_state: bool = False  # ablation: undelayed observations
    #: Paper Section 4.2: central queue-length information at the sites
    #: "is only updated during authentication of a centrally running
    #: transaction".  Setting this True also refreshes it from the
    #: acknowledgements of asynchronous updates (an ablation).
    snapshot_on_update_acks: bool = False
    update_batching: int = 1           # async updates per message (>=1)
    #: With batching > 1, a partially filled batch is flushed after this
    #: many seconds so updates are never stranded (and coherence counts
    #: always drain).
    update_flush_interval: float = 0.25
    #: Where class B transactions execute: "central" (the hybrid
    #: architecture of the paper) or "remote-call" (the fully distributed
    #: alternative of the introduction: run at the home site, fetch each
    #: non-local datum from the central data server with a synchronous
    #: remote call).  Section 3 notes this possibility without analysing
    #: it; this implementation makes the comparison runnable.
    class_b_mode: str = "central"

    # -- commit protocol -----------------------------------------------------
    #: The site<->central commit protocol: a name registered in
    #: :mod:`repro.hybrid.protocols` (``optimistic`` -- the paper's
    #: asynchronous-update / optimistic-authentication interaction,
    #: ``2pc`` -- primary-copy two-phase commit, ``epoch`` --
    #: deterministic epoch-batched group commit).
    protocol: str = "optimistic"
    #: Epoch length in seconds for the epoch-batched protocol (update
    #: batches ship and central commits resolve once per epoch).
    #: Ignored by the other protocols.
    epoch_interval: float = 0.25

    # -- measurement ---------------------------------------------------------
    warmup_time: float = 40.0
    measure_time: float = 160.0
    seed: int = 20_260_705

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject physically meaningless parameterisations.

        Raises :class:`ValueError` on non-positive MIPS ratings, negative
        communication delay, ``update_batching < 1``,
        ``update_flush_interval <= 0`` and the remaining sanity bounds
        (mirroring ``RunSettings``'s fail-fast validation).  Called from
        ``__post_init__`` so no invalid instance can exist, but callable
        directly on configurations rebuilt via ``dataclasses.replace``
        pipelines or deserialisation.
        """
        if self.central_mips <= 0 or self.local_mips <= 0:
            raise ValueError(
                f"MIPS ratings must be positive (central "
                f"{self.central_mips}, local {self.local_mips})")
        if self.comm_delay < 0:
            raise ValueError(
                f"negative communications delay {self.comm_delay}")
        for name in ("instr_per_db_call", "instr_txn_overhead",
                     "instr_commit", "instr_update_apply",
                     "instr_auth_master", "instr_auth_central"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.io_initial < 0 or self.io_per_db_call < 0:
            raise ValueError("negative I/O time")
        if self.update_batching < 1:
            raise ValueError(
                f"update_batching must be >= 1, got {self.update_batching}")
        if self.update_flush_interval <= 0:
            raise ValueError(
                f"update_flush_interval must be positive, got "
                f"{self.update_flush_interval}")
        if self.class_b_mode not in ("central", "remote-call"):
            raise ValueError(
                f"class_b_mode must be 'central' or 'remote-call', got "
                f"{self.class_b_mode!r}")
        # Imported at call time: the registry is dependency-free, but
        # the implementation modules it lazily loads import this module.
        from .protocols import protocol_names
        if self.protocol not in protocol_names():
            raise ValueError(
                f"unknown commit protocol {self.protocol!r}; registered "
                f"protocols: {', '.join(protocol_names())}")
        if self.epoch_interval <= 0:
            raise ValueError(
                f"epoch_interval must be positive, got "
                f"{self.epoch_interval}")
        if self.warmup_time < 0 or self.measure_time <= 0:
            raise ValueError("invalid measurement window")

    # -- derived quantities used by both simulator and analytic model -------

    @property
    def n_sites(self) -> int:
        return self.workload.n_sites

    @property
    def locks_per_txn(self) -> int:
        return self.workload.locks_per_txn

    @property
    def instr_per_txn(self) -> int:
        """Total first-run instructions excluding commit processing."""
        return (self.instr_txn_overhead +
                self.locks_per_txn * self.instr_per_db_call)

    def cpu_seconds_local(self, instructions: float) -> float:
        return instructions / (self.local_mips * MILLION)

    def cpu_seconds_central(self, instructions: float) -> float:
        return instructions / (self.central_mips * MILLION)

    @property
    def local_service_time(self) -> float:
        """First-run CPU demand of one transaction at a local site."""
        return self.cpu_seconds_local(self.instr_per_txn + self.instr_commit)

    @property
    def central_service_time(self) -> float:
        """First-run CPU demand of one transaction at the central site."""
        return self.cpu_seconds_central(self.instr_per_txn +
                                        self.instr_commit +
                                        self.instr_auth_central)

    @property
    def total_io_time(self) -> float:
        """First-run I/O wait (set-up plus one I/O per database call)."""
        return self.io_initial + self.locks_per_txn * self.io_per_db_call

    @property
    def collision_constant(self) -> float:
        """The paper's C = N_l / lockspace (Section 4.1)."""
        return self.locks_per_txn / self.workload.lockspace

    @property
    def run_until(self) -> float:
        return self.warmup_time + self.measure_time

    # -- convenience -----------------------------------------------------------

    def with_rate(self, arrival_rate_per_site: float) -> "SystemConfig":
        """Copy with a different per-site arrival rate."""
        return replace(self, workload=replace(
            self.workload, arrival_rate_per_site=arrival_rate_per_site))

    def with_total_rate(self, total_rate: float) -> "SystemConfig":
        """Copy with a total (all-sites) arrival rate."""
        return self.with_rate(total_rate / self.workload.n_sites)

    def with_options(self, **changes: Any) -> "SystemConfig":
        """Copy with arbitrary field overrides."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line summary used by the experiment reports."""
        return (f"{self.n_sites} sites x {self.local_mips} MIPS + central "
                f"{self.central_mips} MIPS, delay {self.comm_delay}s, "
                f"lambda {self.workload.arrival_rate_per_site:.3g}/site "
                f"({self.workload.total_arrival_rate:.3g} total), "
                f"p_local {self.workload.p_local}")


#: The paper's base configuration (Section 4.1).
PAPER_BASE = SystemConfig()


def paper_config(total_rate: float = 10.0, *, comm_delay: float = 0.2,
                 seed: int | None = None, **overrides: Any) -> SystemConfig:
    """The paper's configuration at a given *total* transaction rate.

    ``total_rate`` is the system-wide arrival rate in transactions per
    second (the x-axis of every figure); it is split evenly over the 10
    sites.  ``comm_delay`` selects the 0.2 s base case or the 0.5 s
    sensitivity case; further keyword overrides are applied verbatim.
    """
    if not math.isfinite(total_rate) or total_rate <= 0:
        raise ValueError(f"total_rate must be positive, got {total_rate}")
    config = PAPER_BASE.with_total_rate(total_rate)
    config = config.with_options(comm_delay=comm_delay)
    if seed is not None:
        overrides["seed"] = seed
    if overrides:
        config = config.with_options(**overrides)
    return config
