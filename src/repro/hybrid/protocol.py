"""Protocol message payloads exchanged between local sites and central.

Message flows (Section 2 of the paper):

* ``TxnShipment``       site -> central : a shipped class A or class B
  transaction's input message.
* ``UpdatePropagation`` site -> central : asynchronous batch of committed
  local updates (locks released locally, coherence counts incremented).
* ``UpdateAck``         central -> site : the central site has applied the
  batch; the site decrements the coherence counts.
* ``AuthRequest``       central -> site : authentication phase -- the lock
  list (and updated blocks) of a committing central/shipped transaction.
* ``AuthReply``         site -> central : positive (locks granted at the
  master, conflicting local transactions marked for abort) or negative
  (in-flight coherence updates).
* ``CommitOrder``       central -> site : second phase -- apply updates and
  release the authenticating transaction's locks at the master.
* ``ReleaseOrder``      central -> site : authentication failed somewhere;
  release any locks granted to the transaction at this master.

Every central -> site payload carries a :class:`CentralSnapshot`, which is
how the dynamic routing strategies learn (delayed) central state: the
paper notes the central queue length "is only updated during
authentication of a centrally running transaction".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.locks import LockMode
from ..db.transaction import Transaction

__all__ = [
    "CentralSnapshot",
    "TxnShipment",
    "UpdatePropagation",
    "UpdateAck",
    "AuthRequest",
    "AuthReply",
    "CommitOrder",
    "ReleaseOrder",
    "TxnResponse",
    "ShipmentCancel",
    "CancelAck",
    "ShipmentReject",
    "Heartbeat",
    "LogRecord",
    "TakeoverNotice",
    "FailoverNotice",
    "RejoinRequest",
    "RejoinSnapshot",
    "RemoteLockRequest",
    "RemoteLockReply",
    "RemoteCommit",
    "RemoteRelease",
    "RemoteInvalidate",
    "TxnPrepare",
    "TxnVote",
    "TxnDecision",
    "EpochCommitOrder",
]


@dataclass(frozen=True)
class CentralSnapshot:
    """Central-site state as sampled when a message was sent.

    ``queue_length`` counts CPU-queued plus running jobs (the paper's
    ``q_c``); ``n_txns`` counts every transaction at the central site
    including those in I/O, commit processing and contention wait (the
    paper's ``n_c``); ``locks_held`` is the central lock-table population.
    """

    time: float
    queue_length: int
    n_txns: int
    locks_held: int

    @staticmethod
    def empty() -> "CentralSnapshot":
        """Initial optimistic snapshot before any message has arrived."""
        return CentralSnapshot(time=float("-inf"), queue_length=0,
                               n_txns=0, locks_held=0)


@dataclass
class TxnShipment:
    """Input message carrying a transaction to the central site."""

    txn: Transaction


@dataclass
class UpdatePropagation:
    """Asynchronous update batch from a local commit (or several).

    ``seq`` is a per-site monotone batch number (starting at 1).  The
    matching :class:`UpdateAck` echoes it, so a site only decrements
    coherence counts for batches it still accounts as outstanding --
    a stale or duplicated ack (possible across crash recovery or a
    failover, where batches are re-sent to the standby) is then inert
    instead of driving a coherence count below zero.
    """

    source_site: int
    #: Exclusive-mode entities per committed transaction in the batch.
    updates: tuple[tuple[int, ...], ...]
    seq: int = 0

    @property
    def entities(self) -> tuple[int, ...]:
        return tuple(entity for group in self.updates for entity in group)


@dataclass
class UpdateAck:
    """Acknowledgement of one :class:`UpdatePropagation` batch."""

    updates: tuple[tuple[int, ...], ...]
    snapshot: CentralSnapshot
    seq: int = 0

    @property
    def entities(self) -> tuple[int, ...]:
        return tuple(entity for group in self.updates for entity in group)


@dataclass
class AuthRequest:
    """Authentication-phase lock list for one committing transaction.

    ``deadline`` propagates the transaction's end-to-end deadline (when
    overload control arms one): a master site refuses authentication for
    a transaction that has already missed it, so doomed work stops
    consuming master locks.
    """

    auth_id: int
    txn_id: int
    references: tuple[tuple[int, LockMode], ...]
    snapshot: CentralSnapshot
    deadline: float | None = None


@dataclass
class AuthReply:
    """Master-site answer to an :class:`AuthRequest`."""

    auth_id: int
    txn_id: int
    site: int
    granted: bool                       # False = negative acknowledgement
    aborted_local_txns: tuple[int, ...] = field(default=())


@dataclass
class CommitOrder:
    """Commit message: apply updates, release the transaction's locks.

    ``updates`` lists the exclusive-mode entities mastered at the
    receiving site whose replica must be updated.
    """

    txn_id: int
    snapshot: CentralSnapshot
    updates: tuple[int, ...] = ()


@dataclass
class ReleaseOrder:
    """Clean-up after a failed authentication round."""

    txn_id: int
    snapshot: CentralSnapshot


# ---------------------------------------------------------------------------
# Fault-tolerant operation (active only when a FaultPlan is in force).
# Under reliable channels the completion of a shipped/central transaction
# travels as an explicit TxnResponse message (so it survives lossy links),
# and a home site whose retry budget for a shipment is exhausted settles
# the transaction's fate with a ShipmentCancel/CancelAck handshake: the
# channel's FIFO guarantee means the cancel is processed strictly after
# the shipment, so the central site can answer definitively.
# ---------------------------------------------------------------------------


@dataclass
class TxnResponse:
    """Central -> site: the output message of a shipped/central txn."""

    txn: Transaction
    snapshot: CentralSnapshot


@dataclass
class ShipmentCancel:
    """Site -> central: give up on a shipped transaction's response."""

    txn_id: int
    site: int


@dataclass
class CancelAck:
    """Central -> site: the shipment's definitive fate.

    ``outcome`` is ``"killed"`` (the transaction was stopped before
    committing -- the home site may safely re-run it locally) or
    ``"completed"`` (it committed; the response precedes this ack on the
    same FIFO channel).
    """

    txn_id: int
    outcome: str
    snapshot: CentralSnapshot


@dataclass
class ShipmentReject:
    """Central -> site: admission control refused the shipment.

    The central complex's bounded admission queue was full; the
    transaction never started there.  The home site re-routes class A
    work locally and fails class B work fast (cause
    ``"central-overload"``) instead of waiting out the retry budget.
    """

    txn_id: int
    snapshot: CentralSnapshot


# ---------------------------------------------------------------------------
# Hot-standby failover and site rejoin (active only when the fault plan's
# RecoveryPolicy enables them).  The primary streams its applied updates
# and heartbeats to the standby over a dedicated log channel; the standby
# declares the primary dead when the heartbeat lease expires, replays the
# shipped log and broadcasts FailoverNotice so sites re-point.  A crashed
# site runs the RejoinRequest/RejoinSnapshot catch-up before admitting
# queued arrivals.
# ---------------------------------------------------------------------------


@dataclass
class Heartbeat:
    """Primary -> standby: liveness beacon (sent unreliably).

    Deliberately outside the reliable channel: a retransmitted
    heartbeat would defeat its purpose, which is that *silence* means
    death.
    """

    time: float


@dataclass
class LogRecord:
    """Primary -> standby: one shipped log entry (reliable, in order).

    ``kind`` is ``"update"`` for a site's propagated batch (``site`` /
    ``seq`` identify it for standby-side deduplication against direct
    re-sends after failover) or ``"commit"`` for a central transaction's
    own committed updates (``site`` is ``None``).
    """

    kind: str
    updates: tuple[tuple[int, ...], ...]
    site: int | None = None
    seq: int = 0


@dataclass
class TakeoverNotice:
    """Standby -> primary: you have been deposed.

    Delivered reliably, so it arrives once the partition heals; the
    deposed primary kills its in-flight work and stops transmitting.
    """

    time: float


@dataclass
class FailoverNotice:
    """Standby -> every site: the standby is now the central complex.

    Sites re-point their central routing at the standby, settle
    in-flight shipments (class A re-runs locally, class B re-ships to
    the standby), re-send unacknowledged update batches and fence all
    further traffic from the deposed primary.
    """

    snapshot: CentralSnapshot


@dataclass
class RejoinRequest:
    """Site -> central: a crashed site asks to be caught up."""

    site: int


@dataclass
class RejoinSnapshot:
    """Central -> site: catch-up state for a rejoining site.

    ``counts`` is the central replica's view of the site's mastered
    partition (entity -> update count); installing it replaces whatever
    volatile state the crash destroyed, including updates the site
    itself lost in flight.
    """

    site: int
    counts: dict[int, int]
    snapshot: CentralSnapshot


# ---------------------------------------------------------------------------
# Fully distributed mode (class_b_mode = "remote-call"): a class B
# transaction runs at its home site and fetches each non-local datum from
# the central data server with a synchronous remote call.
# ---------------------------------------------------------------------------


@dataclass
class RemoteLockRequest:
    """Site -> central: lock ``entity`` and return the datum."""

    call_id: int
    txn_id: int
    site: int
    entity: int
    mode: LockMode


@dataclass
class RemoteLockReply:
    """Central -> site: grant (with data) or deadlock refusal."""

    call_id: int
    txn_id: int
    granted: bool
    snapshot: CentralSnapshot


@dataclass
class RemoteCommit:
    """Site -> central: commit a distributed transaction.

    Releases its remote locks and applies its non-local updates at the
    data server, which forwards them to the owning master sites.
    """

    txn_id: int
    site: int
    updates: tuple[int, ...]


@dataclass
class RemoteRelease:
    """Site -> central: abort cleanup, drop the remote locks."""

    txn_id: int
    site: int


@dataclass
class RemoteInvalidate:
    """Central -> site: a remote-held lock was invalidated by an
    asynchronous update; mark the distributed transaction for abort."""

    txn_id: int
    snapshot: CentralSnapshot


# ---------------------------------------------------------------------------
# Primary-copy two-phase commit (protocol "2pc").  Updating local
# transactions replace the asynchronous UpdatePropagation with a
# synchronous prepare/vote round against the central site, which acts as
# the primary-copy coordinator; the decision is the second phase.  The
# site is blocked (holding its locks) between prepare and vote -- the
# protocol's defining cost, including blocking on coordinator failure.
# ---------------------------------------------------------------------------


@dataclass
class TxnPrepare:
    """Site -> central: phase 1 of a local updating commit.

    The site holds its locks and enters the in-doubt state until the
    coordinator's vote arrives.
    """

    txn_id: int
    site: int
    updates: tuple[int, ...]


@dataclass
class TxnVote:
    """Central -> site: the coordinator's vote on a ``TxnPrepare``.

    ``granted`` commits the transaction (the site applies its updates
    and acknowledges with a ``TxnDecision``); a refusal -- the updates
    conflict with another in-doubt transaction -- aborts and re-runs it.
    """

    txn_id: int
    granted: bool
    snapshot: CentralSnapshot


@dataclass
class TxnDecision:
    """Site -> central: phase 2 -- the final outcome of a prepared
    transaction.  On commit the central applies the updates to the
    primary copy and releases the in-doubt entries."""

    txn_id: int
    site: int
    commit: bool
    updates: tuple[int, ...] = ()


# ---------------------------------------------------------------------------
# Deterministic epoch-batched commit (protocol "epoch").  Execution and
# update propagation reuse the optimistic machinery, but batches ship
# once per epoch and the central applies them in deterministic
# (site, seq) order at the epoch boundary; central commits wait for the
# boundary and lose deterministically to that epoch's site batches.
# ---------------------------------------------------------------------------


@dataclass
class EpochCommitOrder:
    """Central -> master: apply an epoch-committed central transaction's
    updates for entities mastered at this site.  Unlike ``CommitOrder``
    there are no master locks to release (the epoch protocol runs no
    authentication round); conflicting active local holders are marked
    for abort instead."""

    txn_id: int
    snapshot: CentralSnapshot
    updates: tuple[int, ...]
