"""Central computing complex: class B / shipped execution, coherency.

The central site

* executes class B and shipped class A transactions against its replica
  of every regional database, under local two-phase locking;
* applies asynchronous update batches from the distributed sites in
  per-site FIFO order, invalidating (marking for abort) any central
  transactions holding locks on the updated entities, and acknowledging
  each batch so the origin site can decrement its coherence counts;
* drives the authentication phase at commit: it sends the lock list
  simultaneously to every involved master site, awaits all replies,
  re-executes on any negative acknowledgement or late invalidation, and
  otherwise distributes commit orders and the response message.

Every message it sends to a site piggybacks a :class:`CentralSnapshot`,
the mechanism by which (delayed) central state reaches the routers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..db.locks import DeadlockError, LockMode
from ..db.replica import ReplicaStore
from ..db.transaction import Placement, Transaction
from ..db.workload import LockSpacePartition
from ..sim.engine import Environment, Event, Interrupt, Process
from ..sim.network import Link, Message, ReliableEndpoint
from ..sim.spans import PHASE_AUTH, PHASE_COMM
from .base import SiteBase
from .protocol import (
    AuthReply,
    AuthRequest,
    CancelAck,
    CentralSnapshot,
    CommitOrder,
    Heartbeat,
    LogRecord,
    RejoinRequest,
    RejoinSnapshot,
    ReleaseOrder,
    RemoteCommit,
    RemoteInvalidate,
    RemoteLockReply,
    RemoteLockRequest,
    RemoteRelease,
    ShipmentCancel,
    ShipmentReject,
    TakeoverNotice,
    TxnResponse,
    TxnShipment,
    UpdateAck,
    UpdatePropagation,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.faults import RecoveryPolicy
    from .config import SystemConfig
    from .metrics import MetricsCollector
    from .system import HybridSystem

__all__ = ["CentralSite"]


@dataclass
class _PendingAuth:
    """Bookkeeping for one in-progress authentication round.

    ``cancelled`` marks a round whose transaction was killed by a
    ShipmentCancel while awaiting replies.  The round stays registered
    so late replies can be matched: each master's locks are released
    only *after* its reply arrives (a master grants before replying, so
    a release sent any earlier could overtake the grant and leak the
    locks forever).  ``requests`` keeps each master's request so it can
    be re-sent to a site whose crash destroyed the original (rejoin).
    """

    event: Event
    expected: int
    txn_id: int = 0
    cancelled: bool = False
    replies: list[AuthReply] = field(default_factory=list)
    requests: dict[int, AuthRequest] = field(default_factory=dict)


class CentralSite(SiteBase):
    """The central computing complex of the hybrid architecture."""

    def __init__(self, env: Environment, config: "SystemConfig",
                 system: "HybridSystem", partition: LockSpacePartition,
                 name: str = "central"):
        super().__init__(env, config, config.central_mips, name=name)
        self.system = system
        self.partition = partition
        self.metrics: "MetricsCollector" = system.metrics

        #: Class B and shipped class A transactions currently at central.
        self.active: dict[int, Transaction] = {}
        #: Central replica of every regional database (update counters).
        self.data = ReplicaStore(name=name)
        self.to_sites: list[Link] = []
        self.from_sites: list[Link] = []

        self._auth_ids = itertools.count(1)
        self._pending_auth: dict[int, _PendingAuth] = {}
        #: Distributed-mode transactions holding remote locks here:
        #: txn_id -> home site (for invalidation notices).
        self._remote_holders: dict[int, int] = {}

        # Fault tolerance (populated only when a fault plan is active).
        self.channels: dict[int, ReliableEndpoint] = {}
        #: Execution processes of admitted transactions (cancel targets).
        self._processes: dict[int, Process] = {}
        #: Transactions whose response has been sent (cancel -> completed).
        self._finished: set[int] = set()

        # Recovery subsystem (populated only when the plan's
        # RecoveryPolicy enables it; None otherwise, costing nothing).
        self.recovery: "RecoveryPolicy | None" = None
        #: Reliable sender of the primary->standby log stream (primary
        #: only; the standby's mirror lives on StandbyCentral).
        self.log_endpoint: ReliableEndpoint | None = None
        self.log_in: Link | None = None
        #: True once a TakeoverNotice arrived: this central lost the
        #: master role and must neither execute nor transmit.
        self.deposed = False
        #: Applied update batches per site (dedup across log replay and
        #: direct re-sends after failover).  None = dedup off.
        self._applied_batches: dict[int, set[int]] | None = None

    # -- wiring ---------------------------------------------------------------

    def attach_links(self, to_sites: list[Link],
                     from_sites: list[Link]) -> None:
        self.to_sites = to_sites
        self.from_sites = from_sites
        for site_id, link in enumerate(from_sites):
            self.env.process(self._dispatch(site_id, link),
                             name=f"{self.name}:dispatch-{site_id}")

    def enable_reliability(self, site_id: int,
                           channel: ReliableEndpoint) -> None:
        """Route central->site traffic through a reliable channel."""
        self.channels[site_id] = channel

    def enable_recovery(self, recovery: "RecoveryPolicy") -> None:
        """Arm the recovery subsystem (batch dedup, admission bound)."""
        self.recovery = recovery
        self._applied_batches = {}

    def start_log_shipping(self, endpoint: ReliableEndpoint,
                           in_link: Link) -> None:
        """Primary side of the hot-standby pairing.

        ``endpoint`` sends log records (reliable) and heartbeats
        (unreliable, raw link) to the standby; ``in_link`` carries the
        standby's acks and, eventually, its TakeoverNotice.
        """
        self.log_endpoint = endpoint
        self.log_in = in_link
        self.env.process(self._log_dispatch(),
                         name=f"{self.name}:log-dispatch")
        self.env.process(self._heartbeat_loop(),
                         name=f"{self.name}:heartbeat")

    def _log_dispatch(self):
        while True:
            message = yield self.log_in.mailbox.get()
            for delivered in self.log_endpoint.pump(message):
                if isinstance(delivered.payload, TakeoverNotice):
                    self._on_deposed()

    def _heartbeat_loop(self):
        interval = self.recovery.heartbeat_interval
        while not self.deposed:
            # Raw link send, outside the reliable channel: heartbeats
            # must not be retransmitted -- silence is the signal.
            self.log_endpoint.out_link.send(Message(
                kind="heartbeat", source=self.name,
                payload=Heartbeat(time=self.env.now)))
            yield self.env.timeout(interval)

    def _ship_log(self, kind: str, updates, site: int | None = None,
                  seq: int = 0) -> None:
        if self.log_endpoint is None or self.deposed:
            return
        self.log_endpoint.send(Message(
            kind="log", source=self.name,
            payload=LogRecord(kind=kind, updates=updates, site=site,
                              seq=seq)))

    def _mark_batch(self, site: int | None, seq: int) -> bool:
        """Record an update batch as applied; False when already seen."""
        if self._applied_batches is None or site is None or seq == 0:
            return True
        seen = self._applied_batches.setdefault(site, set())
        if seq in seen:
            return False
        seen.add(seq)
        return True

    def _on_deposed(self) -> None:
        """The standby took over: stop executing and transmitting.

        In-flight transactions are killed (their home sites already
        re-dispatched them at failover and fence this central's
        responses), pending retransmissions are abandoned, and pending
        auth rounds are dropped -- the sites released this epoch's
        master locks when they re-pointed.
        """
        if self.deposed:
            return
        self.deposed = True
        self.metrics.record_takeover("primary-deposed")
        for txn_id, process in list(self._processes.items()):
            if process.is_alive:
                process.interrupt("deposed")
        for channel in self.channels.values():
            channel.abandon()
        if self.log_endpoint is not None:
            self.log_endpoint.abandon()
        self._pending_auth.clear()

    def snapshot(self) -> CentralSnapshot:
        """Sample the observable central state (piggybacked on messages)."""
        return CentralSnapshot(
            time=self.env.now,
            queue_length=self.cpu_queue_length,
            n_txns=len(self.active),
            locks_held=self.locks.total_locks_held(),
        )

    def _send(self, site: int, kind: str, payload) -> None:
        self.metrics.record_message(to_central=False, kind=kind, site=site)
        message = Message(kind=kind, source="central", payload=payload)
        channel = self.channels.get(site)
        if channel is not None:
            channel.send(message)
        else:
            self.to_sites[site].send(message)

    # -- inbound message handling ------------------------------------------------

    def _dispatch(self, site_id: int, link: Link):
        """Per-site inbound loop.

        Update batches are applied *inline* (one at a time) so that the
        protocol's per-site FIFO processing requirement holds even though
        applying a batch consumes CPU.
        """
        while True:
            message = yield link.mailbox.get()
            channel = self.channels.get(site_id)
            if channel is not None:
                for delivered in channel.pump(message):
                    yield from self._handle_site_message(site_id,
                                                         delivered)
            else:
                yield from self._handle_site_message(site_id, message)

    def _handle_site_message(self, site_id: int, message: Message):
        payload = message.payload
        if isinstance(payload, TxnShipment):
            self.admit(payload.txn)
        elif isinstance(payload, UpdatePropagation):
            yield from self._apply_updates(payload)
        elif isinstance(payload, AuthReply):
            self._collect_auth_reply(payload)
        elif isinstance(payload, ShipmentCancel):
            self._handle_cancel(payload)
        elif isinstance(payload, RemoteLockRequest):
            self.env.process(self._handle_remote_lock(payload),
                             name=f"central:remote-lock-{site_id}")
        elif isinstance(payload, RemoteCommit):
            self._handle_remote_commit(payload)
        elif isinstance(payload, RemoteRelease):
            self._handle_remote_release(payload)
        elif isinstance(payload, RejoinRequest):
            self.env.process(self._handle_rejoin(payload),
                             name=f"{self.name}:rejoin-{payload.site}")
        else:
            raise TypeError(f"unexpected payload {payload!r}")

    def admit(self, txn: Transaction) -> None:
        """Start executing a shipped class A or class B transaction."""
        recovery = self.recovery
        if recovery is not None and recovery.admission_limit > 0 and \
                len(self.active) >= recovery.admission_limit:
            # Bounded admission: shedding here (with an explicit reject
            # the home site acts on immediately) beats accepting work
            # that will only time out after clogging the queue further.
            self.metrics.record_shed(txn, node=self.name)
            self._send(txn.home_site, "ship-reject", ShipmentReject(
                txn_id=txn.txn_id, snapshot=self.snapshot()))
            return
        self._processes[txn.txn_id] = self.env.process(
            self._run_central(txn), name=f"txn-{txn.txn_id}@{self.name}")

    def _handle_cancel(self, cancel: ShipmentCancel) -> None:
        """Settle a shipment the home site has given up on.

        The reliable channel's FIFO guarantee means the shipment itself
        was processed before this cancel, so the transaction's fate is
        decidable: either its response is already on the wire
        (``completed`` -- it precedes this ack on the same FIFO channel)
        or its execution is interrupted here and now (``killed`` -- it
        will never commit, so the home site may re-run it safely).
        """
        txn_id = cancel.txn_id
        if txn_id in self._finished:
            outcome = "completed"
        else:
            outcome = "killed"
            process = self._processes.pop(txn_id, None)
            if process is not None and process.is_alive:
                process.interrupt("shipment-cancelled")
        self._send(cancel.site, "cancel-ack",
                   CancelAck(txn_id=txn_id, outcome=outcome,
                             snapshot=self.snapshot()))

    def _apply_updates(self, propagation: UpdatePropagation):
        """Apply an asynchronous update batch (Section 2).

        Locks at the central site on the updated data are invalidated:
        the transactions holding them are marked for abort (they discover
        the mark at their commit check).  The batch is then acknowledged.

        With recovery armed, batches are deduplicated by (site, seq):
        after a failover a site re-sends its unacknowledged batches, and
        the standby may already hold them from the shipped log.  A
        duplicate is acknowledged (so the sender drains) but not
        re-applied.
        """
        if not self._mark_batch(propagation.source_site, propagation.seq):
            self._send(propagation.source_site, "update-ack",
                       UpdateAck(updates=propagation.updates,
                                 snapshot=self.snapshot(),
                                 seq=propagation.seq))
            return
        yield from self.cpu_burst(self.config.instr_update_apply *
                                  len(propagation.updates))
        self.data.apply_updates(propagation.entities)
        notified_remote: set[int] = set()
        for entity in propagation.entities:
            for holder_id in list(self.locks.held_modes(entity)):
                victim = self.active.get(holder_id)
                if victim is not None and not victim.marked_for_abort:
                    victim.mark_for_abort("invalidated-by-update")
                elif victim is None and holder_id in self._remote_holders \
                        and holder_id not in notified_remote:
                    # A distributed-mode transaction holds this entity
                    # remotely: notify its home site to mark it.
                    notified_remote.add(holder_id)
                    self._send(self._remote_holders[holder_id],
                               "remote-invalidate", RemoteInvalidate(
                                   txn_id=holder_id,
                                   snapshot=self.snapshot()))
        self._send(propagation.source_site, "update-ack",
                   UpdateAck(updates=propagation.updates,
                             snapshot=self.snapshot(),
                             seq=propagation.seq))
        self._ship_log("update", propagation.updates,
                       site=propagation.source_site, seq=propagation.seq)

    # -- site rejoin (crash recovery catch-up) --------------------------------

    def _handle_rejoin(self, request: RejoinRequest):
        """Catch a rejoining site up after a crash wiped its state.

        Builds a snapshot of the site's mastered partition from the
        central replica (covering every update the site missed *or lost*
        while down), re-sends auth requests the crash destroyed so
        stalled rounds resolve, and drops remote locks held by the
        site's dead distributed transactions.
        """
        recovery = self.recovery
        if recovery is not None:
            yield from self.cpu_burst(recovery.instr_snapshot)
        site = request.site
        # Stalled auth rounds: the request (or its reply) died with the
        # site's old channel incarnation; re-send over the new one.
        for pending in self._pending_auth.values():
            req = pending.requests.get(site)
            if req is not None and \
                    all(reply.site != site for reply in pending.replies):
                self._send(site, "auth-request", req)
        # Remote locks held by distributed transactions of the dead site
        # would otherwise block other sites' work forever.
        for txn_id, home in list(self._remote_holders.items()):
            if home == site:
                self.locks.release_all(txn_id)
                del self._remote_holders[txn_id]
        low, high = self.partition.site_range(site)
        counts = {entity: count
                  for entity, count in self.data.snapshot().items()
                  if low <= entity < high}
        self._send(site, "rejoin-snapshot", RejoinSnapshot(
            site=site, counts=counts, snapshot=self.snapshot()))

    # -- remote-call data server (fully distributed class B mode) ------------

    def _handle_remote_lock(self, request: RemoteLockRequest):
        """Lock the entity on behalf of a distributed transaction and
        return the datum (a deadlock refusal is reported, not raised)."""
        yield from self.cpu_burst(self.config.instr_per_db_call)
        grant = self.locks.acquire(request.txn_id, request.entity,
                                   request.mode)
        granted = True
        try:
            yield grant
        except DeadlockError:
            granted = False
        if granted:
            self._remote_holders[request.txn_id] = request.site
        self._send(request.site, "remote-reply", RemoteLockReply(
            call_id=request.call_id, txn_id=request.txn_id,
            granted=granted, snapshot=self.snapshot()))

    def _handle_remote_commit(self, commit: RemoteCommit) -> None:
        """Apply a distributed commit's non-local updates and forward
        them to the owning master sites; release the remote locks."""
        self.locks.release_all(commit.txn_id)
        self._remote_holders.pop(commit.txn_id, None)
        if not commit.updates:
            return
        self.data.apply_updates(commit.updates)
        by_owner: dict[int, list[int]] = {}
        for entity in commit.updates:
            owner = self.partition.owner(entity)
            if owner is not None:
                by_owner.setdefault(owner, []).append(entity)
        for owner, entities in by_owner.items():
            self._send(owner, "commit", CommitOrder(
                txn_id=commit.txn_id, snapshot=self.snapshot(),
                updates=tuple(entities)))

    def _handle_remote_release(self, release: RemoteRelease) -> None:
        self.locks.release_all(release.txn_id)
        self._remote_holders.pop(release.txn_id, None)

    def _collect_auth_reply(self, reply: AuthReply) -> None:
        pending = self._pending_auth.get(reply.auth_id)
        if pending is None:
            if self.channels:
                # Cancelled rounds are deregistered once fully replied;
                # anything later is a harmless straggler.
                return
            raise RuntimeError(f"unknown auth round {reply.auth_id}")
        pending.replies.append(reply)
        if len(pending.replies) == pending.expected:
            del self._pending_auth[reply.auth_id]
            if pending.cancelled:
                # The transaction was killed mid-round.  Every master
                # that granted has (by FIFO) done so before replying, so
                # releasing on the completed round can never overtake a
                # grant.
                for late in pending.replies:
                    if late.granted:
                        self._send(late.site, "release", ReleaseOrder(
                            txn_id=pending.txn_id,
                            snapshot=self.snapshot()))
                return
            pending.event.succeed(pending.replies)

    # -- central transaction execution ----------------------------------------------

    def _run_central(self, txn: Transaction):
        config = self.config
        self.active[txn.txn_id] = txn
        try:
            while True:
                txn.begin_run(self.env.now)
                first_run = txn.run_count == 1
                if first_run:
                    yield from self.io_wait(config.io_initial, txn)
                yield from self.cpu_burst(config.instr_txn_overhead, txn)
                try:
                    yield from self._execute_calls(txn, first_run)
                except DeadlockError:
                    txn.record_abort(deadlock=True)
                    self.metrics.record_abort(txn, "deadlock")
                    self.locks.release_all(txn.txn_id)
                    txn.locked_entities.clear()
                    continue
                # Commit check: invalidated by asynchronous updates?
                if txn.marked_for_abort:
                    self._abort_invalidated(txn)
                    continue
                committed = yield from self._authenticate_and_commit(txn)
                if committed:
                    return
        except Interrupt:
            # ShipmentCancel: the home site gave up on this transaction.
            # Release everything held here (release_all also cancels any
            # queued lock request) and stop without completing -- the
            # cancel handshake guarantees nobody still expects a
            # response.  Master-site locks, if an authentication round
            # was in flight, are released as its replies arrive (see
            # _collect_auth_reply / _authenticate_and_commit).
            self.locks.release_all(txn.txn_id)
            txn.locked_entities.clear()
            self.metrics.record_cancelled(txn)
        finally:
            self.active.pop(txn.txn_id, None)
            self._processes.pop(txn.txn_id, None)

    def _execute_calls(self, txn: Transaction, first_run: bool):
        config = self.config
        for reference in txn.references:
            if not self.locks.is_held_by(reference.entity, txn.txn_id):
                yield from self.lock_wait(txn, reference)
            yield from self.cpu_burst(config.instr_per_db_call, txn)
            if first_run:
                yield from self.io_wait(config.io_per_db_call, txn)

    def _abort_invalidated(self, txn: Transaction) -> None:
        txn.record_abort()
        self.metrics.record_abort(txn, "central-invalidated")
        if not self.config.keep_locks_on_abort:
            self.locks.release_all(txn.txn_id)
            txn.locked_entities.clear()

    def _masters_of(self, txn: Transaction) -> dict[int, list]:
        """Group the transaction's references by master site.

        Shipped class A transactions involve only their source site; class
        B transactions involve the owner of every referenced entity.
        Entities in the unowned tail of the lock space have no master and
        need no authentication.
        """
        by_site: dict[int, list] = {}
        for reference in txn.references:
            owner = self.partition.owner(reference.entity)
            if owner is None:
                continue
            by_site.setdefault(owner, []).append(
                (reference.entity, reference.mode))
        if txn.placement is Placement.SHIPPED:
            # All of a class A transaction's data is mastered at its home
            # site by construction; assert rather than trust.
            assert set(by_site) <= {txn.home_site}
        return by_site

    def _authenticate_and_commit(self, txn: Transaction):
        """Authentication phase, final validation, commit, response.

        Returns True when the transaction committed; False to re-execute
        (negative acknowledgement or late invalidation).
        """
        config = self.config
        yield from self.cpu_burst(config.instr_auth_central, txn)
        masters = self._masters_of(txn)
        if masters:
            auth_id = next(self._auth_ids)
            done = Event(self.env)
            pending = _PendingAuth(
                event=done, expected=len(masters), txn_id=txn.txn_id)
            self._pending_auth[auth_id] = pending
            for site, references in masters.items():
                request = AuthRequest(
                    auth_id=auth_id, txn_id=txn.txn_id,
                    references=tuple(references),
                    snapshot=self.snapshot(), deadline=txn.deadline)
                pending.requests[site] = request
                self._send(site, "auth-request", request)
            # Both message legs plus the master-site checks count as the
            # authentication phase of this transaction's timeline.
            txn.spans.enter(PHASE_AUTH, self.env.now)
            try:
                replies = yield done
            except Interrupt:
                # Cancelled mid-round.  The round stays registered,
                # poisoned, so master grants already in flight are
                # released once every reply has arrived (releasing
                # earlier could overtake a not-yet-processed grant).
                pending.cancelled = True
                txn.spans.exit(self.env.now)
                raise
            txn.spans.exit(self.env.now)
            self.metrics.record_auth_round(
                all(reply.granted for reply in replies))
            if not all(reply.granted for reply in replies):
                # Some master answered NAK: release any granted locks and
                # re-execute (the paper: "it re-executes the transaction
                # and repeats the process").
                self.metrics.record_negative_ack(
                    txn, sites=tuple(reply.site for reply in replies
                                     if not reply.granted))
                self._release_masters(txn, masters)
                txn.record_abort()
                return False
        # Final validation: were our locks invalidated by asynchronous
        # updates while we were authenticating?
        if txn.marked_for_abort:
            self._release_masters(txn, masters)
            self._abort_invalidated(txn)
            return False
        try:
            yield from self.cpu_burst(config.instr_commit, txn)
        except Interrupt:
            # Cancelled before the commit message: undo the granted
            # authentications, then let _run_central clean up the rest.
            self._release_masters(txn, masters)
            raise
        if txn.marked_for_abort:
            # Invalidated during commit processing, before the commit
            # message is sent -- still safe to re-execute.
            self._release_masters(txn, masters)
            self._abort_invalidated(txn)
            return False
        # Apply the transaction's updates to the central replica and
        # distribute per-master commit orders carrying the update lists.
        self.data.apply_updates(txn.update_entities)
        if txn.update_entities:
            self._ship_log("commit", (tuple(txn.update_entities),))
        for site, references in masters.items():
            site_updates = tuple(entity for entity, mode in references
                                 if mode is LockMode.EXCLUSIVE)
            self._send(site, "commit", CommitOrder(
                txn_id=txn.txn_id, snapshot=self.snapshot(),
                updates=site_updates))
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        # The transaction no longer occupies the central site; the output
        # message travels back to the user's region.
        self.active.pop(txn.txn_id, None)
        if self.channels:
            # Reliability on: the response is a real message on the
            # site's channel, so it survives outages via retransmission
            # and (being FIFO-ordered with cancel-acks) is definitive.
            # Past this point the transaction can no longer be killed.
            self._finished.add(txn.txn_id)
            self._processes.pop(txn.txn_id, None)
            txn.spans.enter(PHASE_COMM, self.env.now)
            self._send(txn.home_site, "txn-response",
                       TxnResponse(txn=txn, snapshot=self.snapshot()))
            return True
        txn.spans.enter(PHASE_COMM, self.env.now)
        yield self.env.timeout(config.comm_delay)
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)
        if txn.placement is Placement.SHIPPED:
            self.system.sites[txn.home_site].on_shipped_response(txn)
        return True

    def _release_masters(self, txn: Transaction,
                         masters: dict[int, list]) -> None:
        for site in masters:
            self._send(site, "release", ReleaseOrder(
                txn_id=txn.txn_id, snapshot=self.snapshot()))
