"""Deterministic epoch-batched group commit (protocol ``epoch``).

Execution stays optimistic -- local transactions run under their site's
lock table exactly as in the default protocol -- but the site<->central
interaction is batched into fixed epochs of ``config.epoch_interval``
seconds:

* **Sites** buffer committed updates for a whole epoch and ship them as
  one ``UpdatePropagation`` batch at the boundary.  Updating
  transactions *group-commit*: their locks release and their updates
  apply immediately (so they never block local conflicts), but their
  response is withheld until the central acknowledges the epoch's
  batch -- the durability point.  Read-only transactions respond
  immediately.
* **The central** buffers incoming site batches and central commit
  requests for an epoch, then resolves the epoch deterministically:
  site batches are applied in ``(site, seq)`` order first, then the
  buffered central commits run in arrival order.  A central transaction
  invalidated by that epoch's site batches loses -- deterministically --
  and re-executes; survivors commit without any authentication round
  (the epoch ordering *is* the commit order), distributing
  :class:`EpochCommitOrder` updates to the masters.

Recovery rides on the optimistic machinery: unacknowledged epoch
batches are re-sent on failover (``LocalSite._on_failover``) and the
standby deduplicates them against the shipped log by ``(site, seq)``
-- which is exactly an in-flight-epoch replay; the waiting
group-committed transactions complete when the standby's ack arrives.
"""

from __future__ import annotations

from ..central import CentralSite
from ..local import LocalSite
from ..protocol import EpochCommitOrder, TxnResponse, UpdatePropagation
from ..standby import StandbyCentral
from ...db.locks import LockMode
from ...db.transaction import Placement, Transaction
from ...sim.engine import Event, Interrupt
from ...sim.spans import PHASE_AUTH, PHASE_COMM
from . import register
from .base import CommitProtocol

__all__ = ["EpochProtocol", "EpochLocalSite", "EpochCentralSite",
           "EpochStandby"]


class EpochLocalSite(LocalSite):
    """Local site with epoch-batched update shipping and group commit."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Updating transactions committed this epoch, awaiting the
        #: boundary flush.
        self._epoch_pending: list[Transaction] = []
        #: seq -> the transactions group-committing on that batch's ack.
        self._awaiting_ack: dict[int, tuple[Transaction, ...]] = {}

    def attach_links(self, to_central, from_central) -> None:
        self.to_central = to_central
        self.from_central = from_central
        self.env.process(self._dispatch(), name=f"{self.name}:dispatch")
        # One flush cadence: the epoch boundary (replaces the batching
        # threshold and the partial-batch flush loop alike).
        self.env.process(self._epoch_loop(), name=f"{self.name}:epoch")

    def _epoch_loop(self):
        interval = self.config.epoch_interval
        while True:
            yield self.env.timeout(interval)
            self._flush_updates()

    def _queue_update(self, updates: tuple[int, ...]) -> None:
        # Buffer for the epoch boundary; never flush on a threshold.
        self._update_buffer.append(updates)

    def _flush_updates(self) -> None:
        pending = tuple(self._epoch_pending)
        self._epoch_pending.clear()
        if not self._update_buffer:
            return
        seq_before = self._update_seq
        super()._flush_updates()
        seq = self._update_seq
        assert seq == seq_before + 1
        if pending:
            self._awaiting_ack[seq] = pending
        self.metrics.record_protocol_event("epoch-flush")

    def _commit_phase(self, txn):
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        updates = txn.update_entities
        if not updates:
            # Read-only: nothing to make durable, respond immediately.
            txn.complete(self.env.now)
            self.metrics.record_completion(txn)
            self.router.observe_completion(txn)
            return True
        # Group commit: apply and unlock now (later local transactions
        # see the writes), respond at the epoch ack.
        self.data.apply_updates(updates)
        for entity in updates:
            self.locks.increment_coherence(entity)
        self._queue_update(updates)
        self._epoch_pending.append(txn)
        self.metrics.record_protocol_event("group-commit-deferred")
        txn.spans.enter(PHASE_COMM, self.env.now)
        return True
        yield  # pragma: no cover - unreachable; makes this a generator

    def _handle_update_ack(self, ack) -> None:
        fresh = ack.seq in self._unacked_updates
        super()._handle_update_ack(ack)
        if not fresh:
            return
        for txn in self._awaiting_ack.pop(ack.seq, ()):
            self.metrics.record_protocol_event("group-commit")
            txn.complete(self.env.now)
            self.metrics.record_completion(txn)
            self.router.observe_completion(txn)

    def _handle_epoch_commit(self, order: EpochCommitOrder) -> None:
        """A central transaction epoch-committed: apply its updates for
        entities mastered here and invalidate conflicting local holders
        (the epoch order wins; there are no master locks to release)."""
        self.data.apply_updates(order.updates)
        for entity in order.updates:
            for holder_id in list(self.locks.held_modes(entity)):
                victim = self.active.get(holder_id)
                if victim is not None and not victim.marked_for_abort:
                    victim.mark_for_abort("invalidated-by-epoch-commit")

    def _on_central_message(self, message) -> None:
        payload = message.payload
        if isinstance(payload, EpochCommitOrder):
            if payload.snapshot.time > self.central_snapshot.time:
                self.central_snapshot = payload.snapshot
            self._handle_epoch_commit(payload)
            return
        super()._on_central_message(message)

    def on_crash(self) -> None:
        # Transactions whose response was parked on an epoch ack die
        # with the volatile state (the base hook clears the buffers and
        # unacked batches they ride on).
        waiting = [txn for seq in sorted(self._awaiting_ack)
                   for txn in self._awaiting_ack[seq]]
        waiting.extend(self._epoch_pending)
        super().on_crash()
        for txn in waiting:
            self.txns_lost_in_crash += 1
            self.metrics.record_lost_in_crash(txn)
        self._awaiting_ack.clear()
        self._epoch_pending.clear()


class EpochCentralMixin:
    """Epoch buffering and the deterministic boundary resolution."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Site batches received this epoch, applied at the boundary.
        self._epoch_updates: list[UpdatePropagation] = []
        #: (txn_id, wakeup) of central commits waiting for the boundary.
        self._epoch_commits: list[tuple[int, Event]] = []

    def attach_links(self, to_sites, from_sites) -> None:
        super().attach_links(to_sites=to_sites, from_sites=from_sites)
        self.env.process(self._epoch_ticker(), name=f"{self.name}:epoch")

    def _epoch_should_tick(self) -> bool:
        if self.deposed:
            return False
        is_active = getattr(self, "is_active", None)
        return True if is_active is None else bool(is_active)

    def _epoch_ticker(self):
        interval = self.config.epoch_interval
        while True:
            yield self.env.timeout(interval)
            if self.deposed:
                return
            if not self._epoch_should_tick():
                continue  # a standby ticks only after takeover
            yield from self._close_epoch()

    def _close_epoch(self):
        """Resolve one epoch: site batches in deterministic (site, seq)
        order, then the buffered central commits in arrival order."""
        batches = sorted(self._epoch_updates,
                         key=lambda p: (p.source_site, p.seq))
        self._epoch_updates.clear()
        for batch in batches:
            # The stock application path: dedup against the shipped log,
            # invalidate central holders, ack, ship to the standby.
            yield from self._apply_updates(batch)
            self.metrics.record_protocol_event("epoch-batch")
        waiters, self._epoch_commits = self._epoch_commits, []
        for _txn_id, wakeup in waiters:
            if not wakeup.triggered:
                wakeup.succeed(None)

    def _handle_site_message(self, site_id, message):
        payload = message.payload
        if isinstance(payload, UpdatePropagation):
            self._epoch_updates.append(payload)
            return
        yield from super()._handle_site_message(site_id, message)

    def _authenticate_and_commit(self, txn: Transaction):
        """Epoch commit: wait for the boundary instead of an
        authentication round; the deterministic ordering resolves
        conflicts (that epoch's site batches win)."""
        config = self.config
        yield from self.cpu_burst(config.instr_auth_central, txn)
        wakeup = Event(self.env)
        entry = (txn.txn_id, wakeup)
        self._epoch_commits.append(entry)
        txn.spans.enter(PHASE_AUTH, self.env.now)
        try:
            yield wakeup
        except Interrupt:
            # Cancelled mid-epoch: deregister so the boundary does not
            # wake a dead transaction's event.
            self._epoch_commits = [e for e in self._epoch_commits
                                   if e is not entry]
            txn.spans.exit(self.env.now)
            raise
        txn.spans.exit(self.env.now)
        if txn.marked_for_abort:
            # Lost to this epoch's site batches -- deterministically.
            self._abort_invalidated(txn)
            return False
        yield from self.cpu_burst(config.instr_commit, txn)
        if txn.marked_for_abort:
            self._abort_invalidated(txn)
            return False
        self.metrics.record_protocol_event("epoch-central-commit")
        self.data.apply_updates(txn.update_entities)
        if txn.update_entities:
            self._ship_log("commit", (tuple(txn.update_entities),))
        for site, references in self._masters_of(txn).items():
            site_updates = tuple(entity for entity, mode in references
                                 if mode is LockMode.EXCLUSIVE)
            if site_updates:
                self._send(site, "epoch-commit", EpochCommitOrder(
                    txn_id=txn.txn_id, snapshot=self.snapshot(),
                    updates=site_updates))
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        self.active.pop(txn.txn_id, None)
        if self.channels:
            self._finished.add(txn.txn_id)
            self._processes.pop(txn.txn_id, None)
            txn.spans.enter(PHASE_COMM, self.env.now)
            self._send(txn.home_site, "txn-response",
                       TxnResponse(txn=txn, snapshot=self.snapshot()))
            return True
        txn.spans.enter(PHASE_COMM, self.env.now)
        yield self.env.timeout(config.comm_delay)
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)
        if txn.placement is Placement.SHIPPED:
            self.system.sites[txn.home_site].on_shipped_response(txn)
        return True

    def _on_deposed(self) -> None:
        super()._on_deposed()
        self._epoch_updates.clear()
        self._epoch_commits.clear()


class EpochCentralSite(EpochCentralMixin, CentralSite):
    """The epoch sequencer."""


class EpochStandby(EpochCentralMixin, StandbyCentral):
    """Hot standby under the epoch protocol.

    Before takeover it only replays the shipped log (its epoch ticker
    idles); afterwards re-sent in-flight batches land in its epoch
    buffer, are deduplicated against the log by ``(site, seq)`` and
    acknowledged -- completing the sites' parked group commits.
    """


@register
class EpochProtocol(CommitProtocol):
    """Deterministic epoch-batched group commit."""

    name = "epoch"

    messages_per_local_commit = ("~2/epoch amortised: one batched "
                                 "``UpdatePropagation`` + ``UpdateAck`` "
                                 "per site per epoch")
    blocking = ("non-blocking for conflicts (locks release at the local "
                "commit point); responses wait for the epoch ack "
                "(group-commit latency <= epoch + round trip)")
    consistency = ("epoch-atomic: replicas agree at every applied epoch "
                   "boundary; exact after drain")

    def make_local(self, env, site_id, config, system, router):
        return EpochLocalSite(env, site_id, config, system, router)

    def make_central(self, env, config, system, partition):
        return EpochCentralSite(env, config, system, partition)

    def make_standby(self, env, config, system, partition):
        return EpochStandby(env, config, system, partition)
