"""The :class:`CommitProtocol` interface.

A commit protocol owns the site<->central interaction of the hybrid
system: how a local transaction's updates reach the central replica
(shipment and update propagation), how commits are authorised
(authentication / voting / epoch ordering), and how the interaction
survives faults (the recovery hooks).  Everything else -- workload,
routing strategies, the lock tables, metrics, fault injection -- is
protocol-independent and shared.

A protocol is a *class selection*: it supplies the concrete
``LocalSite`` / ``CentralSite`` / ``StandbyCentral`` classes the
:class:`~repro.hybrid.system.HybridSystem` wires together.  The three
factories receive exactly the arguments the stock classes take, so the
default protocol can return them unchanged -- which is how the
extraction stays bit-identical to the pre-refactor simulator.

Behavioural contract every implementation must satisfy (enforced by
``tests/test_protocol_conformance.py``):

* **Replica consistency.**  After a drained run every owned entity's
  update count at the central replica equals the count at its master
  site (exactly-once application on both sides).
* **Exactly-once completion.**  Each transaction completes at most
  once, never while marked for abort, with a positive response time
  (the invariant checker's ``record_completion`` wrap).
* **FIFO update application.**  If the protocol uses
  ``UpdatePropagation`` batches, the central applies each site's
  batches in sequence order, never applying more than the site sent.
* **Abort vocabulary.**  Aborts are recorded under the existing causes
  (``deadlock`` / ``local-invalidated`` / ``central-invalidated``) so
  the result schema stays protocol-independent.
* **Determinism.**  Same seed, same config, same fault plan => the
  same :meth:`~repro.hybrid.metrics.SimulationResult.identity_dict`.
* **Registry-only observability.**  Protocol-specific counters go
  through ``MetricsCollector.record_protocol_event`` (the metrics
  registry), never through new tracer vocabulary -- golden traces hash
  the exact event stream.

See ``docs/PROTOCOL.md`` for the full contract and a registration
walkthrough.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..central import CentralSite
    from ..config import SystemConfig
    from ..local import LocalSite
    from ..standby import StandbyCentral
    from ..system import HybridSystem

__all__ = ["CommitProtocol"]


class CommitProtocol:
    """Factory bundle for one site<->central commit protocol.

    Subclasses set :attr:`name` (the registry / config / CLI / cache
    identity) and implement the three ``make_*`` factories.  The class
    attributes below the factories are documentation metadata surfaced
    in ``docs/PROTOCOL.md``'s zoo table; they carry no runtime
    behaviour.
    """

    #: Registry name -- the value of ``SystemConfig.protocol``.
    name: str = "abstract"

    #: Zoo-table metadata: site-commit message cost, blocking behaviour.
    messages_per_local_commit: str = ""
    blocking: str = ""
    consistency: str = ""

    # -- factories ----------------------------------------------------------

    def make_local(self, env, site_id: int, config: "SystemConfig",
                   system: "HybridSystem", router) -> "LocalSite":
        """Build the local-site implementation for ``site_id``."""
        raise NotImplementedError

    def make_central(self, env, config: "SystemConfig",
                     system: "HybridSystem", partition) -> "CentralSite":
        """Build the central-site implementation."""
        raise NotImplementedError

    def make_standby(self, env, config: "SystemConfig",
                     system: "HybridSystem", partition) -> "StandbyCentral":
        """Build the hot-standby implementation (failover recovery)."""
        raise NotImplementedError

    # -- hooks --------------------------------------------------------------

    def on_wired(self, system: "HybridSystem") -> None:
        """Called once after the system is fully wired (links, faults,
        standby).  Default: nothing -- protocols that need cross-site
        setup beyond class selection override this."""
