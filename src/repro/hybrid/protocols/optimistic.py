"""The paper's optimistic-authentication protocol (the default).

This is the protocol the reproduction grew up with, extracted verbatim:
the factories return the stock :class:`~repro.hybrid.local.LocalSite`,
:class:`~repro.hybrid.central.CentralSite` and
:class:`~repro.hybrid.standby.StandbyCentral` classes unchanged, so a
run under ``protocol="optimistic"`` is bit-identical to the
pre-extraction simulator (pinned by the golden-trace gate in
``tests/test_protocol_conformance.py``).
"""

from __future__ import annotations

from ..central import CentralSite
from ..local import LocalSite
from ..standby import StandbyCentral
from . import register
from .base import CommitProtocol

__all__ = ["OptimisticProtocol"]


@register
class OptimisticProtocol(CommitProtocol):
    """Asynchronous update propagation + optimistic authentication."""

    name = "optimistic"

    messages_per_local_commit = ("1 async ``UpdatePropagation`` + 1 "
                                 "``UpdateAck`` (amortised by batching)")
    blocking = ("non-blocking: local commits never wait on the central; "
                "coherence counts defer conflicts to authentication")
    consistency = ("eventual between commits; exact after drain "
                   "(replica counters converge)")

    def make_local(self, env, site_id, config, system, router) -> LocalSite:
        return LocalSite(env, site_id, config, system, router)

    def make_central(self, env, config, system, partition) -> CentralSite:
        return CentralSite(env, config, system, partition)

    def make_standby(self, env, config, system, partition) -> StandbyCentral:
        return StandbyCentral(env, config, system, partition)
