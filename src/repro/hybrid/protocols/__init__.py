"""The commit-protocol zoo: pluggable site<->central interactions.

The paper evaluates its load-sharing strategies on top of exactly one
site<->central interaction -- asynchronous update propagation with
optimistic authentication (section 2).  This package turns that
interaction into one implementation of a :class:`CommitProtocol`
interface so competing protocols can run under the same workloads,
fault plans, routing strategies and figures:

``optimistic``
    The paper's protocol, extracted unchanged (the default).  Local
    commits are asynchronous; central commits authenticate against the
    masters.
``2pc``
    Primary-copy two-phase commit.  Updating local transactions block
    on a prepare/vote round with the central site (the primary-copy
    coordinator) before committing; coordinator failure leaves them
    blocked until a standby takes over.
``epoch``
    Deterministic epoch-batched group commit.  Execution stays
    optimistic, but update batches ship once per epoch and are applied
    at the central in deterministic ``(site, seq)`` order; central
    commits wait for the epoch boundary.

Registration is decoupled from import: :func:`protocol_names` answers
config validation without importing any simulator module, and the
built-in implementation modules load lazily on the first
:func:`get_protocol` call.  Third-party protocols register with the
:func:`register` decorator; once registered their names validate
everywhere a built-in name does (``SystemConfig.protocol``, the CLI
``--protocol`` flag, cache keys, golden scenarios).
"""

from __future__ import annotations

from .base import CommitProtocol

__all__ = ["CommitProtocol", "get_protocol", "protocol_names", "register"]

#: Built-in protocols, importable lazily (module name per protocol).
_BUILTINS = {
    "optimistic": "optimistic",
    "2pc": "twophase",
    "epoch": "epoch",
}

_REGISTRY: dict[str, type[CommitProtocol]] = {}


def register(cls: type[CommitProtocol]) -> type[CommitProtocol]:
    """Class decorator adding a protocol to the registry by its name."""
    name = cls.name
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"protocol class {cls.__name__} must define a non-empty "
            f"``name``")
    _REGISTRY[name] = cls
    return cls


def protocol_names() -> tuple[str, ...]:
    """Every registered protocol name (built-ins first, stable order)."""
    names = dict.fromkeys(_BUILTINS)
    names.update(dict.fromkeys(_REGISTRY))
    return tuple(names)


def get_protocol(name: str) -> CommitProtocol:
    """Resolve a protocol name to a fresh protocol instance.

    Raises a clean :class:`ValueError` naming the registered protocols
    for unknown names -- the error surfaced by both
    ``SystemConfig.validate()`` and the CLI ``--protocol`` flag.
    """
    if name not in _REGISTRY and name in _BUILTINS:
        import importlib

        importlib.import_module(f".{_BUILTINS[name]}", __package__)
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown commit protocol {name!r}; registered protocols: "
            f"{', '.join(protocol_names())}")
    return cls()
