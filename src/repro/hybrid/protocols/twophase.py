"""Primary-copy two-phase commit (protocol ``2pc``).

The central site is the primary-copy coordinator for every updating
commit.  The two legs:

* **Site-coordinated leg** (local class A commits).  Where the
  optimistic protocol commits locally and propagates updates
  asynchronously, 2PC blocks: the site sends a :class:`TxnPrepare`,
  keeps its locks and enters the *in-doubt* state until the
  coordinator's :class:`TxnVote` arrives.  A granted vote commits the
  transaction (updates applied at the master replica, a
  :class:`TxnDecision` carries them to the primary copy); a refusal --
  the updates conflict with another in-doubt transaction at the
  coordinator -- aborts and re-executes it.
* **Central-coordinated leg** (shipped / class B commits).  The stock
  authentication round already *is* a prepare/vote/decision exchange
  (``AuthRequest`` = prepare, ``AuthReply`` = vote, ``CommitOrder`` /
  ``ReleaseOrder`` = decision), and with no asynchronous updates in
  flight the coherence-count NAK can never fire -- so the base
  machinery is reused as-is, with one 2PC refinement at the masters:
  an in-doubt transaction's locks cannot be force-granted away (its
  outcome belongs to the coordinator), so such prepares are voted
  down.

**Blocking on coordinator failure** is the protocol's defining
liability and is modelled faithfully: a prepared transaction waits on
its vote with no watchdog, so a central outage leaves it blocked --
holding its locks -- until the coordinator returns or a hot standby
takes over.  On failover the pending votes resolve as refusals (the
new coordinator has an empty in-doubt registry, so retrying is safe)
and the transactions re-prepare against the standby.
"""

from __future__ import annotations

from ..central import CentralSite
from ..local import LocalSite
from ..protocol import AuthReply, TxnDecision, TxnPrepare, TxnVote
from ..standby import StandbyCentral
from ...sim.engine import Event, Interrupt
from ...sim.spans import PHASE_AUTH
from . import register
from .base import CommitProtocol

__all__ = ["TwoPhaseProtocol", "TwoPhaseLocalSite", "TwoPhaseCentralSite",
           "TwoPhaseStandby"]


class TwoPhaseLocalSite(LocalSite):
    """Local site under primary-copy 2PC: prepared commits block."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Transactions between prepare and vote (holding their locks).
        self._indoubt: set[int] = set()
        #: txn_id -> Event the committing process is blocked on.
        self._pending_votes: dict[int, Event] = {}

    # -- the site-coordinated leg -------------------------------------------

    def _commit_phase(self, txn):
        updates = txn.update_entities
        if not updates:
            # Read-only commits have nothing to coordinate; the base
            # commit is pure local bookkeeping then (no propagation).
            self._commit(txn)
            return True
        done = Event(self.env)
        self._pending_votes[txn.txn_id] = done
        self._indoubt.add(txn.txn_id)
        self.metrics.record_protocol_event("prepare-sent")
        self._send_central("prepare", TxnPrepare(
            txn_id=txn.txn_id, site=self.site_id, updates=updates))
        # Blocking window: locks held, no watchdog -- coordinator
        # failure leaves this transaction in-doubt until failover.
        txn.spans.enter(PHASE_AUTH, self.env.now)
        try:
            vote = yield done
        except Interrupt:
            txn.spans.exit(self.env.now)
            raise
        finally:
            self._pending_votes.pop(txn.txn_id, None)
            self._indoubt.discard(txn.txn_id)
        txn.spans.exit(self.env.now)
        if not vote.granted:
            self.metrics.record_protocol_event("vote-refused")
            txn.record_abort()
            self.metrics.record_abort(txn, "local-invalidated")
            return False  # re-execute, locks kept (Section 3.1 rule)
        self.metrics.record_protocol_event("vote-granted")
        # Phase 2: commit locally and tell the primary copy.
        self._send_central("decision", TxnDecision(
            txn_id=txn.txn_id, site=self.site_id, commit=True,
            updates=updates))
        self.locks.release_all(txn.txn_id)
        txn.locked_entities.clear()
        self.data.apply_updates(updates)
        txn.complete(self.env.now)
        self.metrics.record_completion(txn)
        self.router.observe_completion(txn)
        return True

    # -- the central-coordinated leg at the master --------------------------

    def _handle_auth(self, request):
        blocked = any(
            holder in self._indoubt
            for entity, _mode in request.references
            for holder in self.locks.held_modes(entity))
        if blocked:
            # An in-doubt holder cannot be evicted: its outcome is owned
            # by the coordinator's vote, not this authentication round.
            yield from self.cpu_burst(self.config.instr_auth_master)
            self.metrics.record_protocol_event("indoubt-refusal")
            self._send_central("auth-reply", AuthReply(
                auth_id=request.auth_id, txn_id=request.txn_id,
                site=self.site_id, granted=False,
                aborted_local_txns=()))
            return
        yield from super()._handle_auth(request)

    # -- message plumbing ----------------------------------------------------

    def _on_central_message(self, message):
        payload = message.payload
        if isinstance(payload, TxnVote):
            if payload.snapshot.time > self.central_snapshot.time:
                self.central_snapshot = payload.snapshot
            # Popped here (not on wakeup) so a duplicate vote can never
            # hit an already-succeeded event.
            done = self._pending_votes.pop(payload.txn_id, None)
            if done is not None:
                done.succeed(payload)
            return
        super()._on_central_message(message)

    # -- recovery hooks ------------------------------------------------------

    def _on_failover(self, notice):
        if self.on_standby:
            return
        super()._on_failover(notice)
        # Blocked-on-coordinator-failure resolution: the standby has an
        # empty in-doubt registry, so failing the pending votes (abort,
        # re-execute, re-prepare against the new coordinator) is safe.
        for txn_id in sorted(self._pending_votes):
            done = self._pending_votes.pop(txn_id)
            self.metrics.record_protocol_event("blocked-resolved")
            done.succeed(TxnVote(txn_id=txn_id, granted=False,
                                 snapshot=notice.snapshot))

    def on_crash(self) -> None:
        super().on_crash()
        # The blocked processes were interrupted with the rest; the
        # in-doubt bookkeeping dies with the volatile state.
        self._pending_votes.clear()
        self._indoubt.clear()


class TwoPhaseCentralMixin:
    """Coordinator state shared by the primary and the hot standby."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: txn_id -> its TxnPrepare, between vote and decision.
        self._indoubt_sites: dict[int, TxnPrepare] = {}
        #: entity -> in-doubt txn_id (the conflict-detection index).
        self._indoubt_entities: dict[int, int] = {}

    def _handle_site_message(self, site_id, message):
        payload = message.payload
        if isinstance(payload, TxnPrepare):
            yield from self._handle_prepare(payload)
        elif isinstance(payload, TxnDecision):
            yield from self._handle_decision(payload)
        else:
            yield from super()._handle_site_message(site_id, message)

    def _handle_prepare(self, prepare: TxnPrepare):
        """Phase 1 at the coordinator: vote on a site's updating commit.

        Refused iff an update conflicts with a transaction that is
        in-doubt *here* -- two prepared transactions must never overlap,
        since both outcomes are already promised.  Conflicts with
        running central transactions resolve the other way (site wins):
        their central locks are invalidated at decision time, exactly
        like the optimistic protocol's update application.
        """
        yield from self.cpu_burst(self.config.instr_auth_central)
        granted = not any(entity in self._indoubt_entities
                          for entity in prepare.updates)
        if granted:
            self._indoubt_sites[prepare.txn_id] = prepare
            for entity in prepare.updates:
                self._indoubt_entities[entity] = prepare.txn_id
            self.metrics.record_protocol_event("prepare-granted")
        else:
            self.metrics.record_protocol_event("prepare-refused")
        self.metrics.record_auth_round(granted)
        self._send(prepare.site, "vote", TxnVote(
            txn_id=prepare.txn_id, granted=granted,
            snapshot=self.snapshot()))

    def _handle_decision(self, decision: TxnDecision):
        """Phase 2: settle an in-doubt transaction at the primary copy."""
        prepare = self._indoubt_sites.pop(decision.txn_id, None)
        if prepare is None:
            return  # stale decision (post-failover straggler)
        for entity in prepare.updates:
            if self._indoubt_entities.get(entity) == decision.txn_id:
                del self._indoubt_entities[entity]
        if not decision.commit:
            self.metrics.record_protocol_event("decision-abort")
            return
        self.metrics.record_protocol_event("decision-commit")
        yield from self.cpu_burst(self.config.instr_update_apply)
        self.data.apply_updates(decision.updates)
        for entity in decision.updates:
            for holder_id in list(self.locks.held_modes(entity)):
                victim = self.active.get(holder_id)
                if victim is not None and not victim.marked_for_abort:
                    victim.mark_for_abort("invalidated-by-update")
        self._ship_log("commit", (tuple(decision.updates),))

    def _on_deposed(self) -> None:
        super()._on_deposed()
        self._indoubt_sites.clear()
        self._indoubt_entities.clear()


class TwoPhaseCentralSite(TwoPhaseCentralMixin, CentralSite):
    """The primary-copy coordinator."""


class TwoPhaseStandby(TwoPhaseCentralMixin, StandbyCentral):
    """Hot standby under 2PC: takes over with an empty in-doubt
    registry; blocked site transactions resolve via refused votes and
    re-prepare here."""


@register
class TwoPhaseProtocol(CommitProtocol):
    """Primary-copy two-phase commit."""

    name = "2pc"

    messages_per_local_commit = ("3 synchronous messages: ``TxnPrepare`` "
                                 "+ ``TxnVote`` + ``TxnDecision``")
    blocking = ("blocking: prepared transactions hold their locks until "
                "the coordinator votes -- including across coordinator "
                "failure (resolved only by failover)")
    consistency = ("primary copy synchronous at decision time; exact "
                   "after drain")

    def make_local(self, env, site_id, config, system, router):
        return TwoPhaseLocalSite(env, site_id, config, system, router)

    def make_central(self, env, config, system, partition):
        return TwoPhaseCentralSite(env, config, system, partition)

    def make_standby(self, env, config, system, partition):
        return TwoPhaseStandby(env, config, system, partition)
