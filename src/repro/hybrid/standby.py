"""Hot-standby central complex: log-shipped replica, lease, takeover.

:class:`StandbyCentral` is a second :class:`~repro.hybrid.central.CentralSite`
kept warm next to the primary.  While the primary is alive the standby

* receives the primary's applied update stream as :class:`LogRecord`
  frames over a reliable log channel and replays it into its own
  replica (deduplicated by ``(site, seq)`` so direct re-sends after a
  failover compose with the shipped log);
* tracks the primary's liveness by :class:`Heartbeat` beacons sent
  *unreliably* on the same link pair -- silence, not a nack, signals
  death.

When the heartbeat lease expires the standby deterministically takes
over: it pays a takeover CPU burst, assumes the central role, and
broadcasts :class:`FailoverNotice` to every site over its own
(pre-wired, independent) site links.  Sites re-point their routing,
settle in-flight shipments (class A re-runs locally, class B re-ships
here), release the dead primary's master locks and re-send
unacknowledged update batches -- the conservative abort-and-retry
resolution of everything that was in flight.  A reliable
:class:`TakeoverNotice` deposes the primary once the partition heals.

Failover is sticky: the primary never reclaims the role within a run.
The standby exists only when the fault plan's
:class:`~repro.sim.faults.RecoveryPolicy` enables ``failover``, so
plain and failover-disabled runs are untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..db.workload import LockSpacePartition
from ..sim.engine import Environment
from ..sim.network import Link, Message, ReliableEndpoint
from .central import CentralSite
from .protocol import FailoverNotice, Heartbeat, LogRecord, TakeoverNotice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.faults import RecoveryPolicy
    from .config import SystemConfig
    from .system import HybridSystem

__all__ = ["StandbyCentral"]


class StandbyCentral(CentralSite):
    """The backup central complex (see module docstring)."""

    def __init__(self, env: Environment, config: "SystemConfig",
                 system: "HybridSystem", partition: LockSpacePartition):
        super().__init__(env, config, system, partition, name="standby")
        #: True once this standby has assumed the central role.
        self.is_active = False
        self.last_heartbeat = 0.0
        #: Both directions of the primary<->standby log link pair
        #: (severed together by a central outage).
        self.log_links: tuple[Link, ...] = ()

    def start_standby(self, endpoint: ReliableEndpoint,
                      in_link: Link, log_links: tuple[Link, ...]) -> None:
        """Wire the standby side of the log channel and arm the lease."""
        self.log_endpoint = endpoint
        self.log_in = in_link
        self.log_links = log_links
        self.last_heartbeat = self.env.now
        self.env.process(self._log_dispatch(),
                         name="standby:log-dispatch")
        self.env.process(self._lease_monitor(),
                         name="standby:lease-monitor")

    def _ship_log(self, kind: str, updates, site=None, seq: int = 0) -> None:
        """The standby has no standby of its own: nothing to ship."""
        return

    # -- log stream ----------------------------------------------------------

    def _log_dispatch(self):
        while True:
            message = yield self.log_in.mailbox.get()
            for delivered in self.log_endpoint.pump(message):
                payload = delivered.payload
                if isinstance(payload, Heartbeat):
                    self.last_heartbeat = self.env.now
                elif isinstance(payload, LogRecord):
                    yield from self._apply_log(payload)

    def _apply_log(self, record: LogRecord):
        """Replay one shipped log record into the standby replica."""
        if not self._mark_batch(record.site, record.seq):
            return
        instr = self.recovery.instr_log_replay if self.recovery else 0
        if instr:
            yield from self.cpu_burst(instr * max(1, len(record.updates)))
        entities = tuple(entity for group in record.updates
                         for entity in group)
        if not entities:
            return
        self.data.apply_updates(entities)
        if self.is_active and self.active:
            # Post-takeover stragglers from the dying primary can still
            # invalidate transactions now running here.
            for entity in entities:
                for holder_id in list(self.locks.held_modes(entity)):
                    victim = self.active.get(holder_id)
                    if victim is not None and not victim.marked_for_abort:
                        victim.mark_for_abort("invalidated-by-update")

    # -- failure detection and takeover --------------------------------------

    def _lease_monitor(self):
        policy = self.recovery
        while not self.is_active:
            yield self.env.timeout(policy.heartbeat_interval)
            if self.env.now - self.last_heartbeat > policy.lease_timeout:
                yield from self._take_over()
                return

    def _take_over(self):
        """Assume the central role (the lease expired).

        The recovery clock starts at the last heartbeat actually heard
        -- the latest instant the primary was provably alive, within
        one heartbeat interval of the real failure -- and stops when the
        failover notices are broadcast.
        """
        failed_at = self.last_heartbeat
        yield from self.cpu_burst(self.recovery.instr_takeover)
        self.is_active = True
        snapshot = self.snapshot()
        for site_id in range(len(self.to_sites)):
            self._send(site_id, "failover",
                       FailoverNotice(snapshot=snapshot))
        # Depose the primary: reliable, so it lands once the partition
        # heals, whereupon the primary kills its zombie work.
        self.log_endpoint.send(Message(
            kind="takeover", source=self.name,
            payload=TakeoverNotice(time=self.env.now)))
        self.metrics.record_takeover("takeover")
        self.metrics.record_recovery("failover", None, failed_at,
                                     self.env.now)
