"""Windowed time-series telemetry for hybrid-system runs.

The scalar summaries in :class:`~repro.hybrid.metrics.SimulationResult`
average the whole measurement window; they cannot show *when* a run
saturated, whether the warm-up deletion was long enough, or how routing
reacted to a transient.  :class:`TelemetrySampler` fills that gap: on a
fixed simulated-time interval it snapshots

* counter deltas from the metrics collector -- completions, aborts,
  negative acknowledgements, class A arrivals/shipments, messages;
* instantaneous state -- per-site populations and CPU queue lengths;
* per-window CPU utilisations (busy-time deltas of the site resources);

into :class:`TelemetryWindow` records held in a fixed-capacity ring
buffer (:class:`TelemetrySeries`), so even very long runs keep bounded
memory (the eviction count is reported, never silent).

The series also powers a *warm-up adequacy check*: if the post-warm-up
windows still trend (first-half vs second-half means differ beyond
tolerance), the run's steady-state averages are suspect and the result
is flagged via ``SimulationResult.warmup_adequate``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

__all__ = ["TelemetryWindow", "TelemetrySeries", "TelemetrySampler",
           "TELEMETRY_FIELDS"]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .system import HybridSystem

#: Column order used by the exporters (CSV header / JSON rows).
TELEMETRY_FIELDS = [
    "start", "end", "completed", "throughput", "aborts", "abort_rate",
    "negative_acks", "class_a_arrivals", "shipped", "shipped_fraction",
    "messages", "n_local", "n_central", "population", "local_queue",
    "central_queue", "local_utilization", "central_utilization",
]


@dataclass(frozen=True)
class TelemetryWindow:
    """One sampling window of run telemetry.

    Counter fields are deltas over ``[start, end)``; populations and
    queue lengths are instantaneous samples at ``end``; utilisations are
    busy-time fractions over the window.  Counter-based columns are zero
    during warm-up by construction (the metrics collector discards
    pre-warm-up observations), while the state columns remain meaningful
    -- which is exactly what makes the warm-up transient visible.
    """

    start: float
    end: float
    completed: int
    aborts: int
    negative_acks: int
    class_a_arrivals: int
    shipped: int
    messages: int
    n_local: int
    n_central: int
    local_queue: float
    central_queue: float
    local_utilization: float
    central_utilization: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Committed transactions per second within the window."""
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def abort_rate(self) -> float:
        """Aborts per committed transaction within the window."""
        if self.completed == 0:
            return 0.0
        return self.aborts / self.completed

    @property
    def shipped_fraction(self) -> float:
        if self.class_a_arrivals == 0:
            return 0.0
        return self.shipped / self.class_a_arrivals

    @property
    def population(self) -> int:
        """Transactions in the system (all sites plus central)."""
        return self.n_local + self.n_central

    def to_row(self) -> dict[str, float | int]:
        """Flat dict in :data:`TELEMETRY_FIELDS` order (for exporters)."""
        return {name: getattr(self, name) for name in TELEMETRY_FIELDS}


class TelemetrySeries:
    """Fixed-capacity ring buffer of :class:`TelemetryWindow` records."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[TelemetryWindow] = deque(maxlen=capacity)
        self.dropped = 0

    def append(self, window: TelemetryWindow) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(window)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def windows(self) -> tuple[TelemetryWindow, ...]:
        return tuple(self._ring)

    def post_warmup(self, warmup_time: float) -> tuple[TelemetryWindow, ...]:
        """Windows lying entirely after the warm-up deletion point."""
        return tuple(window for window in self._ring
                     if window.start >= warmup_time - 1e-9)

    # -- warm-up adequacy ---------------------------------------------------

    @staticmethod
    def drift(values: Sequence[float]) -> float:
        """Relative first-half vs second-half drift of a series.

        Zero for a perfectly stationary series; positive when the second
        half runs higher, negative when it runs lower.  The denominator
        is the larger half-mean magnitude so the statistic stays bounded
        for near-zero series.
        """
        n = len(values)
        if n < 4:
            return 0.0
        half = n // 2
        first = sum(values[:half]) / half
        second = sum(values[n - half:]) / half
        scale = max(abs(first), abs(second), 1e-12)
        return (second - first) / scale

    def warmup_trend(self, warmup_time: float) -> dict[str, float]:
        """Drift of the stationarity-sensitive metrics after warm-up."""
        windows = self.post_warmup(warmup_time)
        return {
            "throughput": self.drift([w.throughput for w in windows]),
            "population": self.drift([float(w.population)
                                      for w in windows]),
            "central_queue": self.drift([w.central_queue
                                         for w in windows]),
        }

    def warmup_adequate(self, warmup_time: float,
                        tolerance: float = 0.5) -> bool | None:
        """Whether the post-warm-up series looks trend-free.

        Returns ``None`` when fewer than four post-warm-up windows exist
        (too little data to judge).  A run that saturates *during* the
        measurement window -- queues still growing -- shows a large
        positive population drift and is flagged inadequate.
        """
        if len(self.post_warmup(warmup_time)) < 4:
            return None
        trend = self.warmup_trend(warmup_time)
        return all(abs(drift) <= tolerance for drift in trend.values())


class TelemetrySampler:
    """Periodic sampling process feeding a :class:`TelemetrySeries`.

    Attach to a wired :class:`~repro.hybrid.system.HybridSystem`; the
    sampler registers its own simulation process and snapshots every
    ``interval`` simulated seconds.  Call :meth:`rebase` whenever the
    system resets its utilisation integrals (warm-up deletion) so the
    busy-time deltas stay consistent.
    """

    def __init__(self, system: "HybridSystem", interval: float = 1.0,
                 capacity: int = 512):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.system = system
        self.env = system.env
        self.interval = float(interval)
        self.series = TelemetrySeries(capacity)
        metrics = system.metrics
        self._last_counters = self._counters(metrics)
        self._last_busy = self._busy_times()
        self.env.process(self._loop(), name="telemetry")

    # -- sampling ------------------------------------------------------------

    @staticmethod
    def _counters(metrics) -> dict[str, int]:
        return {
            "completed": metrics.completed,
            "aborts": metrics.aborts_total,
            "negative_acks": metrics.auth_negative_acks,
            "class_a_arrivals": metrics.class_a_arrivals,
            "shipped": metrics.class_a_shipped,
            "messages": (metrics.messages_to_central +
                         metrics.messages_to_sites),
        }

    def _busy_times(self) -> tuple[float, float]:
        local = sum(site.cpu.busy_time() for site in self.system.sites)
        return local, self.system.central.cpu.busy_time()

    def rebase(self) -> None:
        """Re-anchor busy-time baselines after a utilisation reset."""
        self._last_busy = self._busy_times()

    def _loop(self):
        while True:
            start = self.env.now
            yield self.env.timeout(self.interval)
            self._snapshot(start, self.env.now)

    def _snapshot(self, start: float, end: float) -> None:
        system = self.system
        counters = self._counters(system.metrics)
        delta = {key: counters[key] - self._last_counters[key]
                 for key in counters}
        self._last_counters = counters
        local_busy, central_busy = self._busy_times()
        duration = max(end - start, 1e-12)
        n_sites = max(len(system.sites), 1)
        local_util = max(local_busy - self._last_busy[0], 0.0) / \
            (duration * n_sites)
        central_util = max(central_busy - self._last_busy[1], 0.0) / \
            duration
        self._last_busy = (local_busy, central_busy)
        mean_local_queue = (sum(site.cpu_queue_length
                                for site in system.sites) / n_sites)
        self.series.append(TelemetryWindow(
            start=start,
            end=end,
            completed=delta["completed"],
            aborts=delta["aborts"],
            negative_acks=delta["negative_acks"],
            class_a_arrivals=delta["class_a_arrivals"],
            shipped=delta["shipped"],
            messages=delta["messages"],
            n_local=system.n_local_total,
            n_central=system.n_central,
            local_queue=mean_local_queue,
            central_queue=float(system.central.cpu_queue_length),
            local_utilization=local_util,
            central_utilization=central_util,
        ))
