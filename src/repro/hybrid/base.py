"""Shared machinery for local and central site processors.

A site owns a single CPU (the paper's sites are uniprocessors rated in
MIPS) and a lock manager.  Transactions use the CPU in *bursts*: the
paper specifies that "the CPU is released by a transaction when lock
contention occurs, for each I/O, and for the communication to another
site", which is exactly the request/hold/release pattern of
:meth:`SiteBase.cpu_burst`.  CPU service times are deterministic,
computed from instruction pathlengths and the site's MIPS rating (the
paper stresses they are *not* exponentially distributed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..db.locks import LockManager
from ..sim.engine import Environment
from ..sim.resources import Resource
from ..sim.spans import (
    PHASE_CPU_SERVICE,
    PHASE_CPU_WAIT,
    PHASE_IO,
    PHASE_LOCK_WAIT,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..db.transaction import Reference, Transaction
    from .config import SystemConfig

__all__ = ["SiteBase"]


class SiteBase:
    """Common CPU / lock-table behaviour of local and central sites."""

    def __init__(self, env: Environment, config: "SystemConfig",
                 mips: float, name: str):
        self.env = env
        self.config = config
        self.mips = mips
        self.name = name
        self.cpu = Resource(env, capacity=1)
        self.locks = LockManager(env, name=name)
        #: Fault injection: CPU service-time multiplier (1.0 = healthy)
        #: and crash flag (a down site rejects new arrivals).
        self.service_scale = 1.0
        self.down = False

    def service_time(self, instructions: float) -> float:
        """Deterministic CPU time for an instruction pathlength."""
        return instructions * self.service_scale / (self.mips * 1_000_000.0)

    def cpu_burst(self, instructions: float,
                  txn: "Transaction | None" = None):
        """Process fragment: queue for the CPU, hold it, release it.

        Use as ``yield from site.cpu_burst(n_instr)`` inside a process.
        Zero-instruction bursts complete immediately without touching the
        CPU queue.  Passing ``txn`` attributes the queueing and service
        time to that transaction's lifecycle spans.
        """
        if instructions <= 0:
            return
        spans = None if txn is None else txn.spans
        with self.cpu.request() as grant:
            if spans is not None:
                spans.enter(PHASE_CPU_WAIT, self.env.now)
            yield grant
            if spans is not None:
                spans.enter(PHASE_CPU_SERVICE, self.env.now)
            yield self.env.timeout(self.service_time(instructions))
        if spans is not None:
            spans.exit(self.env.now)

    def io_wait(self, seconds: float, txn: "Transaction | None" = None):
        """Process fragment: a synchronous I/O (CPU is not held)."""
        if seconds <= 0:
            return
        spans = None if txn is None else txn.spans
        if spans is not None:
            spans.enter(PHASE_IO, self.env.now)
        yield self.env.timeout(seconds)
        if spans is not None:
            spans.exit(self.env.now)

    def lock_wait(self, txn: "Transaction", reference: "Reference"):
        """Process fragment: acquire one lock, span-attributing the wait.

        Raises :class:`~repro.db.locks.DeadlockError` (from the grant
        event) when the transaction is chosen as a deadlock victim, with
        the elapsed wait still attributed to the ``lock-wait`` phase.
        """
        grant = self.locks.acquire(txn.txn_id, reference.entity,
                                   reference.mode)
        txn.spans.enter(PHASE_LOCK_WAIT, self.env.now)
        try:
            yield grant
        finally:
            txn.spans.exit(self.env.now)
        txn.locked_entities.append(reference.entity)

    @property
    def cpu_queue_length(self) -> int:
        """Jobs queued for plus running on the CPU (the paper's ``q``)."""
        return self.cpu.queue_length
