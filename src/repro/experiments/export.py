"""CSV export of experiment results.

``figure_to_csv`` flattens a :class:`~repro.experiments.figures.FigureData`
into one row per (curve, rate) with every recorded metric, so reproduced
figures can be re-plotted with any external tool.  Pure standard library
(csv module), no plotting dependency.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .figures import FigureData
from .runner import Curve

__all__ = ["curve_rows", "figure_to_csv", "write_figure_csv"]

FIELDS = [
    "figure", "curve", "comm_delay", "total_rate", "mean_response_time",
    "throughput", "shipped_fraction", "abort_rate", "local_utilization",
    "central_utilization",
]


def curve_rows(curve: Curve, figure_id: str = "") -> list[dict[str, object]]:
    """Flatten one curve into CSV-ready dictionaries."""
    rows = []
    for point in curve.points:
        rows.append({
            "figure": figure_id,
            "curve": curve.label,
            "comm_delay": curve.comm_delay,
            "total_rate": point.total_rate,
            "mean_response_time": point.mean_response_time,
            "throughput": point.throughput,
            "shipped_fraction": point.shipped_fraction,
            "abort_rate": point.abort_rate,
            "local_utilization": point.local_utilization,
            "central_utilization": point.central_utilization,
        })
    return rows


def figure_to_csv(figure: FigureData) -> str:
    """Render a reproduced figure as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for curve in figure.curves:
        for row in curve_rows(curve, figure_id=figure.figure_id):
            writer.writerow(row)
    return buffer.getvalue()


def write_figure_csv(figure: FigureData, path: str | Path) -> Path:
    """Write the CSV next to wherever the caller wants it; returns path."""
    target = Path(path)
    target.write_text(figure_to_csv(figure), encoding="utf-8")
    return target
