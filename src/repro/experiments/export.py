"""Export of experiment results: figure CSV, JSONL traces, telemetry.

Three export surfaces, all pure standard library:

* ``figure_to_csv`` flattens a
  :class:`~repro.experiments.figures.FigureData` into one row per
  (curve, rate) with every recorded metric, so reproduced figures can be
  re-plotted with any external tool.
* ``write_trace_jsonl`` / ``trace_jsonl_lines`` serialise a
  :class:`~repro.sim.trace.Tracer`'s structured event log as JSON Lines
  (one object per record: ``{"time": ..., "kind": ..., <details>}``),
  the format every log pipeline ingests directly.
* ``write_telemetry`` / ``telemetry_to_csv`` / ``telemetry_to_json``
  dump a run's windowed time-series telemetry (see
  :mod:`repro.hybrid.telemetry`) as CSV rows or a JSON document that
  also carries the run's response-time decomposition, warm-up adequacy
  verdict and engine profile.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..hybrid.telemetry import TELEMETRY_FIELDS
from .figures import FigureData
from .runner import Curve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hybrid.metrics import SimulationResult
    from ..sim.trace import NullTracer, Tracer

__all__ = [
    "curve_rows",
    "figure_to_csv",
    "write_figure_csv",
    "trace_jsonl_lines",
    "write_trace_jsonl",
    "decomposition_rows",
    "telemetry_rows",
    "telemetry_to_csv",
    "telemetry_to_json",
    "write_telemetry",
]

FIELDS = [
    "figure", "curve", "comm_delay", "total_rate", "mean_response_time",
    "throughput", "shipped_fraction", "abort_rate", "local_utilization",
    "central_utilization", "n_replications", "rt_half_width",
    "rt_relative_half_width", "variance_reduction", "availability",
    "mttr",
]


def _recovery_columns(point) -> tuple[object, object]:
    """Cross-replication availability and MTTR of one curve point.

    Fault-free sweeps report availability 1.0 and an empty MTTR cell;
    points without attached replications (hand-built in tests) report
    the same neutral values.
    """
    replications = getattr(point, "replications", ()) or ()
    if not replications:
        return 1.0, ""
    availability = (sum(r.availability for r in replications) /
                    len(replications))
    mttrs = [r.mttr for r in replications if r.mttr is not None]
    mttr = sum(mttrs) / len(mttrs) if mttrs else ""
    return availability, mttr


def curve_rows(curve: Curve, figure_id: str = "") -> list[dict[str, object]]:
    """Flatten one curve into CSV-ready dictionaries.

    The three precision columns (``n_replications``, ``rt_half_width``,
    ``rt_relative_half_width``) record how many replications back each
    point and the achieved cross-replication confidence half-width --
    constant across a fixed grid, per-point under adaptive replication
    control.  ``variance_reduction`` is the control-variate
    variance-reduction ratio behind those half-widths; the cell is
    empty on points assembled without control variates.
    """
    rows = []
    for point in curve.points:
        availability, mttr = _recovery_columns(point)
        variance_reduction = getattr(point, "variance_reduction", None)
        rows.append({
            "figure": figure_id,
            "curve": curve.label,
            "comm_delay": curve.comm_delay,
            "total_rate": point.total_rate,
            "mean_response_time": point.mean_response_time,
            "throughput": point.throughput,
            "shipped_fraction": point.shipped_fraction,
            "abort_rate": point.abort_rate,
            "local_utilization": point.local_utilization,
            "central_utilization": point.central_utilization,
            "n_replications": point.n_replications,
            "rt_half_width": point.rt_half_width,
            "rt_relative_half_width": point.rt_relative_half_width,
            "variance_reduction": (variance_reduction
                                   if variance_reduction is not None
                                   else ""),
            "availability": availability,
            "mttr": mttr,
        })
    return rows


def figure_to_csv(figure: FigureData) -> str:
    """Render a reproduced figure as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for curve in figure.curves:
        for row in curve_rows(curve, figure_id=figure.figure_id):
            writer.writerow(row)
    return buffer.getvalue()


def write_figure_csv(figure: FigureData, path: str | Path) -> Path:
    """Write the CSV next to wherever the caller wants it; returns path."""
    target = Path(path)
    target.write_text(figure_to_csv(figure), encoding="utf-8")
    return target


# -- JSONL trace export ------------------------------------------------------

def trace_jsonl_lines(tracer: "Tracer | NullTracer") -> Iterator[str]:
    """One compact JSON object per buffered trace record."""
    for record in tracer.records:
        yield json.dumps(record.as_dict(), separators=(",", ":"),
                         default=str)


def write_trace_jsonl(tracer: "Tracer | NullTracer",
                      path: str | Path) -> Path:
    """Write a tracer's event log as JSON Lines.

    Only the in-memory buffer is written; when the tracer's
    ``max_records`` cap dropped records, a final summary object with
    ``"kind": "trace-truncated"`` records how many are missing (a
    truncated export must never masquerade as complete).
    """
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for line in trace_jsonl_lines(tracer):
            handle.write(line + "\n")
        dropped = getattr(tracer, "dropped", 0)
        if dropped:
            handle.write(json.dumps(
                {"kind": "trace-truncated", "dropped": dropped},
                separators=(",", ":")) + "\n")
    return target


# -- telemetry + decomposition export ----------------------------------------

def decomposition_rows(result: "SimulationResult") \
        -> list[dict[str, object]]:
    """Per-phase rows of the response-time decomposition."""
    mean_rt = result.mean_response_time
    rows = []
    for phase, seconds in result.response_time_decomposition.items():
        rows.append({
            "phase": phase,
            "mean_seconds": seconds,
            "fraction": seconds / mean_rt if mean_rt else 0.0,
        })
    return rows


def telemetry_rows(result: "SimulationResult") -> list[dict[str, object]]:
    """One flat dict per telemetry window, in sampling order."""
    return [window.to_row() for window in result.telemetry]


def telemetry_to_csv(result: "SimulationResult") -> str:
    """Windowed telemetry as CSV text (columns: TELEMETRY_FIELDS)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=TELEMETRY_FIELDS)
    writer.writeheader()
    for row in telemetry_rows(result):
        writer.writerow(row)
    return buffer.getvalue()


def telemetry_to_json(result: "SimulationResult") -> str:
    """Windowed telemetry plus run metadata as a JSON document.

    The document carries everything needed to interpret the series
    without the Python objects: run identity, the window interval,
    eviction count, warm-up adequacy verdict, the response-time
    decomposition and the engine profile.
    """
    document = {
        "strategy": result.strategy,
        "total_rate": result.total_rate,
        "comm_delay": result.comm_delay,
        "seed": result.seed,
        "mean_response_time": result.mean_response_time,
        "throughput": result.throughput,
        "interval": result.telemetry_interval,
        "windows_dropped": result.telemetry_windows_dropped,
        "warmup_adequate": result.warmup_adequate,
        "warmup_trend": result.warmup_trend,
        "decomposition": result.response_time_decomposition,
        "availability": {
            "ratio": result.availability,
            "txns_timed_out": result.txns_timed_out,
            "txns_failed_over": result.txns_failed_over,
            "txns_failed": result.txns_failed,
            "txns_cancelled_central": result.txns_cancelled_central,
            "fallback_routings": result.fallback_routings,
            "arrivals_rejected": result.arrivals_rejected,
            "messages_dropped": result.messages_dropped,
            "messages_retransmitted": result.messages_retransmitted,
            "duplicate_messages": result.duplicate_messages,
            "fault_events": result.fault_events,
            "episodes": [
                {
                    "kind": report.kind,
                    "site": report.site,
                    "start": report.start,
                    "end": report.end,
                    "baseline_throughput": report.baseline_throughput,
                    "degraded_throughput": report.degraded_throughput,
                    "time_to_recover": report.time_to_recover,
                    "recovery_time": report.recovery_time,
                }
                for report in result.fault_episodes
            ],
        },
        "recovery": {
            "mttr": result.mttr,
            "mtbf": result.mtbf,
            "failover_takeovers": result.failover_takeovers,
            "site_rejoins": result.site_rejoins,
            "arrivals_shed": result.arrivals_shed,
            "txns_lost_in_crash": result.txns_lost_in_crash,
            "txns_deadline_cancelled": result.txns_deadline_cancelled,
            "txns_reshipped": result.txns_reshipped,
            "breaker_transitions": result.breaker_transitions,
            "recoveries": [
                {
                    "kind": record.kind,
                    "site": record.site,
                    "started": record.started,
                    "completed": record.completed,
                    "duration": record.duration,
                }
                for record in result.recoveries
            ],
        },
        "engine": {
            "events": result.engine_events,
            "events_per_sec": result.engine_events_per_sec,
            "heap_peak": result.engine_heap_peak,
            "wall_clock_seconds": result.wall_clock_seconds,
        },
        "windows": telemetry_rows(result),
    }
    return json.dumps(document, indent=2, default=str)


def write_telemetry(result: "SimulationResult",
                    path: str | Path) -> Path:
    """Write telemetry to ``path``: CSV for ``*.csv``, JSON otherwise."""
    target = Path(path)
    if target.suffix.lower() == ".csv":
        target.write_text(telemetry_to_csv(result), encoding="utf-8")
    else:
        target.write_text(telemetry_to_json(result), encoding="utf-8")
    return target
