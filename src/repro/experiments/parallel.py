"""Parallel experiment execution over a process pool.

Every figure in the paper's evaluation sweeps several strategies over
6-7 arrival rates with independent replications -- an embarrassingly
parallel workload that the serial harness ran on one core.  This module
fans the individual simulations out over a ``multiprocessing`` pool
while keeping the results **bit-identical** to serial execution:

* each job is a self-contained, picklable :class:`JobSpec` carrying the
  fully resolved :class:`~repro.hybrid.config.SystemConfig` (seed
  included, so the seeding discipline -- ``base_seed + r`` by default,
  the rate-keyed common-random-numbers hash under ``RunSettings.crn``
  -- is preserved no matter which worker runs the job, and the
  control-variate fields ride on the result under cache version 4);
* results are reassembled in submission order, so averaging and curve
  construction see exactly the sequence the serial loop produced;
* the two wall-clock profiling fields of a result
  (``engine_events_per_sec`` / ``wall_clock_seconds``) are zeroed --
  they are properties of the host machine, not the simulation, and
  would otherwise break bit-identity between runs;
* ``workers=1`` (the default everywhere) executes in-process with no
  pool, and pool start-up failures fall back to serial execution, so
  platforms without ``fork``/``spawn`` support degrade gracefully.

A :class:`~repro.experiments.cache.ResultCache` can be attached; cached
jobs are satisfied from disk and only the misses are simulated.

For incremental workloads that submit *rounds* of jobs -- the adaptive
replication scheduler keeps resubmitting the unconverged points of a
curve set -- the runner doubles as a context manager: inside a ``with``
block one process pool stays alive across ``run_jobs`` batches instead
of being created and torn down per round.  Results are unchanged
(``execute_job`` is the same function either way); only the pool
start-up cost is amortised.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..hybrid.config import SystemConfig
from ..hybrid.metrics import SimulationResult
from .cache import ResultCache

__all__ = ["JobSpec", "ParallelRunner", "default_workers",
           "execute_job", "strategy_cache_key"]


def default_workers() -> int:
    """Auto-detected worker count: one per available CPU."""
    return max(os.cpu_count() or 1, 1)


def strategy_cache_key(strategy: Any) -> str | None:
    """Stable cache identity of a strategy, or ``None`` if it has none.

    Registry names identify themselves; strategy objects may expose a
    ``cache_key`` attribute (e.g. the figure harness's picklable
    threshold strategies).  Anonymous callables return ``None`` and are
    executed uncached.
    """
    if isinstance(strategy, str):
        return f"name:{strategy}"
    key = getattr(strategy, "cache_key", None)
    if isinstance(key, str):
        return f"object:{key}"
    return None


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: a strategy applied to a resolved configuration.

    ``strategy`` is either a name from :data:`repro.core.STRATEGIES` or
    a callable ``config -> RouterFactory``.  Callable strategies must be
    picklable to run in a pool; unpicklable ones are executed serially
    in the parent process (detected, not crashed on).
    """

    strategy: str | Callable[[SystemConfig], Any]
    config: SystemConfig
    #: Optional fault-injection schedule (``repro.sim.faults.FaultPlan``).
    #: ``None`` -- the default for every pre-existing call site -- keeps
    #: the job and its cache key exactly as before.
    fault_plan: Any = None

    def cache_key(self) -> str | None:
        identity = strategy_cache_key(self.strategy)
        if identity is None:
            return None
        return ResultCache.key_for(self.config, identity,
                                   fault_plan=self.fault_plan)


def _normalize(result: SimulationResult) -> SimulationResult:
    """Zero the wall-clock profiling fields (see module docstring)."""
    return dataclasses.replace(result, engine_events_per_sec=0.0,
                               wall_clock_seconds=0.0)


def execute_job(spec: JobSpec) -> SimulationResult:
    """Run one job to completion (used in workers and for fallback)."""
    from ..core import STRATEGIES
    from ..hybrid.system import HybridSystem

    builder = (STRATEGIES[spec.strategy]
               if isinstance(spec.strategy, str) else spec.strategy)
    router_factory = builder(spec.config)
    return _normalize(HybridSystem(spec.config, router_factory,
                                   fault_plan=spec.fault_plan).run())


def _is_picklable(spec: JobSpec) -> bool:
    try:
        pickle.dumps(spec)
    except Exception:
        return False
    return True


class ParallelRunner:
    """Executes batches of :class:`JobSpec` with caching and a pool.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs serially in-process;
        ``None`` or ``0`` auto-detects one worker per CPU.  On a
        single-CPU host any request collapses to serial execution --
        pool workers would only time-slice one core while paying fork
        and pickling overhead for bit-identical results.
    cache:
        Optional :class:`ResultCache`; hits skip simulation entirely.
    """

    def __init__(self, workers: int | None = 1,
                 cache: ResultCache | None = None):
        if workers is None or workers == 0:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and (os.cpu_count() or 1) == 1:
            workers = 1
        self.workers = workers
        self.cache = cache
        #: Jobs satisfied from the cache / simulated, over this runner's
        #: lifetime (mirrors the cache's own counters but scoped here).
        self.jobs_cached = 0
        self.jobs_executed = 0
        self._persistent = False
        self._pool = None
        self._pool_unavailable = False

    # -- incremental mode ---------------------------------------------------

    def __enter__(self) -> "ParallelRunner":
        """Enter incremental mode: one pool survives across batches."""
        self._persistent = True
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Leave incremental mode and release the persistent pool."""
        self._persistent = False
        self._drop_pool()

    def _drop_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    # -- execution ----------------------------------------------------------

    def run_jobs(self, specs: Sequence[JobSpec]) -> list[SimulationResult]:
        """Run every job, in order, returning one result per spec."""
        specs = list(specs)
        results: list[SimulationResult | None] = [None] * len(specs)
        keys: list[str | None] = [None] * len(specs)

        pending: list[int] = []
        for index, spec in enumerate(specs):
            key = spec.cache_key() if self.cache is not None else None
            keys[index] = key
            if key is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    self.jobs_cached += 1
                    continue
            pending.append(index)

        if pending:
            for index, result in zip(pending, self._execute(
                    [specs[i] for i in pending])):
                results[index] = result
                self.jobs_executed += 1
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], result)

        return results  # type: ignore[return-value]

    def _execute(self, specs: list[JobSpec]) -> list[SimulationResult]:
        """Run the cache misses: pool for picklable jobs, serial rest."""
        if self.workers == 1 or len(specs) < 2:
            return [execute_job(spec) for spec in specs]

        pooled = [i for i, spec in enumerate(specs) if _is_picklable(spec)]
        results: list[SimulationResult | None] = [None] * len(specs)

        if len(pooled) >= 2:
            pool_results = self._run_pool([specs[i] for i in pooled])
            if pool_results is not None:
                for index, result in zip(pooled, pool_results):
                    results[index] = result

        for index, spec in enumerate(specs):
            if results[index] is None:
                results[index] = execute_job(spec)
        return results  # type: ignore[return-value]

    @staticmethod
    def _make_pool(size: int):
        """Create a pool on the platform's best start method, or None."""
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else (
            methods[0] if methods else None)
        if method is None:
            return None
        context = multiprocessing.get_context(method)
        return context.Pool(size)

    def _run_pool(self,
                  specs: list[JobSpec]) -> list[SimulationResult] | None:
        """Map jobs over a process pool; ``None`` if no pool is possible.

        In incremental mode (inside a ``with`` block) the pool is
        created once at full ``workers`` size and reused for every
        subsequent batch; otherwise a right-sized pool lives for this
        batch only.
        """
        if self._pool_unavailable:
            return None
        try:
            if self._persistent:
                if self._pool is None:
                    self._pool = self._make_pool(self.workers)
                    if self._pool is None:
                        self._pool_unavailable = True
                        return None
                return self._pool.map(execute_job, specs, chunksize=1)
            pool = self._make_pool(min(self.workers, len(specs)))
            if pool is None:
                self._pool_unavailable = True
                return None
            with pool:
                return pool.map(execute_job, specs, chunksize=1)
        except (OSError, ImportError):
            # Platform without working process pools (restricted
            # containers, missing sem_open, ...): degrade to serial.
            self._pool_unavailable = True
            self._drop_pool()
            return None
