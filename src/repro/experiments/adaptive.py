"""Adaptive replication control: spend replications where variance is.

The fixed grid spends its wall-clock uniformly -- ``replications`` runs
for every (strategy, rate) point -- even though cross-replication
variance differs wildly across a sweep: low-rate points converge in one
or two replications while the near-saturation knee of every figure needs
many more.  This module turns the replication count into a *precision
target* (:class:`~repro.experiments.runner.PrecisionSettings`):

1. every point starts with ``min_replications`` replications;
2. after each round the t-based confidence interval of the mean
   response time is evaluated (``repro.sim.stats.ReplicationSummary``);
3. points whose relative half-width meets ``rel_precision`` at
   ``confidence`` drop out; the rest receive another ``round_size``
   replications, up to ``max_replications``.

Rounds are batched across *all* unconverged points of the whole curve
set, so a process pool stays saturated while converged points drop out
(the runner is held in incremental mode -- one pool across rounds).

With ``settings.control_variates`` the convergence test in step 2 uses
the regression-adjusted interval
(:meth:`~repro.sim.stats.ReplicationSummary.adjusted_interval`), so
variance the control variates explain away converts directly into
replications never scheduled.

Determinism
-----------

Replication ``r`` of a point always uses
:meth:`~repro.experiments.runner.RunSettings.replication_seed` --
``base_seed + r`` by default, the rate-keyed CRN hash under
``settings.crn`` -- exactly as in the fixed grid, and the scheduling
decisions depend only on the (deterministic) simulation outputs -- so
adaptive runs are bit-reproducible, an adaptive run capped at ``n``
that never converges reproduces the fixed ``replications=n`` grid
field-for-field, and every replication keeps its individual cache
identity: replications simulated by earlier fixed-grid runs are
*fast-forwarded* from the cache (counted, not re-simulated), and
entries written by an adaptive run are byte-equal to the fixed grid's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..hybrid.metrics import SimulationResult
from ..sim.stats import (
    ControlVariateEstimate,
    IntervalEstimate,
    ReplicationSummary,
)
from .cache import ResultCache
from .parallel import JobSpec, ParallelRunner
from .runner import (
    Curve,
    PrecisionSettings,
    StrategyBuilder,
    _assemble_point,
    _check_strategy,
    _point_analytic,
    _replication_spec,
)

__all__ = [
    "ScheduledPoint",
    "PointPrecision",
    "AdaptiveReport",
    "AdaptiveCurveSet",
    "schedule_adaptive",
    "run_adaptive_curve_set",
]


@dataclass(eq=False)  # identity semantics: tasks are deduped by object
class _PointTask:
    """Mutable per-point bookkeeping while the scheduler runs."""

    spec_for: Callable[[int], JobSpec]
    control_variates: bool = False
    analytic: object = None
    results: list[SimulationResult] = field(default_factory=list)
    converged: bool = False

    def estimate(self, confidence: float) -> ControlVariateEstimate:
        """The point's current estimate; the adjusted interval when
        control variates are on (falling back to plain when the
        adjustment is unsafe or not tighter), the plain t-interval
        otherwise."""
        rows = None
        if self.control_variates:
            from ..analysis.variance import point_covariates
            rows = point_covariates(self.results, analytic=self.analytic)
        summary = ReplicationSummary()
        for index, result in enumerate(self.results):
            summary.add_replication(
                result.mean_response_time,
                covariates=rows[index] if rows is not None else None)
        return summary.adjusted_interval(confidence)

    def interval(self, confidence: float) -> IntervalEstimate:
        return self.estimate(confidence).interval


@dataclass(frozen=True)
class ScheduledPoint:
    """One point's outcome from :func:`schedule_adaptive`."""

    results: tuple[SimulationResult, ...]
    interval: IntervalEstimate
    converged: bool
    #: Control-variate variance-reduction ratio (1.0 when the
    #: adjustment was off, unsafe, or not tighter than plain).
    variance_reduction: float = 1.0


@dataclass(frozen=True)
class PointPrecision:
    """Achieved precision of one (curve, rate) point."""

    label: str
    total_rate: float
    n_replications: int
    half_width: float
    relative_half_width: float
    converged: bool
    #: Control-variate variance-reduction ratio behind the half-widths
    #: (1.0 when the adjustment was off or rejected).
    variance_reduction: float = 1.0


@dataclass(frozen=True)
class AdaptiveReport:
    """What the scheduler did: rounds, replication counts, precision."""

    rel_precision: float
    confidence: float
    min_replications: int
    max_replications: int
    rounds: int
    replications_total: int
    replications_cached: int
    replications_executed: int
    points: tuple[PointPrecision, ...]

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def fixed_grid_replications(self) -> int:
        """Replication count of the equivalent fixed grid (the cap)."""
        return len(self.points) * self.max_replications

    @property
    def replications_saved(self) -> int:
        """Replications the fixed grid would have run but we did not."""
        return self.fixed_grid_replications - self.replications_total

    @property
    def all_converged(self) -> bool:
        return all(point.converged for point in self.points)

    @property
    def unconverged_points(self) -> tuple[PointPrecision, ...]:
        """Points still over the precision target at the cap."""
        return tuple(p for p in self.points if not p.converged)

    def summary(self) -> str:
        """One-line account for CLI output; names unconverged points."""
        met = sum(1 for point in self.points if point.converged)
        line = (f"adaptive: {self.replications_total} replication(s) over "
                f"{self.n_points} point(s) in {self.rounds} round(s) "
                f"[fixed grid: {self.fixed_grid_replications}; saved "
                f"{self.replications_saved}; cache fast-forward "
                f"{self.replications_cached}]; {met}/{self.n_points} "
                f"point(s) within +/-{self.rel_precision:.1%}")
        missed = self.unconverged_points
        if missed:
            listing = ", ".join(
                f"{p.label}@{p.total_rate:g} "
                f"(+/-{p.relative_half_width:.1%})" for p in missed)
            line += f"; unconverged at cap: {listing}"
        return line


@dataclass(frozen=True)
class AdaptiveCurveSet:
    """Curves plus the scheduling report of one adaptive run."""

    curves: tuple[Curve, ...]
    report: AdaptiveReport


def schedule_adaptive(spec_factories: Sequence[Callable[[int], JobSpec]],
                      settings: PrecisionSettings,
                      runner: ParallelRunner,
                      analytics: Sequence | None = None,
                      ) -> tuple[list[ScheduledPoint], int]:
    """Run the adaptive scheduling loop over abstract points.

    ``spec_factories[i]`` maps a replication index ``r`` to the
    :class:`JobSpec` of point ``i``'s replication ``r`` -- the curve-set
    and sensitivity harnesses supply different factories but share this
    loop.  With ``settings.control_variates`` the convergence test uses
    the regression-adjusted interval; ``analytics[i]`` optionally
    supplies point ``i``'s external
    :class:`~repro.analysis.variance.AnalyticCovariate`.  Returns the
    per-point outcomes (in input order) and the number of rounds
    submitted.
    """
    if analytics is None:
        analytics = [None] * len(spec_factories)
    tasks = [_PointTask(spec_for=factory,
                        control_variates=settings.control_variates,
                        analytic=analytic)
             for factory, analytic in zip(spec_factories, analytics)]
    rounds = 0
    with runner:
        while True:
            specs: list[JobSpec] = []
            owners: list[_PointTask] = []
            for task in tasks:
                if task.converged:
                    continue
                have = len(task.results)
                if have >= settings.max_replications:
                    continue
                if have < settings.min_replications:
                    target = settings.min_replications
                else:
                    target = min(have + settings.round_size,
                                 settings.max_replications)
                for replication in range(have, target):
                    specs.append(task.spec_for(replication))
                    owners.append(task)
            if not specs:
                break
            rounds += 1
            for task, result in zip(owners, runner.run_jobs(specs)):
                task.results.append(result)
            for task in dict.fromkeys(owners):
                if len(task.results) < settings.min_replications:
                    continue
                estimate = task.interval(settings.confidence)
                if estimate.relative_half_width <= settings.rel_precision:
                    task.converged = True
    outcomes = []
    for task in tasks:
        estimate = task.estimate(settings.confidence)
        outcomes.append(ScheduledPoint(
            results=tuple(task.results),
            interval=estimate.interval,
            converged=task.converged,
            variance_reduction=estimate.variance_reduction))
    return outcomes, rounds


def run_adaptive_curve_set(
        entries: Sequence[tuple[str | StrategyBuilder, str, list[float]]],
        comm_delay: float = 0.2,
        settings: PrecisionSettings | None = None,
        workers: int | None = 1,
        cache: ResultCache | None = None,
        fault_plan=None,
        **config_overrides) -> AdaptiveCurveSet:
    """Run ``(strategy, label, rates)`` sweeps to a precision target.

    The adaptive counterpart of
    :func:`~repro.experiments.runner.run_curve_set` -- same entries,
    same curve output (each :class:`CurvePoint` additionally reporting
    its achieved half-width and replication count) plus an
    :class:`AdaptiveReport` accounting for what was scheduled.
    ``run_curve_set`` delegates here whenever its settings are a
    :class:`PrecisionSettings`; call this directly to get the report.
    """
    settings = settings or PrecisionSettings()
    if not isinstance(settings, PrecisionSettings):
        raise TypeError(
            f"adaptive runs need PrecisionSettings, got "
            f"{type(settings).__name__}")

    def spec_factory(strategy, rate) -> Callable[[int], JobSpec]:
        def make(replication: int) -> JobSpec:
            return _replication_spec(strategy, rate, comm_delay, settings,
                                     config_overrides, replication,
                                     fault_plan=fault_plan)
        return make

    # Strategy-free, so one build serves every curve at that rate; the
    # fault guard in point_covariates disables CV under fault activity,
    # but the analytic build itself is also skipped then (expectations
    # would not hold).
    analytic_by_rate: dict[float, object] = {}
    if settings.control_variates and (
            fault_plan is None or fault_plan.is_empty):
        for _, _, rates in entries:
            for rate in rates:
                if rate not in analytic_by_rate:
                    analytic_by_rate[rate] = _point_analytic(
                        settings, rate, comm_delay, config_overrides)

    factories: list[Callable[[int], JobSpec]] = []
    analytics: list[object] = []
    layout: list[tuple[str, list[float]]] = []
    for strategy, label, rates in entries:
        _check_strategy(strategy)
        for rate in rates:
            factories.append(spec_factory(strategy, rate))
            analytics.append(analytic_by_rate.get(rate))
        layout.append((label, list(rates)))

    runner = ParallelRunner(workers=workers, cache=cache)
    outcomes, rounds = schedule_adaptive(factories, settings, runner,
                                         analytics=analytics)

    curves: list[Curve] = []
    precisions: list[PointPrecision] = []
    cursor = 0
    for label, rates in layout:
        points = []
        for rate in rates:
            outcome = outcomes[cursor]
            cursor += 1
            points.append(_assemble_point(
                rate, outcome.results, confidence=settings.confidence,
                control_variates=settings.control_variates,
                analytic=analytic_by_rate.get(rate)))
            precisions.append(PointPrecision(
                label=label, total_rate=rate,
                n_replications=len(outcome.results),
                half_width=outcome.interval.half_width,
                relative_half_width=outcome.interval.relative_half_width,
                converged=outcome.converged,
                variance_reduction=outcome.variance_reduction))
        curves.append(Curve(label=label, comm_delay=comm_delay,
                            points=tuple(points)))

    report = AdaptiveReport(
        rel_precision=settings.rel_precision,
        confidence=settings.confidence,
        min_replications=settings.min_replications,
        max_replications=settings.max_replications,
        rounds=rounds,
        replications_total=sum(len(o.results) for o in outcomes),
        replications_cached=runner.jobs_cached,
        replications_executed=runner.jobs_executed,
        points=tuple(precisions))
    return AdaptiveCurveSet(curves=tuple(curves), report=report)
