"""Sensitivity analysis over the system parameters.

The paper's conclusions assert that the optimal behaviour "was found to
depend on the communications delay, MIPS at local and central site,
fraction of local transactions, and number of local systems" -- but the
evaluation only varies the delay.  This harness makes the remaining
dependencies measurable: it sweeps one parameter at a time around the
base configuration and reports, per setting, the performance of a fixed
reference strategy set plus the analytically optimal static shipping
probability.

Used by ``benchmarks/test_sensitivity.py``; each sweep returns plain
dataclasses so tests can assert the direction of every dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..core import optimize_static
from ..hybrid.config import SystemConfig, paper_config
from ..sim.stats import ReplicationSummary
from .cache import ResultCache
from .parallel import JobSpec, ParallelRunner
from .report import format_table
from .runner import PrecisionSettings

__all__ = ["SensitivityPoint", "SensitivitySweep", "sweep_parameter"]

#: Strategies every sensitivity point evaluates.
REFERENCE_STRATEGIES = ("none", "static-optimal", "min-average-population")

#: Default value grids per sweepable parameter (CLI --sensitivity).
DEFAULT_SWEEPS: dict[str, tuple[float, ...]] = {
    "comm_delay": (0.1, 0.2, 0.5, 0.8),
    "central_mips": (8.0, 15.0, 30.0),
    "p_local": (0.6, 0.75, 0.9),
    "n_sites": (5, 10, 20),
}


@dataclass(frozen=True)
class SensitivityPoint:
    """One parameter setting: strategy outcomes plus the static optimum.

    ``replication_counts`` / ``rt_half_widths`` are filled whenever the
    sweep runs more than one replication per cell (fixed or adaptive);
    single-run sweeps leave them empty.
    """

    parameter: str
    value: float
    optimal_p_ship: float
    response_times: dict[str, float]
    shipped_fractions: dict[str, float]
    replication_counts: dict[str, int] = field(default_factory=dict)
    rt_half_widths: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class SensitivitySweep:
    """A full one-parameter sweep."""

    parameter: str
    points: tuple[SensitivityPoint, ...]

    def values(self) -> tuple[float, ...]:
        return tuple(point.value for point in self.points)

    def series(self, strategy: str) -> tuple[float, ...]:
        return tuple(point.response_times[strategy]
                     for point in self.points)

    def optimal_p_ships(self) -> tuple[float, ...]:
        return tuple(point.optimal_p_ship for point in self.points)

    def to_table(self) -> str:
        headers = ([self.parameter, "p_ship*"] +
                   [f"RT:{name}" for name in REFERENCE_STRATEGIES])
        rows = []
        for point in self.points:
            rows.append(
                [f"{point.value:g}", f"{point.optimal_p_ship:.2f}"] +
                [f"{point.response_times[name]:.3f}"
                 for name in REFERENCE_STRATEGIES])
        return format_table(headers, rows)


def _configure(parameter: str, value: float,
               base: SystemConfig) -> SystemConfig:
    """Apply one swept parameter to the base configuration."""
    if parameter == "comm_delay":
        return base.with_options(comm_delay=value)
    if parameter == "central_mips":
        return base.with_options(central_mips=value)
    if parameter == "p_local":
        workload = replace(base.workload, p_local=value)
        return base.with_options(workload=workload)
    if parameter == "n_sites":
        n_sites = int(value)
        # Keep the *total* arrival rate constant as the site count
        # changes (per-site rate adjusts), like-for-like comparison.
        total = base.workload.total_arrival_rate
        workload = replace(base.workload, n_sites=n_sites,
                           arrival_rate_per_site=total / n_sites)
        return base.with_options(workload=workload)
    raise ValueError(f"unknown sweep parameter {parameter!r}")


def sweep_parameter(parameter: str, values: Sequence[float],
                    total_rate: float = 25.0,
                    warmup_time: float = 20.0,
                    measure_time: float = 60.0,
                    seed: int = 11_011,
                    workers: int | None = 1,
                    cache: ResultCache | None = None,
                    settings=None) -> SensitivitySweep:
    """Sweep one parameter; everything else stays at the paper's base.

    Every (setting, strategy) simulation is independent, so the whole
    grid runs as one :class:`ParallelRunner` batch; ``workers`` > 1
    fans it over a process pool and ``cache`` reuses completed cells.

    ``settings`` controls *replications only* (the horizon stays with
    the explicit ``warmup_time``/``measure_time`` arguments): a plain
    :class:`~repro.experiments.runner.RunSettings` runs its fixed
    ``replications`` per cell (replication ``r`` seeded ``seed + r``);
    a :class:`~repro.experiments.runner.PrecisionSettings` schedules
    replications adaptively per cell until the precision target or cap
    is reached.  ``None`` (the default) keeps the historical single-run
    behaviour -- and its cache keys, since replication 0 seeds ``seed``.
    """
    configs = []
    for value in values:
        base = paper_config(total_rate=total_rate,
                            warmup_time=warmup_time,
                            measure_time=measure_time, seed=seed)
        configs.append(_configure(parameter, value, base))

    cells = [(config, name)
             for config in configs
             for name in REFERENCE_STRATEGIES]
    runner = ParallelRunner(workers=workers, cache=cache)

    if isinstance(settings, PrecisionSettings):
        from .adaptive import schedule_adaptive

        def cell_factory(name, config):
            def make(replication: int) -> JobSpec:
                return JobSpec(strategy=name, config=config.with_options(
                    seed=seed + replication))
            return make

        outcomes, _ = schedule_adaptive(
            [cell_factory(name, config) for config, name in cells],
            settings, runner)
        cell_results = [list(outcome.results) for outcome in outcomes]
        cell_half_widths = [outcome.interval.half_width
                            for outcome in outcomes]
    else:
        reps = settings.replications if settings is not None else 1
        specs = [JobSpec(strategy=name, config=config.with_options(
                    seed=seed + replication))
                 for config, name in cells
                 for replication in range(reps)]
        flat = runner.run_jobs(specs)
        cell_results = [flat[index * reps:(index + 1) * reps]
                        for index in range(len(cells))]
        cell_half_widths = None

    points = []
    cursor = 0
    for value, config in zip(values, configs):
        optimum = optimize_static(config)
        response_times = {}
        shipped_fractions = {}
        replication_counts = {}
        rt_half_widths = {}
        for name in REFERENCE_STRATEGIES:
            results = cell_results[cursor]
            response_times[name] = (
                sum(r.mean_response_time for r in results) / len(results))
            shipped_fractions[name] = (
                sum(r.shipped_fraction for r in results) / len(results))
            if len(results) > 1:
                replication_counts[name] = len(results)
                if cell_half_widths is not None:
                    rt_half_widths[name] = cell_half_widths[cursor]
                else:
                    summary = ReplicationSummary()
                    for result in results:
                        summary.add_replication(result.mean_response_time)
                    rt_half_widths[name] = summary.interval().half_width
            cursor += 1
        points.append(SensitivityPoint(
            parameter=parameter, value=float(value),
            optimal_p_ship=optimum.p_ship,
            response_times=response_times,
            shipped_fractions=shipped_fractions,
            replication_counts=replication_counts,
            rt_half_widths=rt_half_widths))
    return SensitivitySweep(parameter=parameter, points=tuple(points))
