"""Reproduction scorecard: machine-checked versions of the paper's claims.

Every qualitative claim the paper makes about its figures is encoded
here as a predicate over the reproduced curves.  Running the scorecard
regenerates the evaluation section and reports, claim by claim, whether
this implementation reproduces it.  The benchmark suite asserts the
*must-hold* claims; the scorecard additionally reports the *fine-detail*
claims (close orderings the paper itself presents without error bars).

Usage::

    from repro.experiments import RunSettings
    from repro.experiments.scorecard import run_scorecard

    card = run_scorecard(RunSettings(scale=0.5))
    print(card.to_text())
    assert card.all_essential_pass
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .figures import (
    FigureData,
    figure_4_1,
    figure_4_2,
    figure_4_3,
    figure_4_4,
    figure_4_5,
    figure_4_6,
    figure_4_7,
)
from .report import format_table
from .runner import Curve, RunSettings

__all__ = ["Claim", "ClaimResult", "Scorecard", "run_scorecard"]


@dataclass(frozen=True)
class Claim:
    """One checkable statement from the paper."""

    figure_id: str
    text: str
    essential: bool
    check: Callable[[dict[str, FigureData]], bool]


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    passed: bool


@dataclass(frozen=True)
class Scorecard:
    results: tuple[ClaimResult, ...]

    @property
    def all_essential_pass(self) -> bool:
        return all(result.passed for result in self.results
                   if result.claim.essential)

    @property
    def passed_count(self) -> int:
        return sum(1 for result in self.results if result.passed)

    def to_text(self) -> str:
        headers = ["fig", "claim", "tier", "result"]
        rows = []
        for result in self.results:
            rows.append([
                result.claim.figure_id,
                result.claim.text,
                "essential" if result.claim.essential else "detail",
                "PASS" if result.passed else "MISS",
            ])
        summary = (f"{self.passed_count}/{len(self.results)} claims "
                   f"reproduced; essential claims "
                   f"{'ALL PASS' if self.all_essential_pass else 'FAIL'}")
        return format_table(headers, rows) + "\n\n" + summary


def _rt(curve: Curve, rate: float) -> float:
    return [p.mean_response_time for p in curve.points
            if p.total_rate == rate][0]


def _frac(curve: Curve, rate: float) -> float:
    return [p.shipped_fraction for p in curve.points
            if p.total_rate == rate][0]


def _claims() -> list[Claim]:
    return [
        # -- Figure 4.1 ----------------------------------------------------
        Claim("4.1", "no load sharing saturates near 20 tps", True,
              lambda figs: 15.0 <= figs["4.1"].curve(
                  "no-load-sharing").max_supported_rate() <= 25.0),
        Claim("4.1", "static supports ~30 tps", True,
              lambda figs: figs["4.1"].curve(
                  "static").max_supported_rate() >= 28.0),
        Claim("4.1", "best dynamic below static at >=25 tps", True,
              lambda figs: all(
                  _rt(figs["4.1"].curve("best-dynamic"), rate) <
                  _rt(figs["4.1"].curve("static"), rate)
                  for rate in (25.0, 30.0, 33.0))),
        # -- Figure 4.2 ----------------------------------------------------
        Claim("4.2", "measured-RT (A) worst dynamic at the limit", True,
              lambda figs: _rt(figs["4.2"].curve("A:measured-response"),
                               33.0) >
              max(_rt(figs["4.2"].curve(label), 33.0) for label in
                  ("B:queue-length", "C:min-incoming(q)",
                   "D:min-incoming(n)", "E:min-average(q)",
                   "F:min-average(n)"))),
        Claim("4.2", "min-average (E/F) beat static at the limit", True,
              lambda figs: min(
                  _rt(figs["4.2"].curve("E:min-average(q)"), 33.0),
                  _rt(figs["4.2"].curve("F:min-average(n)"), 33.0)) <
              _rt(figs["4.2"].curve("static"), 33.0)),
        Claim("4.2", "min-average best among A-F at the limit", False,
              lambda figs: min(
                  _rt(figs["4.2"].curve("E:min-average(q)"), 33.0),
                  _rt(figs["4.2"].curve("F:min-average(n)"), 33.0)) <=
              min(_rt(figs["4.2"].curve(label), 33.0) for label in
                  ("A:measured-response", "B:queue-length",
                   "C:min-incoming(q)", "D:min-incoming(n)")) + 0.05),
        Claim("4.2", "queue-length (B) near static (within 15%)", False,
              lambda figs: abs(
                  _rt(figs["4.2"].curve("B:queue-length"), 30.0) -
                  _rt(figs["4.2"].curve("static"), 30.0)) <
              0.15 * _rt(figs["4.2"].curve("static"), 30.0)),
        # -- Figure 4.3 ----------------------------------------------------
        Claim("4.3", "static ships ~nothing below 5 tps", True,
              lambda figs: _frac(figs["4.3"].curve("static"), 5.0) < 0.1),
        Claim("4.3", "static fraction peaks near 25 tps then falls", True,
              lambda figs: (lambda fracs: fracs.index(max(fracs)) not in
                            (0, len(fracs) - 1))(
                  list(figs["4.3"].curve("static").shipped_fractions))),
        Claim("4.3", "measured-RT ships the most at mid load", True,
              lambda figs: _frac(figs["4.3"].curve("A:measured-response"),
                                 20.0) >
              max(_frac(figs["4.3"].curve(label), 20.0)
                  for label in ("static", "B:queue-length",
                                "best-dynamic"))),
        Claim("4.3", "best dynamic ships less than static at >=15 tps",
              True,
              lambda figs: all(
                  _frac(figs["4.3"].curve("best-dynamic"), rate) <
                  _frac(figs["4.3"].curve("static"), rate)
                  for rate in (15.0, 20.0, 25.0))),
        # -- Figure 4.4 ----------------------------------------------------
        Claim("4.4", "negative threshold beats neutral at high load",
              True,
              lambda figs: _rt(figs["4.4"].curve("threshold(-0.2)"),
                               33.0) <
              _rt(figs["4.4"].curve("threshold(+0.0)"), 33.0)),
        Claim("4.4", "best dynamic beats tuned threshold (-0.2)", True,
              lambda figs: sum(
                  _rt(figs["4.4"].curve("best-dynamic"), rate)
                  for rate in (25.0, 30.0, 33.0)) <
              sum(_rt(figs["4.4"].curve("threshold(-0.2)"), rate)
                  for rate in (25.0, 30.0, 33.0))),
        Claim("4.4", "-0.3 worse than -0.2 at high load", False,
              lambda figs: _rt(figs["4.4"].curve("threshold(-0.3)"),
                               33.0) >
              _rt(figs["4.4"].curve("threshold(-0.2)"), 33.0)),
        # -- Figure 4.5 ----------------------------------------------------
        Claim("4.5", "static benefit shrinks at 0.5s delay", True,
              lambda figs:
              (_rt(figs["4.5"].curve("no-load-sharing"), 15.0) -
               _rt(figs["4.5"].curve("static"), 15.0)) <
              (_rt(figs["4.1"].curve("no-load-sharing"), 15.0) -
               _rt(figs["4.1"].curve("static"), 15.0))),
        Claim("4.5", "dynamic still clearly helps at 0.5s delay", True,
              lambda figs: all(
                  _rt(figs["4.5"].curve("best-dynamic"), rate) <=
                  _rt(figs["4.5"].curve("static"), rate) + 0.05
                  for rate in (20.0, 25.0, 30.0))),
        # -- Figure 4.6 ----------------------------------------------------
        Claim("4.6", "static curve shows an inflection (rapid rise)",
              True,
              lambda figs: (lambda fracs: max(
                  b - a for a, b in zip(fracs, fracs[1:])) > 0.15)(
                  list(figs["4.6"].curve("static").shipped_fractions))),
        Claim("4.6", "large delay delays the onset of static shipping",
              True,
              lambda figs: _frac(figs["4.6"].curve("static"), 10.0) <
              _frac(figs["4.3"].curve("static"), 10.0)),
        # -- Figure 4.7 ----------------------------------------------------
        Claim("4.7", "threshold optimum moves positive-ward at 0.5s",
              True,
              lambda figs: sum(
                  _rt(figs["4.7"].curve("threshold(+0.0)"), rate)
                  for rate in (5.0, 10.0, 15.0, 20.0)) <
              sum(_rt(figs["4.7"].curve("threshold(-0.2)"), rate)
                  for rate in (5.0, 10.0, 15.0, 20.0))),
        Claim("4.7", "dynamic-vs-heuristic gap grows with delay", False,
              lambda figs:
              (_rt(figs["4.7"].curve("threshold(+0.0)"), 20.0) -
               _rt(figs["4.7"].curve("best-dynamic"), 20.0)) >
              (_rt(figs["4.4"].curve("threshold(-0.2)"), 20.0) -
               _rt(figs["4.4"].curve("best-dynamic"), 20.0))),
    ]


def run_scorecard(settings: RunSettings | None = None) -> Scorecard:
    """Regenerate all figures and evaluate every claim."""
    settings = settings or RunSettings()
    figures = {
        "4.1": figure_4_1(settings),
        "4.2": figure_4_2(settings),
        "4.3": figure_4_3(settings),
        "4.4": figure_4_4(settings),
        "4.5": figure_4_5(settings),
        "4.6": figure_4_6(settings),
        "4.7": figure_4_7(settings),
    }
    results = []
    for claim in _claims():
        try:
            passed = bool(claim.check(figures))
        except (KeyError, IndexError):
            passed = False
        results.append(ClaimResult(claim=claim, passed=passed))
    return Scorecard(results=tuple(results))
