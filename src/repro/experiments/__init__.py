"""Experiment harness: sweeps, per-figure specs, text reports, CLI."""

from .figures import (
    ALL_FIGURES,
    BASE_RATES,
    FigureData,
    figure_4_1,
    figure_4_2,
    figure_4_3,
    figure_4_4,
    figure_4_5,
    figure_4_6,
    figure_4_7,
)
from .export import curve_rows, figure_to_csv, write_figure_csv
from .report import curve_summary, figure_report, format_table, sparkline
from .runner import Curve, CurvePoint, RunSettings, run_curve, run_point
from .validation import ValidationPoint, ValidationReport, validate_model

__all__ = [
    "curve_rows",
    "figure_to_csv",
    "write_figure_csv",
    "ValidationPoint",
    "ValidationReport",
    "validate_model",
    "ALL_FIGURES",
    "BASE_RATES",
    "FigureData",
    "figure_4_1",
    "figure_4_2",
    "figure_4_3",
    "figure_4_4",
    "figure_4_5",
    "figure_4_6",
    "figure_4_7",
    "curve_summary",
    "figure_report",
    "format_table",
    "sparkline",
    "Curve",
    "CurvePoint",
    "RunSettings",
    "run_curve",
    "run_point",
]
