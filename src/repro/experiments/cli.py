"""Command-line entry point: reproduce any figure from the terminal.

Installed as ``hybriddb-experiment`` (see pyproject).  Examples::

    hybriddb-experiment --figure 4.1
    hybriddb-experiment --figure 4.2 --workers 4
    hybriddb-experiment --figure 4.4 --scale 0.5 --replications 2
    hybriddb-experiment --figure 4.2 --precision 0.05 --max-replications 16
    hybriddb-experiment --figure 4.2 --precision 0.1 --crn --control-variates
    hybriddb-experiment --figure all --scale 0.3 --workers 0
    hybriddb-experiment --figure 4.3 --csv fig43.csv
    hybriddb-experiment --figure 4.1 --no-cache
    hybriddb-experiment --figure 4.1 --protocol 2pc
    hybriddb-experiment --scorecard --scale 0.3 --protocol epoch
    hybriddb-experiment --list-protocols
    hybriddb-experiment --validate
    hybriddb-experiment --verify
    hybriddb-experiment --list
    hybriddb-experiment --run queue-length --rate 35 \\
        --telemetry run.csv --trace-out run.jsonl
    hybriddb-experiment --run queue-length --profile --metrics-out m.json
    hybriddb-experiment --run threshold --audit --audit-out decisions.jsonl
    hybriddb-experiment --run static-optimal --fault-plan central-outage
    hybriddb-experiment --availability --scale 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..core import STRATEGIES
from ..obs.logconf import add_logging_flags, setup_cli_logging
from ..sim.trace import Tracer
from .cache import ResultCache, default_cache_dir
from .export import write_figure_csv, write_telemetry, write_trace_jsonl
from .figures import ALL_FIGURES
from .report import curve_summary, execution_summary, figure_report, \
    point_report, run_report
from .runner import PrecisionSettings, RunSettings, run_point, run_single
from .validation import validate_model

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hybriddb-experiment",
        description="Reproduce the figures of 'Load Sharing in Hybrid "
                    "Distributed-Centralized Database Systems' "
                    "(Ciciani, Dias & Yu, ICDCS 1988).")
    parser.add_argument("--figure",
                        choices=sorted(ALL_FIGURES) + ["all"],
                        help="which figure to reproduce ('all' runs the "
                             "full evaluation section)")
    parser.add_argument("--list", action="store_true",
                        help="list available figures and exit")
    parser.add_argument("--validate", action="store_true",
                        help="run the analytic-model-vs-simulator "
                             "validation grid")
    parser.add_argument("--verify", action="store_true",
                        help="run the correctness-verification quick "
                             "suite (equivalent to hybriddb-verify "
                             "--quick) and exit")
    parser.add_argument("--scorecard", action="store_true",
                        help="regenerate every figure and machine-check "
                             "all of the paper's claims")
    parser.add_argument("--sensitivity", metavar="PARAM",
                        choices=["comm_delay", "central_mips", "p_local",
                                 "n_sites"],
                        help="sweep one system parameter (the conclusion "
                             "section's dependencies)")
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the figure's data as CSV")
    parser.add_argument("--run", metavar="STRATEGY",
                        choices=sorted(STRATEGIES),
                        help="run one strategy once and report its "
                             "response-time decomposition, telemetry "
                             "and engine profile; with --replications N "
                             "(N > 1) the replications fan out over "
                             "--workers processes and the merged point "
                             "is reported instead")
    parser.add_argument("--rate", type=float, default=30.0,
                        help="total arrival rate for --run "
                             "(default 30.0 txn/s)")
    parser.add_argument("--comm-delay", type=float, default=0.2,
                        help="communication delay for --run "
                             "(default 0.2 s)")
    parser.add_argument("--telemetry", metavar="PATH",
                        help="with --run: write windowed telemetry "
                             "(CSV if PATH ends in .csv, JSON otherwise)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="with --run: write the event trace as "
                             "JSON Lines")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="with --run: write the metrics-registry "
                             "snapshot as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="with --run: attach the engine profiler and "
                             "print the per-event-type dispatch profile")
    parser.add_argument("--hot-paths", action="store_true",
                        help="with --run: run under cProfile and name "
                             "the hottest functions (slows the run; "
                             "ranking only, never benchmark with it)")
    parser.add_argument("--audit", action="store_true",
                        help="with --run: record every routing decision "
                             "with its estimator inputs and print the "
                             "per-strategy summary")
    parser.add_argument("--audit-out", metavar="PATH",
                        help="with --run: write the routing-decision "
                             "audit as JSON Lines (implies --audit)")
    parser.add_argument("--fault-plan", metavar="SPEC",
                        help="with --run: inject faults; SPEC is a canned "
                             "plan name (central-outage, lossy-links, "
                             "site-crash, chaos, central-outage-failover, "
                             "site-crash-rejoin, breaker-flap) or a "
                             "FaultPlan JSON file")
    parser.add_argument("--availability", action="store_true",
                        help="compare the reference strategies with and "
                             "without the standard central outage "
                             "(or the --fault-plan scenario)")
    parser.add_argument("--failover", action="store_true",
                        help="with --availability: add a third run per "
                             "strategy with hot-standby failover enabled "
                             "(avail@fo and mttr columns)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="simulated-horizon scale factor (default 1.0; "
                             "0.3 for a quick look)")
    parser.add_argument("--replications", type=int, default=1,
                        help="independent replications per point (with "
                             "--precision: the initial adaptive batch, "
                             "minimum 2)")
    parser.add_argument("--precision", type=float, metavar="REL",
                        help="adaptive replication control: keep adding "
                             "replications per point until the 95%% CI "
                             "half-width of the mean response time is "
                             "within REL of the mean (e.g. 0.05), or "
                             "--max-replications is reached")
    parser.add_argument("--max-replications", type=int, default=24,
                        help="replication cap per point in adaptive mode "
                             "(default 24; ignored without --precision)")
    parser.add_argument("--crn", action="store_true",
                        help="common random numbers: derive replication "
                             "seeds from (seed, rate, replication) so "
                             "every strategy at one rate shares sample "
                             "paths (sharpens strategy comparisons; "
                             "changes seeds and cache keys vs the "
                             "default seed+r scheme)")
    parser.add_argument("--control-variates", action="store_true",
                        help="regression-adjust each point's mean "
                             "response time with known-expectation "
                             "covariates (arrival counts, analytic-model "
                             "prediction); tightens confidence intervals "
                             "and, with --precision, cuts replications")
    parser.add_argument("--protocol", default="optimistic",
                        metavar="NAME",
                        help="commit protocol for every simulation "
                             "(default optimistic; see "
                             "`hybriddb-experiment --list-protocols`)")
    parser.add_argument("--list-protocols", action="store_true",
                        help="list registered commit protocols and exit")
    parser.add_argument("--seed", type=int, default=7_001,
                        help="base random seed")
    parser.add_argument("--workers", type=int, default=1,
                        help="simulation processes for figure/sensitivity "
                             "runs (1 = serial, 0 = one per CPU); results "
                             "are bit-identical to serial execution")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="result-cache directory (default "
                             f"{default_cache_dir()}, or "
                             "$HYBRIDDB_CACHE_DIR)")
    add_logging_flags(parser)
    return parser


def _run_figure(figure_id: str, settings: RunSettings,
                csv_path: str | None, workers: int,
                cache: ResultCache | None) -> None:
    started = time.time()
    figure = ALL_FIGURES[figure_id](settings, workers=workers, cache=cache)
    elapsed = time.time() - started
    print(figure_report(figure))
    print()
    for curve in figure.curves:
        print(curve_summary(curve))
    if csv_path is not None:
        target = write_figure_csv(figure, csv_path)
        print(f"\n[data written to {target}]")
    print("\n" + execution_summary(elapsed, workers=workers, cache=cache))
    if isinstance(settings, PrecisionSettings):
        labelled = [(curve.label, point) for curve in figure.curves
                    for point in curve.points]
        points = [point for _, point in labelled]
        total = sum(point.n_replications for point in points)
        grid = len(points) * settings.max_replications
        met = sum(1 for point in points
                  if point.rt_relative_half_width <= settings.rel_precision)
        print(f"[adaptive: {total} replication(s) over {len(points)} "
              f"point(s) vs {grid} fixed-grid (saved {grid - total}); "
              f"{met}/{len(points)} point(s) within "
              f"+/-{settings.rel_precision:.1%} at "
              f"{settings.confidence:.0%} confidence]")
        missed = [(label, point) for label, point in labelled
                  if point.rt_relative_half_width > settings.rel_precision]
        if missed:
            listing = ", ".join(
                f"{label}@{point.total_rate:g} "
                f"(+/-{point.rt_relative_half_width:.1%})"
                for label, point in missed)
            print(f"[unconverged at cap {settings.max_replications}: "
                  f"{listing}]")
        ratios = [point.variance_reduction for point in points
                  if point.variance_reduction is not None
                  and point.variance_reduction > 1.0]
        if ratios:
            mean_vrr = sum(ratios) / len(ratios)
            print(f"[control variates: adjustment used on {len(ratios)}/"
                  f"{len(points)} point(s), mean variance-reduction "
                  f"{mean_vrr:.1f}x]")


def _resolve_plan(args, settings: RunSettings):
    """Turn ``--fault-plan`` into a FaultPlan (None when not given)."""
    if not args.fault_plan:
        return None
    from ..sim.faults import resolve_fault_plan

    return resolve_fault_plan(args.fault_plan,
                              warmup_time=settings.warmup_time *
                              settings.scale,
                              measure_time=settings.measure_time *
                              settings.scale)


def _run_replicated_point(args, settings: RunSettings, workers: int,
                          cache: ResultCache | None) -> int:
    """``--run`` with ``--replications`` > 1: fan replications over the
    worker pool (``base_seed + r`` seeds, exactly like curve points) and
    report the merged point.  The merged numbers are independent of the
    worker count."""
    fault_plan = _resolve_plan(args, settings)
    started = time.time()
    point = run_point(args.run, args.rate, comm_delay=args.comm_delay,
                      settings=settings, workers=workers, cache=cache,
                      fault_plan=fault_plan)
    elapsed = time.time() - started
    print(point_report(point, comm_delay=args.comm_delay))
    print("\n" + execution_summary(elapsed, workers=workers, cache=cache))
    return 0


def _run_single(args, settings: RunSettings) -> int:
    tracer = Tracer(max_records=200_000) if args.trace_out else None
    fault_plan = _resolve_plan(args, settings)

    audit = None
    if args.audit or args.audit_out:
        from ..obs.audit import RoutingAudit

        audit = RoutingAudit()
    profiler = None

    def instrument(system) -> None:
        nonlocal profiler
        if args.profile:
            from ..obs.profiler import EngineProfiler

            profiler = EngineProfiler(system.env)

    started = time.time()
    kwargs = dict(comm_delay=args.comm_delay, settings=settings,
                  tracer=tracer, fault_plan=fault_plan, audit=audit,
                  instrument=instrument)
    hot = None
    if args.hot_paths:
        from ..obs.profiler import hot_path_profile

        result, hot = hot_path_profile(run_single, args.run, args.rate,
                                       **kwargs)
    else:
        result = run_single(args.run, args.rate, **kwargs)
    elapsed = time.time() - started

    print(run_report(result, fault_plan_active=fault_plan is not None))
    if profiler is not None:
        print()
        print(profiler.report())
    if hot is not None:
        from ..obs.profiler import format_hot_paths

        print()
        print("Hot paths (cProfile, ranking only):")
        print(format_hot_paths(hot))
    if audit is not None:
        print()
        print(audit.summary().format())
    if args.telemetry:
        target = write_telemetry(result, args.telemetry)
        print(f"[telemetry written to {target}]")
    if args.trace_out:
        target = write_trace_jsonl(tracer, args.trace_out)
        print(f"[{len(tracer.records)} trace record(s) written to "
              f"{target}]")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            json.dump({"strategy": result.strategy,
                       "total_rate": result.total_rate,
                       "comm_delay": result.comm_delay,
                       "seed": result.seed,
                       "metrics": result.metrics}, handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"[metrics snapshot written to {args.metrics_out}]")
    if args.audit_out:
        written = audit.write_jsonl(args.audit_out)
        print(f"[{written} audit record(s) written to {args.audit_out}]")
    print("\n" + execution_summary(elapsed))
    return 0


def _run_validation(settings: RunSettings) -> None:
    started = time.time()
    report = validate_model(
        warmup_time=25.0 * settings.scale,
        measure_time=75.0 * settings.scale,
        seed=settings.base_seed)
    print("Analytic model vs discrete-event simulator")
    print()
    print(report.to_table())
    print(f"\nmean |error| = {report.mean_abs_error:.1%}, "
          f"max |error| = {report.max_abs_error:.1%}")
    print("\n" + execution_summary(time.time() - started))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_cli_logging(args)
    if args.list:
        for figure_id, builder in sorted(ALL_FIGURES.items()):
            doc = (builder.__doc__ or "").strip().splitlines()[0]
            print(f"  {figure_id}: {doc}")
        return 0
    if args.list_protocols:
        from ..hybrid.protocols import get_protocol, protocol_names

        for name in protocol_names():
            doc = (get_protocol(name).__doc__ or "").strip().splitlines()
            print(f"  {name}: {doc[0] if doc else ''}")
        return 0
    from ..hybrid.protocols import protocol_names

    if args.protocol not in protocol_names():
        print(f"error: unknown --protocol {args.protocol!r}; registered "
              f"protocols: {', '.join(protocol_names())}",
              file=sys.stderr)
        return 2
    if args.verify:
        from ..verify.cli import main as verify_main

        return verify_main(["--quick"])
    if args.scale <= 0:
        print("error: --scale must be positive", file=sys.stderr)
        return 2
    if args.replications < 1:
        print("error: --replications must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.precision is not None:
        if args.precision <= 0:
            print("error: --precision must be positive", file=sys.stderr)
            return 2
        if args.max_replications < 2:
            print("error: --max-replications must be >= 2",
                  file=sys.stderr)
            return 2
        min_replications = max(2, args.replications)
        if min_replications > args.max_replications:
            print("error: --replications (the initial adaptive batch) "
                  "cannot exceed --max-replications", file=sys.stderr)
            return 2
        settings: RunSettings = PrecisionSettings(
            base_seed=args.seed, scale=args.scale,
            rel_precision=args.precision,
            min_replications=min_replications,
            max_replications=args.max_replications,
            crn=args.crn, control_variates=args.control_variates,
            protocol=args.protocol)
    else:
        settings = RunSettings(replications=args.replications,
                               base_seed=args.seed, scale=args.scale,
                               crn=args.crn,
                               control_variates=args.control_variates,
                               protocol=args.protocol)
    workers = args.workers  # 0 -> auto-detect inside ParallelRunner
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if (args.telemetry or args.trace_out or args.metrics_out or
            args.profile or args.hot_paths or args.audit or
            args.audit_out) and not args.run:
        print("error: --telemetry/--trace-out/--metrics-out/--profile/"
              "--hot-paths/--audit/--audit-out require --run",
              file=sys.stderr)
        return 2
    if args.profile and args.hot_paths:
        print("error: --profile and --hot-paths are mutually exclusive "
              "(cProfile tracing would distort the dispatch timings)",
              file=sys.stderr)
        return 2
    if args.run and args.rate <= 0:
        print("error: --rate must be positive", file=sys.stderr)
        return 2
    if args.fault_plan and not (args.run or args.availability):
        print("error: --fault-plan requires --run or --availability",
              file=sys.stderr)
        return 2
    if args.failover and not args.availability:
        print("error: --failover requires --availability",
              file=sys.stderr)
        return 2
    if args.run and args.replications > 1 and (
            args.telemetry or args.trace_out or args.metrics_out or
            args.profile or args.hot_paths or args.audit or args.audit_out):
        print("error: --telemetry/--trace-out/--metrics-out/--profile/"
              "--hot-paths/--audit/--audit-out observe one in-process "
              "run; use --replications 1 with them", file=sys.stderr)
        return 2
    if args.run:
        if args.replications > 1:
            code = _run_replicated_point(args, settings, workers=workers,
                                         cache=cache)
        else:
            code = _run_single(args, settings)
        if not args.figure:
            return code
    if args.availability:
        from .availability import run_availability

        started = time.time()
        comparison = run_availability(
            total_rate=args.rate, plan=_resolve_plan(args, settings),
            settings=settings, workers=workers, cache=cache,
            failover=args.failover)
        print("Strategies with and without faults "
              f"@ rate={comparison.total_rate:g} txn/s")
        print()
        print(comparison.to_table())
        episodes = comparison.episode_summary()
        if episodes:
            print("\nEpisodes")
            print(episodes)
        print("\n" + execution_summary(time.time() - started,
                                       workers=workers, cache=cache))
        if not args.figure:
            return 0
    if args.validate:
        _run_validation(settings)
        if not args.figure and not args.scorecard:
            return 0
    if args.scorecard:
        from .scorecard import run_scorecard

        started = time.time()
        card = run_scorecard(settings)
        print(card.to_text())
        print("\n" + execution_summary(time.time() - started))
        if not args.figure:
            return 0 if card.all_essential_pass else 1
    if args.sensitivity:
        from .sensitivity import DEFAULT_SWEEPS, sweep_parameter

        started = time.time()
        sweep = sweep_parameter(
            args.sensitivity, DEFAULT_SWEEPS[args.sensitivity],
            warmup_time=20.0 * settings.scale + 5.0,
            measure_time=60.0 * settings.scale + 10.0,
            seed=settings.base_seed,
            workers=workers, cache=cache,
            settings=settings if isinstance(settings, PrecisionSettings)
            else None)
        print(sweep.to_table())
        print("\n" + execution_summary(time.time() - started,
                                       workers=workers, cache=cache))
        if not args.figure:
            return 0
    if not args.figure:
        print("error: choose --figure, --run, --validate, --scorecard, "
              "--sensitivity, --availability or --list", file=sys.stderr)
        return 2
    if args.figure == "all":
        if args.csv:
            print("error: --csv works with a single figure",
                  file=sys.stderr)
            return 2
        for figure_id in sorted(ALL_FIGURES):
            _run_figure(figure_id, settings, None, workers, cache)
            print("=" * 72)
        return 0
    _run_figure(args.figure, settings, args.csv, workers, cache)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
