"""Definitions and runners for every figure in the paper's evaluation.

Each ``figure_4_N`` function runs the simulations behind the paper's
Figure 4.N and returns a :class:`FigureData` carrying the curves plus the
figure's qualitative expectations (used by the benchmark assertions and
printed by the reports).

The paper's figures (Section 4.2):

* **4.1** -- mean RT vs throughput: no load sharing, optimal static, best
  dynamic (0.2 s delay).
* **4.2** -- mean RT vs throughput for the six dynamic curves A-F.
* **4.3** -- fraction of class A transactions shipped vs arrival rate.
* **4.4** -- the thresholded queue-length heuristic (thresholds 0, -0.1,
  -0.2, -0.3) against the best dynamic scheme.
* **4.5/4.6/4.7** -- the same three studies at 0.5 s delay, where static
  gains shrink, the static shipped-fraction curve gains an inflection,
  and the optimal threshold moves positive-ward.

Every figure accepts either a fixed-grid
:class:`~repro.experiments.runner.RunSettings` or a
:class:`~repro.experiments.runner.PrecisionSettings` (adaptive
replication control: each point runs only as many replications as its
confidence interval needs -- see :mod:`repro.experiments.adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.heuristics import threshold_router_factory
from ..hybrid.config import SystemConfig
from .cache import ResultCache
from .runner import Curve, RunSettings, run_curve_set

__all__ = [
    "FigureData",
    "BASE_RATES",
    "OVERLOAD_LIMITED_RATES",
    "ThresholdStrategy",
    "figure_4_1",
    "figure_4_2",
    "figure_4_3",
    "figure_4_4",
    "figure_4_5",
    "figure_4_6",
    "figure_4_7",
    "ALL_FIGURES",
]

#: Arrival-rate sweep (total transactions/second over the 10 sites).
BASE_RATES = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 33.0]

#: The no-load-sharing curve saturates near 20 tps; sweeping it far past
#: saturation wastes hours simulating thrash, so its sweep stops earlier.
OVERLOAD_LIMITED_RATES = [5.0, 10.0, 15.0, 20.0, 22.0, 25.0]

#: The strategy the paper identifies as best overall ("based on
#: analytical estimates of the effect of routing on all transactions").
BEST_DYNAMIC = "min-average-population"


@dataclass(frozen=True)
class ThresholdStrategy:
    """Picklable strategy builder for the Figure 4.4/4.7 heuristic.

    A plain ``lambda`` closing over the threshold cannot cross a process
    boundary and has no stable cache identity; this tiny callable has
    both, so the threshold sweeps parallelise and cache like every named
    strategy.
    """

    threshold: float

    def __call__(self, config: SystemConfig):
        return threshold_router_factory(self.threshold)

    @property
    def cache_key(self) -> str:
        return f"threshold-utilization({self.threshold!r})"


@dataclass(frozen=True)
class FigureData:
    """Curves plus metadata for one reproduced figure."""

    figure_id: str
    title: str
    x_axis: str
    y_axis: str
    comm_delay: float
    curves: tuple[Curve, ...]
    expectations: tuple[str, ...]

    def curve(self, label: str) -> Curve:
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(f"no curve labelled {label!r} in {self.figure_id}")

    def compare_curves(self, label_a: str, label_b: str,
                       confidence: float = 0.95):
        """Paired strategy-vs-strategy deltas, rate by rate.

        Returns the :class:`~repro.analysis.variance.PairedPointDelta`
        tuple for ``curve(label_a) - curve(label_b)``.  Pairing is by
        replication index, so when the figure ran under
        ``RunSettings.crn`` the deltas are common-random-numbers
        estimates (each delta records whether its pairs were actually
        seed-identical); without CRN the paired interval is still
        valid, just no tighter than an independent-streams one.
        """
        from ..analysis.variance import paired_curve_difference
        return paired_curve_difference(self.curve(label_a),
                                       self.curve(label_b),
                                       confidence=confidence)


def _rt_figure(figure_id: str, title: str, strategies: list[tuple],
               comm_delay: float, settings: RunSettings,
               expectations: tuple[str, ...],
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    curves = run_curve_set(strategies, comm_delay=comm_delay,
                           settings=settings, workers=workers, cache=cache)
    return FigureData(
        figure_id=figure_id, title=title,
        x_axis="total transaction rate (tps)",
        y_axis="mean response time (s)",
        comm_delay=comm_delay, curves=tuple(curves),
        expectations=expectations)


def figure_4_1(settings: RunSettings | None = None,
               comm_delay: float = 0.2,
               figure_id: str = "4.1",
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    """No load sharing vs optimal static vs best dynamic."""
    settings = settings or RunSettings()
    return _rt_figure(
        figure_id,
        "Average response time vs throughput "
        f"(delay {comm_delay}s)",
        [
            ("none", "no-load-sharing", OVERLOAD_LIMITED_RATES),
            ("static-optimal", "static", BASE_RATES),
            (BEST_DYNAMIC, "best-dynamic", BASE_RATES),
        ],
        comm_delay, settings, workers=workers, cache=cache,
        expectations=(
            "no-load-sharing saturates first (paper: ~20 tps)",
            "static extends the supportable rate (paper: ~30 tps)",
            "best dynamic dominates static at high load",
        ))


def figure_4_2(settings: RunSettings | None = None,
               comm_delay: float = 0.2,
               figure_id: str = "4.2",
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    """The six dynamic curves A-F of the paper."""
    settings = settings or RunSettings()
    return _rt_figure(
        figure_id,
        f"Dynamic load-sharing schemes A-F (delay {comm_delay}s)",
        [
            ("measured-response", "A:measured-response", BASE_RATES),
            ("queue-length", "B:queue-length", BASE_RATES),
            ("min-incoming-queue", "C:min-incoming(q)", BASE_RATES),
            ("min-incoming-population", "D:min-incoming(n)", BASE_RATES),
            ("min-average-queue", "E:min-average(q)", BASE_RATES),
            ("min-average-population", "F:min-average(n)", BASE_RATES),
            ("static-optimal", "static", BASE_RATES),
        ],
        comm_delay, settings, workers=workers, cache=cache,
        expectations=(
            "measured-response (A) is the weakest dynamic scheme",
            "queue-length (B) lands near the static optimum",
            "min-incoming (C, D) at or above static",
            "min-average (E, F) are the best schemes at high load",
        ))


def figure_4_3(settings: RunSettings | None = None,
               comm_delay: float = 0.2,
               figure_id: str = "4.3",
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    """Fraction of class A transactions shipped vs arrival rate."""
    settings = settings or RunSettings()
    curves = run_curve_set(
        [(strategy, label, BASE_RATES) for strategy, label in [
            ("static-optimal", "static"),
            ("measured-response", "A:measured-response"),
            ("queue-length", "B:queue-length"),
            (BEST_DYNAMIC, "best-dynamic")]],
        comm_delay=comm_delay, settings=settings,
        workers=workers, cache=cache)
    return FigureData(
        figure_id=figure_id,
        title=f"Fraction of class A shipped (delay {comm_delay}s)",
        x_axis="total transaction rate (tps)",
        y_axis="fraction of class A transactions shipped",
        comm_delay=comm_delay, curves=tuple(curves),
        expectations=(
            "static ships ~nothing at low rates, rises, falls past knee",
            "measured-response ships the largest fraction",
            "dynamics ship less than static except at very low rates",
        ))


def figure_4_4(settings: RunSettings | None = None,
               comm_delay: float = 0.2,
               thresholds: tuple[float, ...] = (0.0, -0.1, -0.2, -0.3),
               figure_id: str = "4.4",
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    """Thresholded queue-length heuristic vs the best dynamic scheme."""
    settings = settings or RunSettings()
    strategies: list[tuple] = [
        (ThresholdStrategy(threshold),
         f"threshold({threshold:+.1f})", BASE_RATES)
        for threshold in thresholds
    ]
    strategies.append((BEST_DYNAMIC, "best-dynamic", BASE_RATES))
    return _rt_figure(
        figure_id,
        f"Tuning the queue-length threshold (delay {comm_delay}s)",
        strategies, comm_delay, settings,
        workers=workers, cache=cache,
        expectations=(
            "at 0.2s delay the best threshold is negative (~-0.2)",
            "over-shipping thresholds (-0.3) degrade performance",
            "the best dynamic scheme beats the tuned heuristic",
        ))


def figure_4_5(settings: RunSettings | None = None,
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    """Figure 4.1 at 0.5 s communications delay."""
    return figure_4_1(settings, comm_delay=0.5, figure_id="4.5",
                      workers=workers, cache=cache)


def figure_4_6(settings: RunSettings | None = None,
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    """Figure 4.3 at 0.5 s communications delay (static inflection)."""
    return figure_4_3(settings, comm_delay=0.5, figure_id="4.6",
                      workers=workers, cache=cache)


def figure_4_7(settings: RunSettings | None = None,
               workers: int | None = 1,
               cache: ResultCache | None = None) -> FigureData:
    """Figure 4.4 at 0.5 s delay: optimal threshold moves positive-ward."""
    return figure_4_4(settings, comm_delay=0.5,
                      thresholds=(0.0, 0.1, 0.2, -0.2), figure_id="4.7",
                      workers=workers, cache=cache)


ALL_FIGURES = {
    "4.1": figure_4_1,
    "4.2": figure_4_2,
    "4.3": figure_4_3,
    "4.4": figure_4_4,
    "4.5": figure_4_5,
    "4.6": figure_4_6,
    "4.7": figure_4_7,
}
