"""Availability under faults: how the strategies ride out an outage.

The paper's evaluation assumes a perfect environment; this experiment
takes the environment away.  Every reference strategy runs twice at the
same rate and seed -- once fault-free, once under a
:class:`~repro.sim.faults.FaultPlan` (by default the standard central
outage of :func:`~repro.sim.faults.standard_outage_plan`) -- and the
comparison reports, per strategy:

* baseline vs faulted throughput and mean response time,
* the availability ratio (committed / (committed + failed + rejected)),
* transaction-level fault handling counts (timeouts, class A failovers,
  class B failures, failure-aware local fallbacks), and
* the per-episode degraded throughput and time-to-recover summaries
  computed from the telemetry windows.

Strategies that ship more work centrally expose more of their load to a
central outage, so the ranking under faults can invert the fault-free
ranking -- which is exactly what this table makes visible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..hybrid.metrics import SimulationResult
from ..sim.faults import FaultPlan, standard_outage_plan
from .cache import ResultCache
from .parallel import JobSpec, ParallelRunner
from .report import format_table
from .runner import RunSettings

__all__ = ["AvailabilityPoint", "AvailabilityComparison",
           "run_availability", "AVAILABILITY_STRATEGIES"]

#: Strategies compared by the availability experiment: the no-sharing
#: baseline, the static optimum and the best dynamic scheme.
AVAILABILITY_STRATEGIES = ("none", "static-optimal",
                           "min-average-population")


@dataclass(frozen=True)
class AvailabilityPoint:
    """One strategy's fault-free and faulted outcomes, side by side.

    ``failover`` holds the optional third run -- same faults, but with
    the hot-standby recovery policy enabled -- so the table can show
    what the survivability machinery buys over riding the outage out.
    """

    strategy: str
    baseline: SimulationResult
    faulted: SimulationResult
    failover: SimulationResult | None = None

    @property
    def throughput_retained(self) -> float:
        """Faulted throughput as a fraction of fault-free throughput."""
        if self.baseline.throughput <= 0:
            return 0.0
        return self.faulted.throughput / self.baseline.throughput


@dataclass(frozen=True)
class AvailabilityComparison:
    """The full experiment: every strategy under the same fault plan."""

    total_rate: float
    plan: FaultPlan
    points: tuple[AvailabilityPoint, ...]

    def to_table(self) -> str:
        with_failover = any(point.failover is not None
                            for point in self.points)
        headers = ["strategy", "tput", "tput@fault", "retained",
                   "avail", "timeout", "failover", "failed", "fallback"]
        if with_failover:
            headers += ["avail@fo", "mttr"]
        rows = []
        for point in self.points:
            faulted = point.faulted
            row = [
                point.strategy,
                f"{point.baseline.throughput:.2f}",
                f"{faulted.throughput:.2f}",
                f"{point.throughput_retained:.1%}",
                f"{faulted.availability:.3f}",
                f"{faulted.txns_timed_out}",
                f"{faulted.txns_failed_over}",
                f"{faulted.txns_failed}",
                f"{faulted.fallback_routings}",
            ]
            if with_failover:
                if point.failover is None:
                    row += ["-", "-"]
                else:
                    mttr = point.failover.mttr
                    row += [f"{point.failover.availability:.3f}",
                            "-" if mttr is None else f"{mttr:.2f}s"]
            rows.append(tuple(row))
        return format_table(tuple(headers), rows)

    def episode_summary(self) -> str:
        """Per-strategy, per-episode degradation and recovery lines."""
        lines = []
        for point in self.points:
            for report in point.faulted.fault_episodes:
                recover = ("not within run"
                           if report.time_to_recover is None
                           else f"{report.time_to_recover:.1f}s")
                lines.append(
                    f"  {point.strategy}: {report.kind} "
                    f"[{report.start:g}s..{report.end:g}s] "
                    f"throughput {report.baseline_throughput:.1f}"
                    f" -> {report.degraded_throughput:.1f} txn/s, "
                    f"recovery {recover}")
        return "\n".join(lines)


def run_availability(total_rate: float = 25.0,
                     plan: FaultPlan | None = None,
                     strategies: Sequence[str] = AVAILABILITY_STRATEGIES,
                     settings: RunSettings | None = None,
                     workers: int | None = 1,
                     cache: ResultCache | None = None,
                     failover: bool = False
                     ) -> AvailabilityComparison:
    """Compare the strategies with and without a fault plan.

    Both runs of a strategy use the same configuration and seed (common
    random numbers), so every difference in the table is attributable to
    the injected faults.  With ``failover=True`` a third run per
    strategy repeats the faulted one with hot-standby failover enabled
    (the plan's recovery policy plus ``failover=True``), isolating what
    the survivability protocol buys.  The whole grid executes as one
    :class:`ParallelRunner` batch.
    """
    settings = settings or RunSettings()
    if plan is None:
        plan = standard_outage_plan(
            warmup_time=settings.warmup_time * settings.scale,
            measure_time=settings.measure_time * settings.scale)
    failover_plan = plan.with_recovery(
        replace(plan.recovery, failover=True)) if failover else None
    runs = 3 if failover else 2
    specs: list[JobSpec] = []
    for strategy in strategies:
        config = settings.config_for(total_rate, comm_delay=0.2,
                                     seed=settings.base_seed)
        specs.append(JobSpec(strategy=strategy, config=config))
        specs.append(JobSpec(strategy=strategy, config=config,
                             fault_plan=plan))
        if failover_plan is not None:
            specs.append(JobSpec(strategy=strategy, config=config,
                                 fault_plan=failover_plan))
    results = ParallelRunner(workers=workers, cache=cache).run_jobs(specs)
    points = tuple(
        AvailabilityPoint(
            strategy=strategy,
            baseline=results[runs * index],
            faulted=results[runs * index + 1],
            failover=(results[runs * index + 2] if failover else None))
        for index, strategy in enumerate(strategies))
    return AvailabilityComparison(total_rate=total_rate, plan=plan,
                                  points=points)
