"""Cross-validation of the analytic model against the simulator.

The paper leans on its Section 3.1 analytic model twice: to find the
optimal static shipping probability, and (in observation-driven form)
inside the dynamic strategies.  [CIC87A,B] justified the collision
methodology with simulation; this module provides the same check for
this reproduction -- evaluate the model and the discrete-event simulator
on a grid of (arrival rate, p_ship) points and report the response-time
agreement.

Used by ``benchmarks/test_model_validation.py`` and recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.model import AnalyticModel
from ..core.static import static_router_factory
from ..hybrid.config import paper_config
from ..hybrid.system import HybridSystem
from .report import format_table

__all__ = ["ValidationPoint", "ValidationReport", "validate_model"]


@dataclass(frozen=True)
class ValidationPoint:
    """One (rate, p_ship) comparison."""

    total_rate: float
    p_ship: float
    model_response: float
    simulated_response: float
    model_rho_local: float
    simulated_rho_local: float
    model_rho_central: float
    simulated_rho_central: float

    @property
    def response_error(self) -> float:
        """Relative error of the model's mean response time."""
        if self.simulated_response == 0:
            return float("inf")
        return (self.model_response - self.simulated_response) / \
            self.simulated_response


@dataclass(frozen=True)
class ValidationReport:
    """Grid of comparisons plus aggregate error statistics."""

    points: tuple[ValidationPoint, ...]

    @property
    def max_abs_error(self) -> float:
        return max(abs(point.response_error) for point in self.points)

    @property
    def mean_abs_error(self) -> float:
        errors = [abs(point.response_error) for point in self.points]
        return sum(errors) / len(errors)

    def to_table(self) -> str:
        headers = ["rate", "p_ship", "model RT", "sim RT", "err",
                   "model rho_l", "sim rho_l", "model rho_c", "sim rho_c"]
        rows = []
        for point in self.points:
            rows.append([
                f"{point.total_rate:g}",
                f"{point.p_ship:.2f}",
                f"{point.model_response:.3f}",
                f"{point.simulated_response:.3f}",
                f"{point.response_error:+.1%}",
                f"{point.model_rho_local:.2f}",
                f"{point.simulated_rho_local:.2f}",
                f"{point.model_rho_central:.2f}",
                f"{point.simulated_rho_central:.2f}",
            ])
        return format_table(headers, rows)


def validate_model(rates: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0),
                   p_ships: tuple[float, ...] = (0.0, 0.3, 0.6),
                   comm_delay: float = 0.2,
                   warmup_time: float = 25.0,
                   measure_time: float = 75.0,
                   seed: int = 4_242) -> ValidationReport:
    """Compare model and simulator over a stable-load grid.

    The grid deliberately stays below the lock-thrashing region: past
    saturation neither the fixed point nor the finite-horizon simulation
    estimates a meaningful steady state (the model reports
    ``converged=False`` there).
    """
    points = []
    for total_rate in rates:
        config = paper_config(total_rate=total_rate, comm_delay=comm_delay,
                              warmup_time=warmup_time,
                              measure_time=measure_time, seed=seed)
        model = AnalyticModel(config)
        for p_ship in p_ships:
            estimate = model.evaluate(
                p_ship, config.workload.arrival_rate_per_site)
            result = HybridSystem(
                config, static_router_factory(p_ship)).run()
            points.append(ValidationPoint(
                total_rate=total_rate,
                p_ship=p_ship,
                model_response=estimate.response_average,
                simulated_response=result.mean_response_time,
                model_rho_local=estimate.contention.rho_local,
                simulated_rho_local=result.mean_local_utilization,
                model_rho_central=estimate.contention.rho_central,
                simulated_rho_central=result.mean_central_utilization,
            ))
    return ValidationReport(points=tuple(points))
