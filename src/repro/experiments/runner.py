"""Experiment execution: curves, sweeps and replication control.

A *curve* is one strategy evaluated over a sweep of total arrival rates
(the x-axis of every figure in the paper).  Each point runs the
discrete-event simulation once per replication and averages the
replications.  By default replication ``r`` uses ``base_seed + r`` --
deterministic, but the *same* sample path recurs at every rate.  With
``RunSettings.crn`` the seed becomes
:func:`repro.sim.rng.crn_seed`\\ ``(base_seed, rate_key, r)``: still
strategy-free (every strategy at one rate shares sample paths, the
common-random-numbers pairing that sharpens strategy comparisons) but
decorrelated across rates and replications.

``RunSettings.scale`` shortens or lengthens the simulated horizon
uniformly, so the same experiment definitions serve quick smoke tests
(scale ~0.2), the default benchmark runs, and long high-confidence runs
(scale >= 2).

:class:`PrecisionSettings` turns the fixed replication count into a
*precision target*: passed anywhere a :class:`RunSettings` is accepted
(figures, curves, points, the sensitivity sweep, the CLI), it switches
the run into adaptive mode -- replications are scheduled in rounds by
:mod:`repro.experiments.adaptive` until every point's t-based relative
confidence half-width reaches the target or a cap.  Seeding is the same
deterministic function of ``(base_seed, rate, r)`` in fixed and
adaptive mode alike, so adaptive runs stay bit-reproducible and every
replication remains individually cacheable.

``RunSettings.control_variates`` switches point assembly to the
jackknifed control-variate estimator
(:meth:`repro.sim.stats.ReplicationSummary.adjusted_interval`): the
known-expectation covariates each replication emits (plus the analytic
model's prediction, see :mod:`repro.analysis.variance`) regress away
sampling noise, shrinking the confidence interval -- and, in adaptive
mode, the replication count needed to reach the precision target.
Both flags default off; the default path is bit-identical to earlier
releases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..core import STRATEGIES
from ..hybrid.config import SystemConfig, paper_config
from ..hybrid.metrics import SimulationResult
from ..hybrid.system import HybridSystem
from ..sim.rng import crn_seed
from ..sim.stats import IntervalEstimate, ReplicationSummary
from .cache import ResultCache
from .parallel import JobSpec, ParallelRunner

__all__ = ["RunSettings", "PrecisionSettings", "CurvePoint", "Curve",
           "run_point", "run_curve", "run_curve_set", "run_single",
           "StrategyBuilder"]

#: ``name -> (config -> RouterFactory)`` -- the registry from repro.core,
#: re-exported here so experiment definitions read naturally.
StrategyBuilder = Callable[[SystemConfig], object]


@dataclass(frozen=True)
class RunSettings:
    """Horizon and replication control for experiment runs.

    ``crn`` derives replication seeds with :func:`repro.sim.rng.crn_seed`
    (strategy-free, rate-keyed: strategies share sample paths, rates and
    replications do not); ``control_variates`` switches point assembly
    to the regression-adjusted estimator.  Both default off, preserving
    the historical ``base_seed + r`` seeds, point estimates and cache
    keys bit-for-bit.
    """

    warmup_time: float = 30.0
    measure_time: float = 90.0
    replications: int = 1
    base_seed: int = 7_001
    scale: float = 1.0
    crn: bool = False
    control_variates: bool = False
    #: Commit protocol every configuration built through
    #: :meth:`config_for` runs under (a :mod:`repro.hybrid.protocols`
    #: name).  Threading it through the settings object means the whole
    #: experiment surface -- figures, scorecard, availability,
    #: sensitivity -- scores per protocol without per-call plumbing.
    protocol: str = "optimistic"

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError(
                f"replications must be >= 1, got {self.replications}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def config_for(self, total_rate: float, comm_delay: float,
                   **overrides) -> SystemConfig:
        overrides.setdefault("protocol", self.protocol)
        return paper_config(
            total_rate=total_rate,
            comm_delay=comm_delay,
            warmup_time=self.warmup_time * self.scale,
            measure_time=self.measure_time * self.scale,
            **overrides,
        )

    def replication_seed(self, total_rate: float, replication: int) -> int:
        """The simulation seed for replication ``r`` of a rate point.

        Default mode keeps the historical ``base_seed + r`` (identical
        sample paths at every rate); with ``crn`` the seed is hashed
        from ``(base_seed, rate, r)`` -- deliberately *not* from the
        strategy or the communication delay, so strategy comparisons at
        one rate run on common random numbers while rates and
        replications draw independent paths.
        """
        if self.crn:
            return crn_seed(self.base_seed, f"rate={total_rate!r}",
                            replication)
        return self.base_seed + replication

    def scaled(self, factor: float) -> "RunSettings":
        return replace(self, scale=self.scale * factor)


@dataclass(frozen=True)
class PrecisionSettings(RunSettings):
    """Replication control by precision target instead of fixed count.

    Points start with ``min_replications`` replications; while the
    t-based relative confidence half-width of the mean response time
    (at ``confidence``) exceeds ``rel_precision``, further rounds of
    ``round_size`` replications are scheduled, up to
    ``max_replications`` per point.  ``rel_precision=0.0`` is a valid
    never-converges target: every point runs exactly to the cap,
    reproducing the fixed grid ``replications=max_replications``
    field-for-field.

    The inherited ``replications`` field is ignored in adaptive mode
    (the scheduler owns the count); seeding is unchanged -- replication
    ``r`` of a point uses :meth:`RunSettings.replication_seed` exactly
    as the fixed grid does.  With ``control_variates`` the *adjusted*
    interval drives the stopping rule, so variance removed by the
    regression directly becomes replications not run.
    """

    rel_precision: float = 0.05
    confidence: float = 0.95
    min_replications: int = 2
    max_replications: int = 24
    round_size: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.rel_precision) or self.rel_precision < 0:
            raise ValueError(
                f"rel_precision must be finite and >= 0, got "
                f"{self.rel_precision}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}")
        if self.min_replications < 2:
            raise ValueError(
                "min_replications must be >= 2 (variance needs two "
                f"observations), got {self.min_replications}")
        if self.max_replications < self.min_replications:
            raise ValueError(
                f"max_replications ({self.max_replications}) must be >= "
                f"min_replications ({self.min_replications})")
        if self.round_size < 1:
            raise ValueError(
                f"round_size must be >= 1, got {self.round_size}")

    def fixed_equivalent(self) -> RunSettings:
        """The fixed-grid settings this adaptive run is capped by."""
        return RunSettings(
            warmup_time=self.warmup_time, measure_time=self.measure_time,
            replications=self.max_replications, base_seed=self.base_seed,
            scale=self.scale, crn=self.crn,
            control_variates=self.control_variates,
            protocol=self.protocol)


@dataclass(frozen=True)
class CurvePoint:
    """One (rate, averaged metrics) point of a curve.

    ``rt_interval`` is the cross-replication confidence interval of the
    mean response time, computed **once** during point assembly so the
    report/export layers can query the achieved precision freely.

    ``variance_reduction`` is the control-variate variance-reduction
    ratio ``(plain half-width / adjusted half-width)**2`` when the point
    was assembled with ``control_variates`` (1.0 when the adjustment was
    rejected as not strictly tighter), ``None`` on plain points.
    """

    total_rate: float
    mean_response_time: float
    throughput: float
    shipped_fraction: float
    abort_rate: float
    local_utilization: float
    central_utilization: float
    replications: tuple[SimulationResult, ...] = field(repr=False,
                                                       default=())
    rt_interval: IntervalEstimate | None = field(repr=False, default=None)
    variance_reduction: float | None = field(repr=False, default=None)

    @property
    def n_replications(self) -> int:
        """Replications behind this point (1 for a bare point)."""
        return len(self.replications) if self.replications else 1

    @property
    def rt_half_width(self) -> float:
        """Achieved confidence half-width of the mean response time."""
        return self.rt_interval.half_width if self.rt_interval else 0.0

    @property
    def rt_relative_half_width(self) -> float:
        """Achieved half-width relative to the mean (``inf`` at mean 0)."""
        if self.rt_interval is not None:
            return self.rt_interval.relative_half_width
        return 0.0

    def response_time_interval(self, confidence: float = 0.95):
        """Cross-replication confidence interval for the mean RT.

        Returns an :class:`~repro.sim.stats.IntervalEstimate`; with a
        single replication the half-width is zero (no variance
        information).  The interval computed during point assembly is
        memoised in ``rt_interval``, so calls at the assembly confidence
        are free; other confidence levels are recomputed on the fly.
        """
        cached = self.rt_interval
        if cached is not None and cached.confidence == confidence:
            return cached
        summary = ReplicationSummary()
        for result in self.replications:
            summary.add_replication(result.mean_response_time)
        if not self.replications:
            summary.add_replication(self.mean_response_time)
        return summary.interval(confidence)


@dataclass(frozen=True)
class Curve:
    """One strategy swept over arrival rates."""

    label: str
    comm_delay: float
    points: tuple[CurvePoint, ...]

    @property
    def rates(self) -> tuple[float, ...]:
        return tuple(point.total_rate for point in self.points)

    @property
    def response_times(self) -> tuple[float, ...]:
        return tuple(point.mean_response_time for point in self.points)

    @property
    def throughputs(self) -> tuple[float, ...]:
        return tuple(point.throughput for point in self.points)

    @property
    def shipped_fractions(self) -> tuple[float, ...]:
        return tuple(point.shipped_fraction for point in self.points)

    def max_supported_rate(self, response_limit: float = 4.0) -> float:
        """Largest swept rate whose mean RT stays under ``response_limit``.

        The paper's "maximum transaction rate supportable" read off a
        response-time-versus-throughput curve.
        """
        supported = 0.0
        for point in self.points:
            if point.mean_response_time <= response_limit:
                supported = max(supported, point.throughput)
        return supported


def _average(values: list[float]) -> float:
    if not values:
        raise ValueError(
            "cannot average zero replications; RunSettings.replications "
            "must be >= 1")
    return sum(values) / len(values)


def _check_strategy(strategy: str | StrategyBuilder) -> None:
    """Fail fast (with KeyError, as the serial loop did) on bad names."""
    if isinstance(strategy, str) and strategy not in STRATEGIES:
        raise KeyError(strategy)


def _replication_spec(strategy: str | StrategyBuilder, total_rate: float,
                      comm_delay: float, settings: RunSettings,
                      config_overrides: dict, replication: int,
                      fault_plan=None) -> JobSpec:
    """The job for one replication, seeded by
    :meth:`RunSettings.replication_seed` (``base_seed + r`` by default,
    rate-keyed CRN hashing under ``settings.crn``), fixed and adaptive
    alike.
    """
    return JobSpec(strategy=strategy, config=settings.config_for(
        total_rate, comm_delay,
        seed=settings.replication_seed(total_rate, replication),
        **config_overrides),
        fault_plan=fault_plan)


def _point_specs(strategy: str | StrategyBuilder, total_rate: float,
                 comm_delay: float, settings: RunSettings,
                 config_overrides: dict,
                 fault_plan=None) -> list[JobSpec]:
    """One job per replication of the fixed grid."""
    return [
        _replication_spec(strategy, total_rate, comm_delay, settings,
                          config_overrides, replication,
                          fault_plan=fault_plan)
        for replication in range(settings.replications)
    ]


def _assemble_point(total_rate: float,
                    results: Sequence[SimulationResult],
                    confidence: float = 0.95,
                    control_variates: bool = False,
                    analytic=None) -> CurvePoint:
    """Average one rate's replications into a curve point.

    The cross-replication interval is computed here, once, and stored on
    the point (``rt_interval``) so downstream report/export code never
    rebuilds the accumulator.

    With ``control_variates`` the replications' known-expectation
    covariates (optionally joined by ``analytic``, an
    :class:`~repro.analysis.variance.AnalyticCovariate`) feed the
    jackknifed regression adjustment: when it yields a strictly tighter
    interval, the adjusted mean and interval replace the plain ones and
    the point records the variance-reduction ratio; otherwise the plain
    estimator stands (``variance_reduction`` 1.0).
    """
    results = list(results)
    rows = None
    if control_variates:
        from ..analysis.variance import point_covariates
        rows = point_covariates(results, analytic=analytic)
    summary = ReplicationSummary()
    for index, result in enumerate(results):
        summary.add_replication(
            result.mean_response_time,
            covariates=rows[index] if rows is not None else None)
    mean_rt = _average([r.mean_response_time for r in results])
    interval = summary.interval(confidence)
    variance_reduction = None
    if control_variates:
        adjusted = summary.adjusted_interval(confidence)
        interval = adjusted.interval
        if adjusted.used:
            mean_rt = adjusted.interval.mean
        variance_reduction = adjusted.variance_reduction
    return CurvePoint(
        total_rate=total_rate,
        mean_response_time=mean_rt,
        throughput=_average([r.throughput for r in results]),
        shipped_fraction=_average([r.shipped_fraction for r in results]),
        abort_rate=_average([r.abort_rate for r in results]),
        local_utilization=_average(
            [r.mean_local_utilization for r in results]),
        central_utilization=_average(
            [r.mean_central_utilization for r in results]),
        replications=tuple(results),
        rt_interval=interval,
        variance_reduction=variance_reduction,
    )


def _point_analytic(settings: RunSettings, total_rate: float,
                    comm_delay: float, config_overrides: dict):
    """The analytic covariate for one point (``None`` when CV is off,
    the model saturates at this load, or the optimiser cannot run on
    this configuration)."""
    if not settings.control_variates:
        return None
    from ..analysis.variance import make_analytic_covariate
    try:
        return make_analytic_covariate(
            settings.config_for(total_rate, comm_delay,
                                **config_overrides))
    except (ValueError, ZeroDivisionError):
        return None


def run_point(strategy: str | StrategyBuilder, total_rate: float,
              comm_delay: float = 0.2,
              settings: RunSettings | None = None,
              workers: int | None = 1,
              cache: ResultCache | None = None,
              fault_plan=None,
              **config_overrides) -> CurvePoint:
    """Run one strategy at one arrival rate (averaging replications).

    ``workers`` > 1 fans the replications out over a process pool;
    ``cache`` reuses previously simulated results.  Both leave the
    returned point bit-identical to a serial, uncached run.  Passing a
    ``fault_plan`` injects its episodes into every replication.  A
    :class:`PrecisionSettings` switches the point into adaptive mode:
    replications are added in rounds until the precision target (or the
    cap) is reached.
    """
    settings = settings or RunSettings()
    _check_strategy(strategy)
    if isinstance(settings, PrecisionSettings):
        from .adaptive import run_adaptive_curve_set

        outcome = run_adaptive_curve_set(
            [(strategy, "point", [total_rate])], comm_delay=comm_delay,
            settings=settings, workers=workers, cache=cache,
            fault_plan=fault_plan, **config_overrides)
        return outcome.curves[0].points[0]
    runner = ParallelRunner(workers=workers, cache=cache)
    specs = _point_specs(strategy, total_rate, comm_delay, settings,
                         config_overrides, fault_plan=fault_plan)
    return _assemble_point(
        total_rate, runner.run_jobs(specs),
        control_variates=settings.control_variates,
        analytic=_point_analytic(settings, total_rate, comm_delay,
                                 config_overrides))


def run_single(strategy: str | StrategyBuilder, total_rate: float,
               comm_delay: float = 0.2,
               settings: RunSettings | None = None,
               tracer=None, fault_plan=None,
               registry=None, audit=None, instrument=None,
               **config_overrides) -> SimulationResult:
    """Run one strategy at one rate, once, returning the raw result.

    Unlike :func:`run_point` this performs a single replication and
    returns the full :class:`SimulationResult` -- including the
    response-time decomposition, windowed telemetry and engine profile
    -- rather than cross-replication averages.  Pass a
    :class:`~repro.sim.trace.Tracer` to capture the event log for JSONL
    export, a :class:`~repro.sim.faults.FaultPlan` to inject faults, a
    :class:`~repro.obs.registry.MetricsRegistry` to share the metrics
    registry with the caller, and a
    :class:`~repro.obs.audit.RoutingAudit` to capture every placement
    decision with its estimator inputs.  ``instrument`` is called with
    the wired :class:`HybridSystem` just before the run starts --
    the hook point for observers that must attach pre-run (e.g.
    :class:`~repro.obs.profiler.EngineProfiler`).
    """
    settings = settings or RunSettings()
    builder = STRATEGIES[strategy] if isinstance(strategy, str) else strategy
    config = settings.config_for(total_rate, comm_delay,
                                 seed=settings.base_seed, **config_overrides)
    router_factory = builder(config)
    system = HybridSystem(config, router_factory, tracer=tracer,
                          fault_plan=fault_plan, registry=registry,
                          audit=audit)
    if instrument is not None:
        instrument(system)
    return system.run()


def run_curve(strategy: str | StrategyBuilder, rates: list[float],
              label: str | None = None, comm_delay: float = 0.2,
              settings: RunSettings | None = None,
              workers: int | None = 1,
              cache: ResultCache | None = None,
              **config_overrides) -> Curve:
    """Sweep one strategy over arrival rates.

    All (rate, replication) simulations of the sweep are independent, so
    with ``workers`` > 1 the whole curve is fanned out over one process
    pool rather than point by point.
    """
    if label is None:
        label = strategy if isinstance(strategy, str) else "custom"
    curves = run_curve_set([(strategy, label, list(rates))],
                           comm_delay=comm_delay, settings=settings,
                           workers=workers, cache=cache,
                           **config_overrides)
    return curves[0]


def run_curve_set(entries: Sequence[tuple[str | StrategyBuilder, str,
                                          list[float]]],
                  comm_delay: float = 0.2,
                  settings: RunSettings | None = None,
                  workers: int | None = 1,
                  cache: ResultCache | None = None,
                  **config_overrides) -> list[Curve]:
    """Run several ``(strategy, label, rates)`` sweeps as one job batch.

    This is the figure harness's entry point: batching every curve of a
    figure into a single :class:`ParallelRunner` call keeps the pool
    saturated across strategies instead of joining between curves.
    Results are reassembled strictly in submission order, so the output
    is bit-identical to running each curve serially.

    With a :class:`PrecisionSettings` the whole set runs adaptively:
    rounds of replications are submitted across *all* unconverged
    points at once (pool stays saturated while converged points drop
    out) until every point meets the precision target or its cap.
    """
    settings = settings or RunSettings()
    if isinstance(settings, PrecisionSettings):
        from .adaptive import run_adaptive_curve_set

        return list(run_adaptive_curve_set(
            entries, comm_delay=comm_delay, settings=settings,
            workers=workers, cache=cache, **config_overrides).curves)
    specs: list[JobSpec] = []
    layout: list[tuple[str | StrategyBuilder, str, list[float],
                       list[int]]] = []
    for strategy, label, rates in entries:
        _check_strategy(strategy)
        counts: list[int] = []
        for rate in rates:
            point_specs = _point_specs(strategy, rate, comm_delay,
                                       settings, config_overrides)
            counts.append(len(point_specs))
            specs.extend(point_specs)
        layout.append((strategy, label, list(rates), counts))

    results = ParallelRunner(workers=workers, cache=cache).run_jobs(specs)

    # The analytic covariate is strategy-free, so one build serves every
    # curve of the set at that rate.
    analytic_by_rate: dict[float, object] = {}
    if settings.control_variates:
        for _, _, rates in entries:
            for rate in rates:
                if rate not in analytic_by_rate:
                    analytic_by_rate[rate] = _point_analytic(
                        settings, rate, comm_delay, config_overrides)

    curves: list[Curve] = []
    cursor = 0
    for strategy, label, rates, counts in layout:
        points = []
        for rate, count in zip(rates, counts):
            points.append(_assemble_point(
                rate, results[cursor:cursor + count],
                control_variates=settings.control_variates,
                analytic=analytic_by_rate.get(rate)))
            cursor += count
        curves.append(Curve(label=label, comm_delay=comm_delay,
                            points=tuple(points)))
    return curves
