"""Plain-text reporting of experiment results.

The paper's figures are line plots; in a terminal reproduction the same
information is rendered as aligned tables (one row per swept rate, one
column per curve) plus an ASCII sparkline per curve for quick shape
checks.  ``figure_report`` produces the full block the benchmarks and
the CLI print.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .figures import FigureData
from .runner import Curve, CurvePoint

__all__ = ["format_table", "sparkline", "figure_report", "curve_summary"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Map a series to a coarse character ramp (for shape inspection)."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Align columns with two-space gutters."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(header.ljust(widths[i])
                       for i, header in enumerate(headers))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _metric_for(figure: FigureData) -> Callable[[CurvePoint], float]:
    if "fraction" in figure.y_axis:
        return lambda point: point.shipped_fraction
    return lambda point: point.mean_response_time


def figure_report(figure: FigureData) -> str:
    """Render one reproduced figure as a text block.

    When points carry multiple replications, each cell shows the mean
    plus the 95% cross-replication half-width (``1.23±0.04``).
    """
    metric = _metric_for(figure)
    rates = sorted({point.total_rate
                    for curve in figure.curves for point in curve.points})
    headers = ["rate(tps)"] + [curve.label for curve in figure.curves]
    rows = []
    for rate in rates:
        row = [f"{rate:g}"]
        for curve in figure.curves:
            match = [point for point in curve.points
                     if point.total_rate == rate]
            if not match:
                row.append("-")
                continue
            point = match[0]
            cell = f"{metric(point):.3f}"
            if len(point.replications) > 1 and \
                    "fraction" not in figure.y_axis:
                half = point.response_time_interval().half_width
                cell += f"+-{half:.3f}"
            row.append(cell)
        rows.append(row)
    lines = [
        f"Figure {figure.figure_id}: {figure.title}",
        f"  x: {figure.x_axis}",
        f"  y: {figure.y_axis}",
        "",
        format_table(headers, rows),
        "",
        "shape:",
    ]
    for curve in figure.curves:
        lines.append(f"  {curve.label:<24} "
                     f"{sparkline([metric(p) for p in curve.points])}")
    if any(point.n_replications > 1
           for curve in figure.curves for point in curve.points):
        lines.append("")
        lines.append("replications per point:")
        for curve in figure.curves:
            counts = " ".join(str(point.n_replications)
                              for point in curve.points)
            lines.append(f"  {curve.label:<24} {counts}")
    lines.append("")
    lines.append("expected (from the paper):")
    for expectation in figure.expectations:
        lines.append(f"  - {expectation}")
    return "\n".join(lines)


def curve_summary(curve: Curve, response_limit: float = 4.0) -> str:
    """One-line summary: supportable rate and best/worst response time.

    Multi-replication curves append their replication-count range --
    constant on a fixed grid, spread out under adaptive control.
    """
    best = min(point.mean_response_time for point in curve.points)
    worst = max(point.mean_response_time for point in curve.points)
    supported = curve.max_supported_rate(response_limit)
    line = (f"{curve.label}: supports {supported:.1f} tps "
            f"(RT<= {response_limit:g}s), RT range "
            f"[{best:.2f}, {worst:.2f}]s")
    counts = [point.n_replications for point in curve.points]
    if max(counts) > 1:
        spread = (str(counts[0]) if min(counts) == max(counts)
                  else f"{min(counts)}-{max(counts)}")
        line += f", reps {spread}"
    return line
