"""Plain-text reporting of experiment results.

The paper's figures are line plots; in a terminal reproduction the same
information is rendered as aligned tables (one row per swept rate, one
column per curve) plus an ASCII sparkline per curve for quick shape
checks.  ``figure_report`` produces the full block the benchmarks and
the CLI print.

This module is also the single place run summaries are rendered:
:func:`run_report` is the full single-run block (response-time
decomposition, telemetry, fault handling, engine profile, metrics
dashboard), :func:`metrics_dashboard` renders a frozen registry
snapshot as a terminal or markdown table, and
:func:`execution_summary` is the uniform wall-clock/worker/cache
trailer every CLI mode prints.
"""

from __future__ import annotations

import re
from typing import Callable, Sequence

from .figures import FigureData
from .runner import Curve, CurvePoint

__all__ = ["format_table", "sparkline", "figure_report", "curve_summary",
           "metrics_dashboard", "run_report", "point_report",
           "execution_summary"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Map a series to a coarse character ramp (for shape inspection)."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    chars = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Align columns with two-space gutters."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(header.ljust(widths[i])
                       for i, header in enumerate(headers))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _metric_for(figure: FigureData) -> Callable[[CurvePoint], float]:
    if "fraction" in figure.y_axis:
        return lambda point: point.shipped_fraction
    return lambda point: point.mean_response_time


def figure_report(figure: FigureData) -> str:
    """Render one reproduced figure as a text block.

    When points carry multiple replications, each cell shows the mean
    plus the 95% cross-replication half-width (``1.23±0.04``).
    """
    metric = _metric_for(figure)
    rates = sorted({point.total_rate
                    for curve in figure.curves for point in curve.points})
    headers = ["rate(tps)"] + [curve.label for curve in figure.curves]
    rows = []
    for rate in rates:
        row = [f"{rate:g}"]
        for curve in figure.curves:
            match = [point for point in curve.points
                     if point.total_rate == rate]
            if not match:
                row.append("-")
                continue
            point = match[0]
            cell = f"{metric(point):.3f}"
            if len(point.replications) > 1 and \
                    "fraction" not in figure.y_axis:
                half = point.response_time_interval().half_width
                cell += f"+-{half:.3f}"
            row.append(cell)
        rows.append(row)
    lines = [
        f"Figure {figure.figure_id}: {figure.title}",
        f"  x: {figure.x_axis}",
        f"  y: {figure.y_axis}",
        "",
        format_table(headers, rows),
        "",
        "shape:",
    ]
    for curve in figure.curves:
        lines.append(f"  {curve.label:<24} "
                     f"{sparkline([metric(p) for p in curve.points])}")
    if any(point.n_replications > 1
           for curve in figure.curves for point in curve.points):
        lines.append("")
        lines.append("replications per point:")
        for curve in figure.curves:
            counts = " ".join(str(point.n_replications)
                              for point in curve.points)
            lines.append(f"  {curve.label:<24} {counts}")
    lines.append("")
    lines.append("expected (from the paper):")
    for expectation in figure.expectations:
        lines.append(f"  - {expectation}")
    return "\n".join(lines)


def curve_summary(curve: Curve, response_limit: float = 4.0) -> str:
    """One-line summary: supportable rate and best/worst response time.

    Multi-replication curves append their replication-count range --
    constant on a fixed grid, spread out under adaptive control.
    """
    best = min(point.mean_response_time for point in curve.points)
    worst = max(point.mean_response_time for point in curve.points)
    supported = curve.max_supported_rate(response_limit)
    line = (f"{curve.label}: supports {supported:.1f} tps "
            f"(RT<= {response_limit:g}s), RT range "
            f"[{best:.2f}, {worst:.2f}]s")
    counts = [point.n_replications for point in curve.points]
    if max(counts) > 1:
        spread = (str(counts[0]) if min(counts) == max(counts)
                  else f"{min(counts)}-{max(counts)}")
        line += f", reps {spread}"
    return line


# -- registry dashboard -------------------------------------------------------

_METRIC_KEY = re.compile(
    r"^(?P<name>[^{]+?)(?:\{(?P<labels>[^}]*)\})?$")

_HIST_SUFFIXES = ("_count", "_sum", "_min", "_max")

#: Breakdown rows shown per instrument before eliding (link gauges can
#: carry dozens of label combinations).
_MAX_BREAKDOWN = 8


def _split_snapshot(metrics: dict) -> tuple[dict, dict]:
    """Partition a flat snapshot into scalar and histogram series.

    Histograms expand to four suffixed keys per label set; a series is
    recognised when its ``_count`` and ``_sum`` keys both exist.
    """
    histograms: dict[str, dict[str, float]] = {}
    scalars: dict[str, float] = {}
    keys = set(metrics)
    for key, value in metrics.items():
        for suffix in _HIST_SUFFIXES:
            if key.endswith(suffix):
                stem = key[:-len(suffix)]
                if stem + "_count" in keys and stem + "_sum" in keys:
                    histograms.setdefault(stem, {})[suffix[1:]] = value
                    break
        else:
            scalars[key] = value
    return scalars, histograms


def metrics_dashboard(metrics: dict, markdown: bool = False) -> str:
    """Render a frozen registry snapshot (``SimulationResult.metrics``).

    Scalars are grouped per instrument with per-label breakdowns;
    histogram series show count/mean/min/max.  ``markdown=True`` emits a
    GitHub-flavoured table instead of the aligned terminal layout.
    """
    if not metrics:
        return "metrics: (empty registry)"
    scalars, histograms = _split_snapshot(metrics)

    groups: dict[str, list[tuple[str, float]]] = {}
    for key, value in scalars.items():
        match = _METRIC_KEY.match(key)
        name = match.group("name") if match else key
        labels = (match.group("labels") or "") if match else ""
        groups.setdefault(name, []).append((labels, value))

    rows: list[tuple[str, str, str]] = []
    for name in sorted(groups):
        children = sorted(groups[name])
        total = sum(value for _labels, value in children)
        total_text = f"{total:g}"
        if len(children) == 1 and not children[0][0]:
            rows.append((name, total_text, ""))
            continue
        shown = children[:_MAX_BREAKDOWN]
        breakdown = "  ".join(f"{labels}={value:g}"
                              for labels, value in shown)
        if len(children) > _MAX_BREAKDOWN:
            breakdown += f"  (+{len(children) - _MAX_BREAKDOWN} more)"
        rows.append((name, total_text, breakdown))
    for stem in sorted(histograms):
        series = histograms[stem]
        count = series.get("count", 0)
        mean = series.get("sum", 0.0) / count if count else 0.0
        rows.append((stem, f"n={count:g}",
                     f"mean={mean:.4f}  min={series.get('min', 0):.4f}  "
                     f"max={series.get('max', 0):.4f}"))

    if markdown:
        lines = ["| metric | total | breakdown |",
                 "| --- | --- | --- |"]
        for name, total, breakdown in rows:
            lines.append(f"| `{name}` | {total} | {breakdown} |")
        return "\n".join(lines)
    header = (f"Metrics registry: {len(groups)} instrument(s)"
              + (f", {len(histograms)} histogram series"
                 if histograms else ""))
    return header + "\n" + format_table(
        ("metric", "total", "breakdown"), rows)


# -- unified run summary ------------------------------------------------------

def run_report(result, fault_plan_active: bool = False) -> str:
    """The full single-run text block (``--run`` output).

    One renderer for every consumer (CLI, bench, tests): headline
    figures, response-time decomposition, telemetry shape and warm-up
    verdict, fault handling when active, the engine profile line and
    the registry dashboard.
    """
    from .export import decomposition_rows

    lines = [
        f"{result.strategy} @ rate={result.total_rate:g} txn/s, "
        f"comm_delay={result.comm_delay:g}s, seed={result.seed}",
        f"  mean response time  {result.mean_response_time:.4f} s",
        f"  throughput          {result.throughput:.2f} txn/s",
        f"  shipped fraction    {result.shipped_fraction:.1%}",
        f"  abort rate          {result.abort_rate:.3f}",
        "",
        "Response-time decomposition",
    ]
    rows = [(row["phase"], f"{row['mean_seconds']:.4f}",
             f"{row['fraction']:.1%}")
            for row in decomposition_rows(result)]
    lines.append(format_table(("phase", "mean s", "share"), rows))
    lines.append(f"  [decomposition residual vs mean RT: "
                 f"{result.decomposition_residual:.2e}]")
    lines.append("")

    windows = result.telemetry
    lines.append(f"Telemetry: {len(windows)} window(s) of "
                 f"{result.telemetry_interval:g}s"
                 + (f", {result.telemetry_windows_dropped} evicted"
                    if result.telemetry_windows_dropped else ""))
    if windows:
        lines.append("  throughput  "
                     + sparkline([w.throughput for w in windows]))
        lines.append("  population  "
                     + sparkline([float(w.population) for w in windows]))
    adequate = result.warmup_adequate
    if adequate is None:
        lines.append("  warm-up adequacy: not judged (too few windows)")
    else:
        trend = ", ".join(f"{name} {drift:+.0%}"
                          for name, drift in result.warmup_trend.items())
        verdict = "OK" if adequate else "SUSPECT (still trending)"
        lines.append(f"  warm-up adequacy: {verdict} [{trend}]")
    lines.append("")

    if fault_plan_active:
        lines.append(availability_report(result))
        lines.append("")

    lines.append(f"Engine: {result.engine_events} events, "
                 f"{result.engine_events_per_sec:,.0f} events/s, "
                 f"heap peak {result.engine_heap_peak}")
    if result.metrics:
        lines.append("")
        lines.append(metrics_dashboard(result.metrics))
    return "\n".join(lines)


def point_report(point: CurvePoint, comm_delay: float) -> str:
    """The merged replicated-run text block (``--run --replications N``).

    Cross-replication averages with the achieved confidence interval,
    plus one row per replication so outliers are visible.  The numbers
    are bit-identical whatever ``--workers`` executed the replications
    (the parallel layer zeroes wall-clock-derived fields before
    merging).
    """
    replications = point.replications
    strategy = replications[0].strategy if replications else "?"
    lines = [
        f"{strategy} @ rate={point.total_rate:g} txn/s, "
        f"comm_delay={comm_delay:g}s, "
        f"{point.n_replications} replication(s)",
        f"  mean response time  {point.mean_response_time:.4f} s"
        + (f"  (95% CI half-width {point.rt_half_width:.4f})"
           if point.rt_interval is not None else ""),
        f"  throughput          {point.throughput:.2f} txn/s",
        f"  shipped fraction    {point.shipped_fraction:.1%}",
        f"  abort rate          {point.abort_rate:.3f}",
        f"  local utilization   {point.local_utilization:.1%}",
        f"  central utilization {point.central_utilization:.1%}",
    ]
    if replications:
        lines.append("")
        lines.append(format_table(
            ("seed", "mean RT", "throughput", "aborts", "events"),
            [(str(r.seed), f"{r.mean_response_time:.4f}",
              f"{r.throughput:.2f}", f"{r.abort_rate:.3f}",
              f"{r.engine_events:,}") for r in replications]))
    return "\n".join(lines)


def availability_report(result) -> str:
    """Fault-handling block of a single-run report."""
    lines = [
        "Fault handling",
        f"  availability        {result.availability:.4f}",
        f"  timed out           {result.txns_timed_out}",
        f"  failed over (A)     {result.txns_failed_over}",
        f"  failed (B)          {result.txns_failed}",
        f"  cancelled @central  {result.txns_cancelled_central}",
        f"  fallback routings   {result.fallback_routings}",
        f"  arrivals rejected   {result.arrivals_rejected}",
        f"  messages dropped    {result.messages_dropped}, "
        f"retransmitted {result.messages_retransmitted}, "
        f"duplicates {result.duplicate_messages}",
    ]
    if (result.failover_takeovers or result.site_rejoins or
            result.arrivals_shed or result.txns_lost_in_crash or
            result.txns_deadline_cancelled or result.txns_reshipped or
            result.breaker_transitions):
        lines.append(
            f"  recovery            {result.failover_takeovers} "
            f"takeover(s), {result.site_rejoins} rejoin(s), "
            f"{result.txns_reshipped} reshipped")
        lines.append(
            f"  overload control    {result.arrivals_shed} shed, "
            f"{result.txns_deadline_cancelled} deadline-cancelled, "
            f"{result.breaker_transitions} breaker transition(s)")
        if result.txns_lost_in_crash:
            lines.append(f"  lost in crash       "
                         f"{result.txns_lost_in_crash}")
    if result.mttr is not None:
        mtbf = ("n/a" if result.mtbf is None
                else f"{result.mtbf:.1f}s")
        lines.append(f"  MTTR {result.mttr:.2f}s, MTBF {mtbf}")
    for report in result.fault_episodes:
        recover = ("not within run" if report.time_to_recover is None
                   else f"recovered in {report.time_to_recover:.1f}s")
        if report.recovery_time is not None:
            recover += f" (repair protocol {report.recovery_time:.2f}s)"
        target = "" if report.site is None else f" site {report.site}"
        lines.append(f"  {report.kind}{target} "
                     f"[{report.start:g}s..{report.end:g}s]: throughput "
                     f"{report.baseline_throughput:.1f} -> "
                     f"{report.degraded_throughput:.1f} txn/s, {recover}")
    return "\n".join(lines)


def execution_summary(elapsed: float, workers: int | None = None,
                      cache=None, pool=None) -> str:
    """The uniform execution trailer every CLI mode prints.

    ``[12.3s of wall-clock simulation, 4 worker(s)]`` plus, when
    available, the cache hit/miss line and the parallel-pool job split
    (cached vs executed).  ``pool`` accepts anything exposing
    ``jobs_cached``/``jobs_executed`` (:class:`ParallelRunner`).
    """
    line = f"[{elapsed:.1f}s of wall-clock simulation"
    if workers is not None:
        line += f", {workers} worker(s)"
    line += "]"
    lines = [line]
    if pool is not None:
        lines.append(f"[pool: {pool.jobs_cached} job(s) from cache, "
                     f"{pool.jobs_executed} executed]")
    if cache is not None:
        lines.append(f"[{cache.stats()}]")
    return "\n".join(lines)
