"""Content-addressed on-disk cache for simulation results.

Overlapping figures re-simulate identical curves (4.1 and 4.2 share the
best-dynamic sweep; 4.5-4.7 repeat the 0.5 s-delay studies), and
re-running a figure after editing only the report code used to pay the
full simulation cost again.  This cache makes every completed
(configuration, strategy) simulation reusable: results are stored under
a key derived *only* from the inputs that determine the simulation's
output, so any run anywhere in the harness that would reproduce an
already-computed :class:`~repro.hybrid.metrics.SimulationResult` loads
it from disk instead.

Key derivation
--------------

The key is the SHA-256 of a canonical JSON rendering of:

* every field of :class:`~repro.hybrid.config.SystemConfig` (which
  includes the workload parameters, the seed and the simulated horizon),
* the strategy's stable cache identity (its registry name, or the
  ``cache_key`` attribute of a picklable strategy object), and
* a cache-format version salt (bump :data:`CACHE_VERSION` whenever the
  simulator's output semantics change).

Strategies without a stable identity (arbitrary closures) are simply
never cached -- correctness over coverage.

Stored values are pickled ``SimulationResult`` objects.  Two wall-clock
profiling fields (``engine_events_per_sec`` and ``wall_clock_seconds``)
are zeroed before storage so cached results are bit-identical to what a
deterministic re-run would produce in every simulation-determined field.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from ..hybrid.config import SystemConfig
from ..hybrid.metrics import SimulationResult

__all__ = ["ResultCache", "default_cache_dir", "CACHE_VERSION"]

#: Bump to invalidate every existing cache entry (simulator semantics
#: change, result-schema change, ...).
#: 2: SimulationResult gained the ``metrics`` registry-snapshot field.
#: 3: stream-name key derivation fixed (full-digest spawn keys) -- every
#:    sample path shifted, so pre-fix results are not comparable.
#: 4: SimulationResult gained the control-variate ``covariates`` /
#:    ``covariate_means`` fields; pre-bump pickles lack them and would
#:    raise on attribute access.
#: 5: SystemConfig gained the commit-protocol fields (``protocol`` /
#:    ``epoch_interval``) and SimulationResult gained ``protocol`` /
#:    ``protocol_counters``; pre-bump keys were derived without the new
#:    config fields and pre-bump pickles lack the result fields.
CACHE_VERSION = 5

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "HYBRIDDB_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$HYBRIDDB_CACHE_DIR`` or XDG cache."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "hybriddb" / "results"


def _canonical(value: Any) -> Any:
    """Render a value as JSON-stable primitives (sorted, typed)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {name: _canonical(getattr(value, name))
                for name in sorted(f.name for f in
                                   dataclasses.fields(value))}
    if isinstance(value, dict):
        return {str(key): _canonical(item)
                for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot canonicalise {value!r} for cache keying")


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` objects.

    Parameters
    ----------
    root:
        Directory holding the pickled entries (created lazily).
        ``None`` selects :func:`default_cache_dir`.

    The ``hits`` / ``misses`` counters cover only cacheable lookups
    (strategies with a stable identity); they feed the CLI summary.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- keying -------------------------------------------------------------

    @staticmethod
    def key_for(config: SystemConfig, strategy_key: str,
                fault_plan: Any = None) -> str:
        """Stable content hash of one (configuration, strategy) job.

        A non-empty fault plan (schedule *and* retry policy) changes the
        simulation's output, so it joins the payload; ``None`` and the
        empty plan produce bit-identical runs and deliberately share the
        plain key, keeping every pre-existing cache entry valid.
        """
        payload = {
            "version": CACHE_VERSION,
            "strategy": strategy_key,
            "config": _canonical(config),
        }
        if fault_plan is not None and not fault_plan.is_empty:
            payload["faults"] = _canonical(fault_plan)
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       separators=(",", ":")).encode("utf-8"))
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    # -- access -------------------------------------------------------------

    def get(self, key: str) -> SimulationResult | None:
        """Look up a result; counts the hit or miss."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupt or unreadable entry: drop it and treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Store a result atomically (write-to-temp then rename)."""
        # Zero the wall-clock-dependent profiling fields so a cache hit
        # is indistinguishable from a deterministic re-run.
        result = dataclasses.replace(
            result, engine_events_per_sec=0.0, wall_clock_seconds=0.0)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- maintenance ---------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> str:
        """One-line hit/miss summary for CLI output."""
        return (f"cache: {self.hits} hit(s), {self.misses} miss(es) "
                f"[{self.root}]")
