"""Variance-reduction glue: covariate assembly and paired curve deltas.

The statistical estimators live in :mod:`repro.sim.stats` (jackknifed
control variates, paired-t differences); this module connects them to
the experiment stack:

* :func:`result_covariates` turns one
  :class:`~repro.hybrid.metrics.SimulationResult`'s emitted covariates
  into the ``name -> (observed, expected)`` rows a
  :class:`~repro.sim.stats.ReplicationSummary` consumes;
* :class:`AnalyticCovariate` adds the *external* covariate -- the
  Section 3.1 fixed-point model's predicted response time, evaluated at
  each replication's realised arrival rate (the same analytic-peer
  pattern the verify suite uses, now put to work shrinking CIs);
* :func:`point_covariates` combines both, with the fault guard that
  keeps control variates out of runs whose covariate expectations no
  longer hold (faults reject/shed arrivals, so the Poisson-count means
  are wrong there);
* :func:`paired_curve_difference` ranks two strategy curves rate by
  rate with paired-t deltas -- the estimator that common random numbers
  (:func:`repro.sim.rng.crn_seed`) exist to sharpen.

Known-expectation catalogue
---------------------------

``arrivals_a`` / ``arrivals_b`` are thinned-Poisson counts over the
measurement window, so their means (``p_local * rate * T`` and
``(1 - p_local) * rate * T``) are exact.  ``demand_seconds`` is the
(currently deterministic) per-transaction service demand times the
count -- exactly collinear with the counts today, kept in the catalogue
for stochastic-workload futures; the least-squares adjustment tolerates
the collinearity.  The analytic covariate's expectation is a *plug-in*:
``E[h(realised rate)]`` is approximated by ``h(configured rate)``,
exact only to first order (the second-order term is O(var/n) and
strategy-symmetric, so it cancels from strategy comparisons).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..sim.stats import PairedDifference, paired_difference

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hybrid.config import SystemConfig
    from ..hybrid.metrics import SimulationResult

__all__ = [
    "AnalyticCovariate",
    "make_analytic_covariate",
    "result_covariates",
    "point_covariates",
    "results_have_faults",
    "PairedPointDelta",
    "paired_curve_difference",
]

#: Name under which the analytic model's prediction joins the catalogue.
ANALYTIC_COVARIATE = "model_response_time"


@dataclass(frozen=True)
class AnalyticCovariate:
    """The fixed-point model's RT prediction as an external covariate.

    Built once per experiment point (the static optimisation behind
    ``p_ship`` costs ~60 model solves); :meth:`observe` then maps each
    replication's realised arrival count to a prediction.  ``p_ship`` is
    the *static-optimal* shipping probability at the configured rate --
    a strategy-free reference, so every strategy at this point shares
    the same covariate definition and the adjustment never favours one
    curve over another.
    """

    model: object
    p_ship: float
    rate_per_site: float
    expected: float

    def observe(self, result: "SimulationResult") -> float | None:
        """Model prediction at this replication's realised rate.

        The realised rate is the configured rate scaled by the ratio of
        observed to expected arrivals (both already on the result);
        ``None`` when the model fails to converge there or the
        covariate inputs are missing -- the caller then drops the
        analytic column for the whole point.
        """
        observed = (result.covariates.get("arrivals_a"),
                    result.covariates.get("arrivals_b"))
        expected = (result.covariate_means.get("arrivals_a"),
                    result.covariate_means.get("arrivals_b"))
        if None in observed or None in expected:
            return None
        total_expected = expected[0] + expected[1]
        if total_expected <= 0:
            return None
        ratio = (observed[0] + observed[1]) / total_expected
        estimate = self.model.evaluate(self.p_ship,
                                       self.rate_per_site * ratio)
        value = estimate.response_average
        if not estimate.converged or not math.isfinite(value):
            return None
        return float(value)


def make_analytic_covariate(
        config: "SystemConfig") -> AnalyticCovariate | None:
    """Build the analytic covariate for one point's configuration.

    Returns ``None`` when the model saturates at this load (past the
    knee the fixed point stops converging and the clamped prediction is
    a constant -- worthless as a covariate and flagged accordingly).
    """
    from ..core.model import AnalyticModel
    from ..core.static import optimize_static

    model = AnalyticModel(config)
    optimum = optimize_static(config)
    estimate = optimum.estimates
    if not estimate.converged or \
            not math.isfinite(estimate.response_average):
        return None
    return AnalyticCovariate(
        model=model, p_ship=optimum.p_ship,
        rate_per_site=config.workload.arrival_rate_per_site,
        expected=float(estimate.response_average))


def results_have_faults(results: Sequence["SimulationResult"]) -> bool:
    """True when any replication saw fault activity.

    Faults reject, shed or destroy arrivals, so the Poisson-count
    expectations emitted with the covariates no longer hold; control
    variates must sit such runs out.
    """
    return any(r.fault_events or r.arrivals_rejected or r.arrivals_shed
               or r.txns_lost_in_crash for r in results)


def result_covariates(
        result: "SimulationResult") -> dict[str, tuple[float, float]]:
    """One replication's ``name -> (observed, expected)`` rows."""
    return {name: (result.covariates[name], result.covariate_means[name])
            for name in result.covariates
            if name in result.covariate_means}


def point_covariates(
        results: Sequence["SimulationResult"],
        analytic: AnalyticCovariate | None = None,
) -> list[Mapping[str, tuple[float, float]]]:
    """Covariate rows for every replication of one point.

    The analytic column joins only if it is observable for *every*
    replication (a per-replication gap would misalign the regression);
    under fault activity all covariates are withheld and the caller
    falls back to the plain estimator.
    """
    results = list(results)
    if results_have_faults(results):
        return [{} for _ in results]
    rows = [result_covariates(result) for result in results]
    if analytic is not None:
        predictions = [analytic.observe(result) for result in results]
        if all(value is not None for value in predictions):
            for row, value in zip(rows, predictions):
                row[ANALYTIC_COVARIATE] = (value, analytic.expected)
    return rows


@dataclass(frozen=True)
class PairedPointDelta:
    """Strategy-vs-strategy delta at one rate of a paired curve pair."""

    total_rate: float
    #: ``mean_rt(a) - mean_rt(b)`` with the paired-t machinery.
    difference: PairedDifference
    #: Whether the paired replications actually ran on common random
    #: numbers (seed-identical pairs) -- without CRN the paired CI is
    #: still valid, just no tighter than the independent one.
    common_random_numbers: bool

    @property
    def significant(self) -> bool:
        """The paired CI excludes zero (one curve provably better)."""
        interval = self.difference.interval
        return interval.low > 0.0 or interval.high < 0.0


def paired_curve_difference(curve_a, curve_b,
                            confidence: float = 0.95,
                            ) -> tuple[PairedPointDelta, ...]:
    """Pair two curves' replications rate by rate.

    Both curves must sweep the same rates (they do within a figure).
    Rates where either side has fewer than two replications are
    skipped -- no paired variance exists there.
    """
    by_rate = {point.total_rate: point for point in curve_b.points}
    deltas = []
    for point_a in curve_a.points:
        point_b = by_rate.get(point_a.total_rate)
        if point_b is None:
            continue
        reps_a, reps_b = point_a.replications, point_b.replications
        pairs = min(len(reps_a), len(reps_b))
        if pairs < 2:
            continue
        difference = paired_difference(
            [r.mean_response_time for r in reps_a],
            [r.mean_response_time for r in reps_b],
            confidence=confidence)
        crn = all(a.seed == b.seed for a, b in
                  zip(reps_a[:pairs], reps_b[:pairs]))
        deltas.append(PairedPointDelta(
            total_rate=point_a.total_rate, difference=difference,
            common_random_numbers=crn))
    return tuple(deltas)
