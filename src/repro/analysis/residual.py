"""Residual-time distributions for the abort-probability estimates.

Section 3.1 of the paper estimates which party of a local/central
collision aborts from approximate residual-time distributions:

* the *local* transaction makes lock requests uniformly over its run, so
  at a collision instant its remaining time is **uniform** on ``[0, T]``;
* the probability of colliding with a *central* transaction is
  proportional to the number of locks it already holds, so its remaining
  time ``x`` has density proportional to ``(T - x)`` on ``[0, T]`` (more
  locks held means the transaction is older, hence collisions skew toward
  transactions that are nearly finished);
* during the authentication communications delay the remaining time is
  uniform.

The local transaction aborts when it finishes *after* the authentication
point of the central transaction it collided with; otherwise the central
transaction is the one invalidated.  :func:`probability_local_outlives`
computes that comparison for the distributions above.
"""

from __future__ import annotations

__all__ = [
    "uniform_residual_mean",
    "triangular_residual_mean",
    "probability_local_outlives",
    "mean_holding_time",
]


def uniform_residual_mean(duration: float) -> float:
    """Mean remaining time when the observation instant is uniform."""
    if duration < 0:
        raise ValueError("negative duration")
    return duration / 2.0


def triangular_residual_mean(duration: float) -> float:
    """Mean remaining time under the lock-count-biased density.

    Density f(x) = 2 (T - x) / T^2 on [0, T] gives E[x] = T / 3: a
    collision weighted by locks held lands late in the holder's run.
    """
    if duration < 0:
        raise ValueError("negative duration")
    return duration / 3.0


def mean_holding_time(run_time: float, locks_per_txn: int) -> float:
    """Average per-lock holding time when locks are taken uniformly.

    Lock ``k`` of ``N`` (acquired after a fraction ``k/N`` of the locked
    phase) is held for the remaining ``(N - k + 1) / N`` of ``run_time``;
    averaging over ``k`` gives ``run_time * (N + 1) / (2N)``.
    """
    if run_time < 0:
        raise ValueError("negative run time")
    if locks_per_txn < 1:
        raise ValueError("need at least one lock per transaction")
    n = float(locks_per_txn)
    return run_time * (n + 1.0) / (2.0 * n)


def probability_local_outlives(local_run_time: float,
                               central_run_time: float,
                               auth_delay: float,
                               samples: int = 64) -> float:
    """P(local transaction finishes after the central's authentication).

    The local remaining time ``L`` is uniform on ``[0, T_l]``; the
    central remaining-to-authentication time is ``X + D`` where ``X`` has
    the triangular density ``2 (T_c - x) / T_c**2`` on ``[0, T_c]`` and
    ``D`` is the (deterministic) communications delay of the
    authentication message.  The probability is computed by numeric
    integration over ``X`` (closed-form is straightforward but the
    integral keeps the expression auditable against the paper's prose).
    """
    if local_run_time < 0 or central_run_time < 0 or auth_delay < 0:
        raise ValueError("negative times")
    if local_run_time == 0:
        return 0.0
    if central_run_time == 0:
        # Central is at its very end: local outlives iff L > delay.
        return max(0.0, 1.0 - auth_delay / local_run_time) \
            if auth_delay < local_run_time else 0.0
    total = 0.0
    t_c = central_run_time
    step = t_c / samples
    for i in range(samples):
        x = (i + 0.5) * step
        density = 2.0 * (t_c - x) / (t_c * t_c)
        threshold = x + auth_delay
        if threshold >= local_run_time:
            p_outlive = 0.0
        else:
            p_outlive = 1.0 - threshold / local_run_time
        total += density * p_outlive * step
    return min(max(total, 0.0), 1.0)
