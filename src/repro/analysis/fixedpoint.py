"""Damped fixed-point iteration for the analytical model.

The collision/abort/response-time equations of Section 3.1 are mutually
recursive (abort probabilities depend on lock holding times, which depend
on response times, which depend on abort probabilities).  The paper
solves them iteratively; :func:`solve_fixed_point` provides that solver
with under-relaxation, which keeps the iteration stable near saturation
where the raw map oscillates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

__all__ = ["FixedPointResult", "solve_fixed_point"]

State = Mapping[str, float]


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point solve."""

    state: dict[str, float]
    converged: bool
    iterations: int
    residual: float


def solve_fixed_point(step: Callable[[dict[str, float]], dict[str, float]],
                      initial: State, *, damping: float = 0.5,
                      tolerance: float = 1e-8,
                      max_iterations: int = 500) -> FixedPointResult:
    """Iterate ``x <- (1-d) * x + d * step(x)`` until convergence.

    ``step`` maps a state dict to the next state dict (same keys).  The
    residual is the max absolute *relative* change across keys.  The
    solver never raises on non-convergence -- the caller inspects
    ``converged`` (the analytic model legitimately fails to settle beyond
    saturation, and reports effectively-infinite response times there).
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    current = dict(initial)
    keys = sorted(current)
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        proposed = step(current)
        if set(proposed) != set(keys):
            raise ValueError(
                f"step changed the state keys: {sorted(proposed)} != {keys}")
        residual = 0.0
        updated: dict[str, float] = {}
        for key in keys:
            old = current[key]
            new = (1.0 - damping) * old + damping * proposed[key]
            scale = max(abs(old), abs(new), 1e-12)
            residual = max(residual, abs(new - old) / scale)
            updated[key] = new
        current = updated
        if residual < tolerance:
            return FixedPointResult(current, True, iteration, residual)
    return FixedPointResult(current, False, max_iterations, residual)
