"""Asymptotic capacity bounds for the hybrid system.

Operational bottleneck analysis, independent of the stochastic detail:
given a shipping probability the CPU demand placed on each local site
and on the central complex is a linear function of the arrival rate, so
the saturation throughput is a simple min-over-stations bound.  These
bounds explain the saturation points of Figures 4.1/4.5 (the paper's
"maximum transaction rate supportable") and provide the envelope over
all static policies.

First-run demands only (no rerun inflation), so the bounds are upper
bounds on achievable throughput -- the simulator saturates somewhat
earlier because aborted work re-executes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hybrid.config import SystemConfig

__all__ = ["CapacityBound", "capacity_bound", "best_static_capacity"]


@dataclass(frozen=True)
class CapacityBound:
    """Saturation analysis at one shipping probability."""

    p_ship: float
    local_limit: float      # total tps at which local sites saturate
    central_limit: float    # total tps at which the central saturates
    bottleneck: str

    @property
    def total_limit(self) -> float:
        return min(self.local_limit, self.central_limit)


def _local_demand_per_txn(config: SystemConfig, p_ship: float) -> float:
    """CPU seconds demanded of *one* site per system transaction.

    Each site receives a 1/n share of arrivals.  Per system transaction
    a site pays: the full run cost for its retained class A share, plus
    an authentication burst for each shipped class A transaction of its
    own region and for each class B transaction that masters data there
    (a class B transaction contacts ``class_b_masters`` of the n sites
    on average, i.e. ``class_b_masters / n`` chance per site -- but its
    arrival may be at any site, so per system transaction each site sees
    ``(1 - p_local) * class_b_masters / n`` authentication requests).
    """
    workload = config.workload
    n = workload.n_sites
    k = workload.locks_per_txn
    retained = workload.p_local * (1.0 - p_ship)
    run_cost = config.cpu_seconds_local(
        config.instr_per_txn + config.instr_commit)
    class_b_masters = n * (1.0 - (1.0 - 1.0 / n) ** k)
    auth_cost = config.cpu_seconds_local(config.instr_auth_master)
    auth_requests = (workload.p_local * p_ship +
                     (1.0 - workload.p_local) * class_b_masters)
    return (retained * run_cost + auth_requests * auth_cost) / n


def _central_demand_per_txn(config: SystemConfig, p_ship: float) -> float:
    """Central CPU seconds per system transaction."""
    workload = config.workload
    central_share = (1.0 - workload.p_local) + workload.p_local * p_ship
    run_cost = config.cpu_seconds_central(
        config.instr_per_txn + config.instr_commit +
        config.instr_auth_central)
    update_share = workload.p_local * (1.0 - p_ship)
    update_cost = config.cpu_seconds_central(config.instr_update_apply)
    return central_share * run_cost + update_share * update_cost


def capacity_bound(config: SystemConfig, p_ship: float) -> CapacityBound:
    """Saturation throughput bound at a fixed shipping probability."""
    if not 0.0 <= p_ship <= 1.0:
        raise ValueError(f"p_ship out of range: {p_ship}")
    local_demand = _local_demand_per_txn(config, p_ship)
    central_demand = _central_demand_per_txn(config, p_ship)
    # A station saturates when (total rate) x (demand per system txn)
    # reaches 1 second of CPU per second.
    local_limit = (1.0 / local_demand if local_demand > 0
                   else float("inf"))
    central_limit = (1.0 / central_demand if central_demand > 0
                     else float("inf"))
    bottleneck = ("local" if local_limit <= central_limit else "central")
    return CapacityBound(p_ship=p_ship, local_limit=local_limit,
                         central_limit=central_limit,
                         bottleneck=bottleneck)


def best_static_capacity(config: SystemConfig,
                         grid_points: int = 101) -> CapacityBound:
    """The shipping probability maximising the capacity bound.

    The local limit increases with p_ship while the central limit
    decreases, so the maximum sits where they cross (found on a grid for
    robustness against the authentication-cost kink).
    """
    if grid_points < 2:
        raise ValueError("need at least 2 grid points")
    best = None
    for index in range(grid_points):
        p_ship = index / (grid_points - 1)
        bound = capacity_bound(config, p_ship)
        if best is None or bound.total_limit > best.total_limit:
            best = bound
    return best
