"""Queueing analysis helpers: M/M/1 pieces, fixed points, residual times."""

from .bounds import CapacityBound, best_static_capacity, capacity_bound
from .fixedpoint import FixedPointResult, solve_fixed_point
from .mm1 import (
    MAX_UTILIZATION,
    clamp_utilization,
    mm1_expansion,
    mm1_mean_number,
    mm1_response_time,
    utilization_from_population,
    utilization_from_queue_length,
)
from .residual import (
    mean_holding_time,
    probability_local_outlives,
    triangular_residual_mean,
    uniform_residual_mean,
)
from .variance import (
    AnalyticCovariate,
    PairedPointDelta,
    make_analytic_covariate,
    paired_curve_difference,
    point_covariates,
    result_covariates,
    results_have_faults,
)

__all__ = [
    "CapacityBound",
    "best_static_capacity",
    "capacity_bound",
    "FixedPointResult",
    "solve_fixed_point",
    "MAX_UTILIZATION",
    "clamp_utilization",
    "mm1_expansion",
    "mm1_mean_number",
    "mm1_response_time",
    "utilization_from_population",
    "utilization_from_queue_length",
    "mean_holding_time",
    "probability_local_outlives",
    "triangular_residual_mean",
    "uniform_residual_mean",
    "AnalyticCovariate",
    "PairedPointDelta",
    "make_analytic_covariate",
    "paired_curve_difference",
    "point_covariates",
    "result_covariates",
    "results_have_faults",
]
