"""Elementary queueing formulas used by the analytical model.

The paper's response-time equations expand CPU service times by the
M/M/1-style factor ``1/(1-rho)`` and infer utilisation from observed
queue lengths via the M/M/1 stationary relation ``E[N] = rho/(1-rho)``.
These helpers implement those pieces with the guard rails a fixed-point
solver needs (utilisations clamped strictly below one).
"""

from __future__ import annotations

import math

__all__ = [
    "MAX_UTILIZATION",
    "clamp_utilization",
    "mm1_expansion",
    "mm1_mean_number",
    "mm1_response_time",
    "md1_response_time",
    "utilization_from_queue_length",
    "utilization_from_population",
]

#: Upper clamp applied to every estimated utilisation.  The analytic
#: model must return *finite* response times even for overload inputs so
#: that optimisers and routing comparisons can rank them.
MAX_UTILIZATION = 0.995


def clamp_utilization(rho: float, limit: float = MAX_UTILIZATION) -> float:
    """Clamp a utilisation estimate into ``[0, limit]``."""
    if math.isnan(rho):
        raise ValueError("utilization is NaN")
    return min(max(rho, 0.0), limit)


def mm1_expansion(rho: float) -> float:
    """The queueing expansion factor ``1/(1-rho)`` (clamped)."""
    return 1.0 / (1.0 - clamp_utilization(rho))


def mm1_mean_number(rho: float) -> float:
    """Stationary mean number in an M/M/1 system, ``rho/(1-rho)``."""
    rho = clamp_utilization(rho)
    return rho / (1.0 - rho)


def mm1_response_time(service_time: float, rho: float) -> float:
    """Mean response time of an M/M/1 queue with the given service time."""
    if service_time < 0:
        raise ValueError("negative service time")
    return service_time * mm1_expansion(rho)


def md1_response_time(service_time: float, rho: float) -> float:
    """Mean response time of an M/D/1 queue (Pollaczek-Khinchine).

    The simulator's CPU service times are deterministic pathlengths (the
    paper stresses they are *not* exponential), so in a degenerate
    single-burst regime a site is exactly an M/D/1 FCFS queue:
    ``R = S + rho * S / (2 * (1 - rho))``.  Used by the verification
    oracles (:mod:`repro.verify.oracle`) as an exact analytic prediction.
    """
    if service_time < 0:
        raise ValueError("negative service time")
    rho = clamp_utilization(rho)
    return service_time * (1.0 + rho / (2.0 * (1.0 - rho)))


def utilization_from_queue_length(queue_length: float,
                                  extra_jobs: float = 0.0) -> float:
    """Invert ``E[N] = rho/(1-rho)`` from an observed queue length.

    This is the paper's Section 3.2.1(a) estimator
    ``rho = (q + a) / (q + 1 + a)``: ``extra_jobs`` is the correction
    term ``a`` accounting for routing the incoming transaction to this
    processor.
    """
    if queue_length < 0:
        raise ValueError("negative queue length")
    n = queue_length + extra_jobs
    return clamp_utilization(n / (n + 1.0))


def utilization_from_population(n_txns: float, service_demand: float,
                                think_time: float,
                                extra_jobs: float = 0.0) -> float:
    """Section 3.2.1(b): utilisation from the number in system.

    The paper's ``rho = alpha * (n + a)`` with ``alpha`` the fraction of
    its residence a transaction spends at the CPU.  That fraction is not
    a constant: as the CPU loads up, each transaction's residence
    stretches while its CPU demand does not.  The self-consistent version
    is the utilisation law ``rho = n * S / R(rho)`` with the response
    time ``R(rho) = Z + S / (1 - rho)`` (``S`` = CPU demand per
    transaction, ``Z`` = the CPU-free part of the residence: I/O waits,
    communication).  Substituting gives the quadratic

        Z rho^2 - (Z + S + n S) rho + n S = 0,

    whose smaller root is the utilisation estimate -- it is 0 at n = 0,
    increases in n, and approaches (but never reaches) 1, unlike the raw
    ``alpha * n`` which exceeds 1 for moderate populations.
    """
    if n_txns < 0:
        raise ValueError("negative population")
    if service_demand <= 0:
        raise ValueError("service demand must be positive")
    if think_time < 0:
        raise ValueError("negative think time")
    n = n_txns + extra_jobs
    if n <= 0:
        return 0.0
    if think_time == 0:
        # Pure CPU residence: the station is busy whenever jobs exist.
        return clamp_utilization(n / (n + 1.0))
    a = think_time
    b = -(think_time + service_demand + n * service_demand)
    c = n * service_demand
    discriminant = b * b - 4.0 * a * c
    root = (-b - math.sqrt(max(discriminant, 0.0))) / (2.0 * a)
    return clamp_utilization(root)
