"""Unit tests for transaction records (repro.db.transaction)."""

import pytest

from repro.db import (
    LockMode,
    Placement,
    Reference,
    Transaction,
    TransactionClass,
    TransactionKind,
    TransactionState,
    new_transaction_ids,
)


def make_txn(txn_class=TransactionClass.A, references=None):
    if references is None:
        references = (Reference(1, LockMode.EXCLUSIVE),
                      Reference(2, LockMode.SHARE))
    return Transaction(txn_id=1, txn_class=txn_class, home_site=0,
                       references=references, arrival_time=10.0)


def test_id_source_monotonic():
    ids = new_transaction_ids()
    assert [next(ids) for _ in range(3)] == [1, 2, 3]


def test_route_class_a_local():
    txn = make_txn()
    txn.route(Placement.LOCAL)
    assert txn.is_local and not txn.runs_centrally


def test_route_class_a_shipped():
    txn = make_txn()
    txn.route(Placement.SHIPPED)
    assert txn.runs_centrally and not txn.is_local


def test_route_class_a_central_rejected():
    txn = make_txn()
    with pytest.raises(ValueError):
        txn.route(Placement.CENTRAL)


def test_route_class_b_must_be_central():
    txn = make_txn(txn_class=TransactionClass.B)
    with pytest.raises(ValueError):
        txn.route(Placement.LOCAL)
    txn.route(Placement.CENTRAL)
    assert txn.runs_centrally


def test_kind_requires_routing():
    txn = make_txn()
    with pytest.raises(ValueError):
        txn.kind()


@pytest.mark.parametrize("placement,runs,expected", [
    (Placement.LOCAL, 1, TransactionKind.LOCAL_NEW),
    (Placement.LOCAL, 2, TransactionKind.LOCAL_RERUN),
    (Placement.SHIPPED, 1, TransactionKind.SHIPPED_NEW),
    (Placement.SHIPPED, 3, TransactionKind.SHIPPED_RERUN),
])
def test_kind_mapping_class_a(placement, runs, expected):
    txn = make_txn()
    txn.route(placement)
    for _ in range(runs):
        txn.begin_run(now=11.0)
    assert txn.kind() is expected


@pytest.mark.parametrize("runs,expected", [
    (1, TransactionKind.CENTRAL_NEW),
    (2, TransactionKind.CENTRAL_RERUN),
])
def test_kind_mapping_class_b(runs, expected):
    txn = make_txn(txn_class=TransactionClass.B)
    txn.route(Placement.CENTRAL)
    for _ in range(runs):
        txn.begin_run(now=11.0)
    assert txn.kind() is expected


def test_begin_run_clears_abort_mark():
    txn = make_txn()
    txn.route(Placement.LOCAL)
    txn.begin_run(now=11.0)
    txn.mark_for_abort("invalidated")
    assert txn.marked_for_abort
    txn.begin_run(now=12.0)
    assert not txn.marked_for_abort
    assert txn.abort_reason is None


def test_first_run_timestamp_preserved_across_reruns():
    txn = make_txn()
    txn.route(Placement.LOCAL)
    txn.begin_run(now=11.0)
    txn.begin_run(now=20.0)
    assert txn.first_run_started_at == 11.0


def test_response_time():
    txn = make_txn()
    txn.complete(now=15.5)
    assert txn.response_time == pytest.approx(5.5)
    assert txn.state is TransactionState.COMMITTED


def test_response_time_before_completion_raises():
    txn = make_txn()
    with pytest.raises(ValueError):
        _ = txn.response_time


def test_record_abort_counters():
    txn = make_txn()
    txn.record_abort()
    txn.record_abort(deadlock=True)
    assert txn.aborts == 2
    assert txn.deadlock_aborts == 1
    assert txn.state is TransactionState.ABORTED


def test_update_entities_only_exclusive():
    txn = make_txn()
    assert txn.update_entities == (1,)
    assert txn.entities == (1, 2)


def test_is_rerun():
    txn = make_txn()
    txn.route(Placement.LOCAL)
    txn.begin_run(now=0)
    assert not txn.is_rerun
    txn.begin_run(now=1)
    assert txn.is_rerun


def test_reference_is_update():
    assert Reference(5, LockMode.EXCLUSIVE).is_update
    assert not Reference(5, LockMode.SHARE).is_update
