"""Property tests of the analytic model's qualitative structure.

These encode the monotone relationships the paper's discussion relies
on: response time increases with load, shipping relieves the local
sites, a faster network makes shipping cheaper, and the static optimum
interpolates the pure policies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AnalyticModel
from repro.hybrid import paper_config

MODEL = AnalyticModel(paper_config(total_rate=10.0))

stable_rates = st.floats(min_value=0.2, max_value=1.8)
ships = st.floats(min_value=0.0, max_value=1.0)


@given(ships, stable_rates)
@settings(max_examples=20, deadline=None)
def test_response_increases_with_rate(p_ship, rate):
    low = MODEL.evaluate(p_ship, rate).response_average
    high = MODEL.evaluate(p_ship, rate * 1.4).response_average
    assert high >= low - 1e-6


@given(stable_rates)
@settings(max_examples=20, deadline=None)
def test_local_response_decreases_with_shipping(rate):
    """Shipping strictly relieves retained local transactions."""
    retained_heavy = MODEL.evaluate(0.1, rate).response_local
    retained_light = MODEL.evaluate(0.8, rate).response_local
    assert retained_light <= retained_heavy + 1e-6


@given(stable_rates)
@settings(max_examples=20, deadline=None)
def test_central_utilization_increases_with_shipping(rate):
    low = MODEL.evaluate(0.1, rate).contention.rho_central
    high = MODEL.evaluate(0.8, rate).contention.rho_central
    assert high >= low


@given(ships)
@settings(max_examples=15, deadline=None)
def test_shorter_delay_cheaper_central(p_ship):
    near = AnalyticModel(paper_config(total_rate=10.0, comm_delay=0.1))
    far = AnalyticModel(paper_config(total_rate=10.0, comm_delay=0.8))
    assert near.evaluate(p_ship, 1.0).response_central <= \
        far.evaluate(p_ship, 1.0).response_central


@given(stable_rates)
@settings(max_examples=15, deadline=None)
def test_average_bounded_by_components(rate):
    estimate = MODEL.evaluate(0.4, rate)
    low = min(estimate.response_local, estimate.response_central)
    high = max(estimate.response_local, estimate.response_central)
    assert low - 1e-9 <= estimate.response_average <= high + 1e-9


def test_static_optimum_interpolates():
    """At moderate load the optimum is strictly interior and no worse
    than both endpoints."""
    from repro.core import optimize_static

    config = paper_config(total_rate=18.0)
    optimum = optimize_static(config)
    model = AnalyticModel(config)
    rate = config.workload.arrival_rate_per_site
    endpoint_best = min(model.evaluate(0.0, rate).response_average,
                        model.evaluate(1.0, rate).response_average)
    assert optimum.response_average <= endpoint_best + 1e-9
    assert 0.0 < optimum.p_ship < 1.0


@given(st.floats(min_value=0.05, max_value=0.95),
       stable_rates)
@settings(max_examples=20, deadline=None)
def test_abort_probabilities_grow_with_rate(p_ship, rate):
    low = MODEL.evaluate(p_ship, rate).contention
    high = MODEL.evaluate(p_ship, min(rate * 1.5, 2.2)).contention
    assert high.p_abort_local >= low.p_abort_local - 1e-9
    assert high.p_abort_central >= low.p_abort_central - 1e-9


def test_nak_probability_grows_with_delay():
    """Longer in-flight windows raise the NAK component of central aborts."""
    near = AnalyticModel(paper_config(total_rate=15.0, comm_delay=0.1))
    far = AnalyticModel(paper_config(total_rate=15.0, comm_delay=1.0))
    p_near = near.evaluate(0.3, 1.5).contention.p_abort_central
    p_far = far.evaluate(0.3, 1.5).contention.p_abort_central
    assert p_far > p_near
