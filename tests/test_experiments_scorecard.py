"""Tests for the reproduction scorecard (claim checking machinery)."""

import pytest

from repro.experiments.runner import Curve, CurvePoint
from repro.experiments.scorecard import (
    Claim,
    ClaimResult,
    Scorecard,
    _claims,
)


def make_result(passed, essential=True, fig="4.1", text="t"):
    claim = Claim(figure_id=fig, text=text, essential=essential,
                  check=lambda figs: passed)
    return ClaimResult(claim=claim, passed=passed)


def test_claim_inventory_covers_every_figure():
    figures = {claim.figure_id for claim in _claims()}
    assert figures == {"4.1", "4.2", "4.3", "4.4", "4.5", "4.6", "4.7"}


def test_claim_inventory_has_essential_and_detail_tiers():
    claims = _claims()
    assert any(claim.essential for claim in claims)
    assert any(not claim.essential for claim in claims)
    assert len(claims) >= 15


def test_all_essential_pass_logic():
    card = Scorecard(results=(
        make_result(True, essential=True),
        make_result(False, essential=False),
    ))
    assert card.all_essential_pass
    assert card.passed_count == 1

    failing = Scorecard(results=(make_result(False, essential=True),))
    assert not failing.all_essential_pass


def test_to_text_formats():
    card = Scorecard(results=(
        make_result(True, text="claim one"),
        make_result(False, essential=False, text="claim two"),
    ))
    text = card.to_text()
    assert "claim one" in text
    assert "PASS" in text and "MISS" in text
    assert "1/2 claims" in text


def test_checks_are_resilient_to_missing_curves():
    """A check raising KeyError is reported as MISS, not a crash."""
    from repro.experiments.scorecard import run_scorecard

    claim = Claim("4.1", "x", True,
                  check=lambda figs: figs["4.1"].curve("no-such")
                  and True)
    # Direct exercise of the guard logic used in run_scorecard:
    figures = {}
    try:
        passed = bool(claim.check(figures))
    except (KeyError, IndexError):
        passed = False
    assert passed is False


@pytest.mark.slow
def test_claims_reference_real_curve_labels():
    """Every claim must evaluate cleanly against real figure output."""
    from repro.experiments import RunSettings
    from repro.experiments.scorecard import run_scorecard

    card = run_scorecard(RunSettings(warmup_time=2.0, measure_time=6.0))
    # At this microscopic horizon outcomes are noisy, but no claim may
    # MISS due to a KeyError on curve labels; verify by checking that
    # the obviously-deterministic structural claims still evaluate.
    assert len(card.results) == len(_claims())
