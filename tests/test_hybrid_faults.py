"""Integration tests for fault injection against the hybrid system."""

import dataclasses

import pytest

from repro.core import STRATEGIES
from repro.hybrid import HybridSystem, paper_config
from repro.hybrid.checker import attach_checker
from repro.sim.faults import (
    CENTRAL_OUTAGE,
    CPU_SLOWDOWN,
    FaultEpisode,
    FaultPlan,
    RetryPolicy,
    site_crash_plan,
)

#: A tight retry budget so recovery fits in short test horizons.
FAST_RETRY = RetryPolicy(message_timeout=0.5, backoff=2.0,
                         max_message_timeout=2.0, shipment_timeout=1.0,
                         shipment_attempts=2, snapshot_max_age=5.0)


def build(strategy="static-optimal", total_rate=20.0, seed=11,
          warmup=5.0, measure=40.0, fault_plan=None):
    config = paper_config(total_rate=total_rate, warmup_time=warmup,
                          measure_time=measure, seed=seed)
    return HybridSystem(config, STRATEGIES[strategy](config),
                        fault_plan=fault_plan)


def outage_plan(start=10.0, duration=4.0, retry=FAST_RETRY):
    return FaultPlan(episodes=(FaultEpisode(
        kind=CENTRAL_OUTAGE, start=start, duration=duration),),
        retry=retry)


def _normalize(result):
    return dataclasses.replace(result, engine_events_per_sec=0.0,
                               wall_clock_seconds=0.0)


# -- bit-identity and determinism -------------------------------------------


def test_empty_plan_is_bit_identical_to_no_plan():
    plain = build().run()
    empty = build(fault_plan=FaultPlan.empty()).run()
    assert _normalize(plain) == _normalize(empty)
    # Including the engine profile: not one extra event was scheduled.
    assert plain.engine_events == empty.engine_events


def test_same_seed_same_plan_is_deterministic():
    plan = outage_plan()
    first = build(fault_plan=plan).run()
    second = build(fault_plan=plan).run()
    assert _normalize(first) == _normalize(second)
    assert first.engine_events == second.engine_events
    assert first.messages_dropped == second.messages_dropped
    assert first.messages_retransmitted == second.messages_retransmitted


def test_different_seed_differs_under_faults():
    plan = outage_plan()
    first = build(seed=11, fault_plan=plan).run()
    second = build(seed=12, fault_plan=plan).run()
    assert first.throughput != second.throughput


# -- central outage ----------------------------------------------------------


def test_outage_degrades_then_recovers():
    plan = outage_plan()
    result = build(fault_plan=plan).run()
    assert result.fault_events == 2  # apply + revert
    assert result.messages_dropped > 0
    assert result.messages_retransmitted > 0
    (report,) = result.fault_episodes
    assert report.kind == CENTRAL_OUTAGE
    assert report.degraded_throughput < report.baseline_throughput
    assert report.time_to_recover is not None


def test_no_shipped_transaction_hangs_after_recovery():
    """Every shipment from the outage window must be settled (committed,
    failed over, or failed) once recovery plus the retry budget passed;
    only shipments from just before the horizon may still be pending."""
    plan = outage_plan(start=10.0, duration=4.0)
    system = build(fault_plan=plan)
    result = system.run()
    horizon = system.config.run_until
    # Worst-case settle time: full shipment budget plus cancel round trip.
    budget = (FAST_RETRY.shipment_timeout *
              (1 + FAST_RETRY.backoff) + 4 * FAST_RETRY.max_message_timeout)
    for site in system.sites:
        for txn in site._pending_ship.values():
            assert txn.arrival_time > horizon - budget, (
                f"txn {txn.txn_id} from t={txn.arrival_time:.1f} "
                f"still unsettled at t={horizon:.1f}")
    # The outage produced real protocol work.
    assert result.txns_timed_out > 0
    assert result.txns_timed_out >= (result.txns_failed_over +
                                     result.txns_failed)


def test_class_a_fails_over_and_class_b_fails():
    result = build(fault_plan=outage_plan(), measure=60.0).run()
    assert result.txns_failed_over > 0   # class A re-ran locally
    assert result.txns_failed > 0        # class B has nowhere to go
    assert result.availability < 1.0
    assert result.availability > 0.9


def test_failure_aware_routing_kicks_in():
    result = build(fault_plan=outage_plan(), measure=60.0).run()
    # While central is suspected, class A arrivals route locally without
    # consulting the router.
    assert result.fallback_routings > 0


def test_checker_stays_clean_through_outage():
    plan = outage_plan()
    system = build(fault_plan=plan)
    checker = attach_checker(system)
    system.run()  # raises InvariantViolation on any protocol breach
    assert checker.stats.completions_checked > 100
    assert checker.stats.updates_checked > 0


# -- other fault kinds -------------------------------------------------------


def test_site_crash_rejects_arrivals():
    plan = site_crash_plan(warmup_time=5.0, measure_time=40.0, site=0,
                           retry=FAST_RETRY)
    result = build(fault_plan=plan).run()
    assert result.arrivals_rejected > 0
    assert result.fault_events == 2


def test_central_cpu_slowdown_reduces_throughput():
    slow = FaultPlan(episodes=(FaultEpisode(
        kind=CPU_SLOWDOWN, start=6.0, duration=38.0, slowdown=8.0),),
        retry=FAST_RETRY)
    baseline = build(strategy="static-optimal").run()
    slowed = build(strategy="static-optimal", fault_plan=slow).run()
    assert slowed.throughput < baseline.throughput


def test_service_scale_identity_is_exact():
    """service_scale 1.0 must not perturb service times at all."""
    from repro.hybrid.base import SiteBase
    from repro.sim.engine import Environment

    config = paper_config(total_rate=10.0)
    site = SiteBase(Environment(), config, mips=1.0, name="s")
    healthy = site.service_time(30_000)
    site.service_scale = 1.0
    assert site.service_time(30_000) == healthy
    site.service_scale = 2.0
    assert site.service_time(30_000) == 2 * healthy


# -- experiments-layer integration ------------------------------------------


def test_fault_plan_changes_cache_key_but_empty_does_not():
    from repro.experiments.cache import ResultCache

    config = paper_config(total_rate=20.0, warmup_time=5.0,
                          measure_time=20.0, seed=3)
    plain = ResultCache.key_for(config, "name:static-optimal")
    empty = ResultCache.key_for(config, "name:static-optimal",
                                fault_plan=FaultPlan.empty())
    none_plan = ResultCache.key_for(config, "name:static-optimal",
                                    fault_plan=None)
    faulted = ResultCache.key_for(config, "name:static-optimal",
                                  fault_plan=outage_plan())
    assert plain == empty == none_plan
    assert faulted != plain
    # Retry policy alone (no episodes -> no behaviour change) is inert;
    # with episodes, a different retry policy is a different simulation.
    other_retry = outage_plan(retry=RetryPolicy())
    assert ResultCache.key_for(config, "name:static-optimal",
                               fault_plan=other_retry) != faulted


def test_parallel_runner_caches_faulted_jobs(tmp_path):
    from repro.experiments.cache import ResultCache
    from repro.experiments.parallel import JobSpec, ParallelRunner

    config = paper_config(total_rate=15.0, warmup_time=4.0,
                          measure_time=12.0, seed=5)
    spec = JobSpec(strategy="static-optimal", config=config,
                   fault_plan=outage_plan(start=6.0, duration=2.0))
    cache = ResultCache(tmp_path)
    first_runner = ParallelRunner(cache=cache)
    (first,) = first_runner.run_jobs([spec])
    assert first_runner.jobs_executed == 1
    second_runner = ParallelRunner(cache=cache)
    (second,) = second_runner.run_jobs([spec])
    assert second_runner.jobs_cached == 1
    assert first == second


def test_run_single_accepts_fault_plan():
    from repro.experiments.runner import RunSettings, run_single

    settings = RunSettings(warmup_time=4.0, measure_time=12.0, scale=1.0)
    result = run_single("static-optimal", 15.0, settings=settings,
                        fault_plan=outage_plan(start=6.0, duration=2.0))
    assert result.fault_events == 2
    assert result.throughput > 0


def test_availability_experiment_compares_strategies():
    from repro.experiments.availability import run_availability
    from repro.experiments.runner import RunSettings

    settings = RunSettings(warmup_time=4.0, measure_time=16.0)
    comparison = run_availability(
        total_rate=15.0, strategies=("none", "static-optimal"),
        plan=outage_plan(start=8.0, duration=3.0), settings=settings)
    assert len(comparison.points) == 2
    for point in comparison.points:
        assert point.baseline.throughput > 0
        assert point.faulted.throughput > 0
        assert 0.0 <= point.faulted.availability <= 1.0
    table = comparison.to_table()
    assert "static-optimal" in table


def test_telemetry_json_carries_availability_section():
    import json

    from repro.experiments.export import telemetry_to_json

    result = build(fault_plan=outage_plan()).run()
    document = json.loads(telemetry_to_json(result))
    section = document["availability"]
    assert section["ratio"] == pytest.approx(result.availability)
    assert section["episodes"][0]["kind"] == CENTRAL_OUTAGE
