"""Unit tests for resources, stores and links (repro.sim)."""

import pytest

from repro.sim import (
    DuplexChannel,
    Environment,
    Interrupt,
    Link,
    Message,
    Resource,
    SimulationError,
    Store,
)


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_grants_immediately_when_free():
    env = Environment()
    cpu = Resource(env)
    granted = []

    def user(env):
        with cpu.request() as req:
            yield req
            granted.append(env.now)
            yield env.timeout(2)

    env.process(user(env))
    env.run()
    assert granted == [0.0]


def test_resource_serializes_two_users():
    env = Environment()
    cpu = Resource(env, capacity=1)
    spans = []

    def user(env, tag, hold):
        with cpu.request() as req:
            yield req
            start = env.now
            yield env.timeout(hold)
            spans.append((tag, start, env.now))

    env.process(user(env, "a", 5))
    env.process(user(env, "b", 3))
    env.run()
    assert spans == [("a", 0, 5), ("b", 5, 8)]


def test_resource_capacity_two_runs_in_parallel():
    env = Environment()
    cpu = Resource(env, capacity=2)
    ends = []

    def user(env, hold):
        with cpu.request() as req:
            yield req
            yield env.timeout(hold)
            ends.append(env.now)

    for _ in range(2):
        env.process(user(env, 4))
    env.run()
    assert ends == [4, 4]


def test_resource_fifo_order():
    env = Environment()
    cpu = Resource(env)
    order = []

    def user(env, tag):
        with cpu.request() as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    for tag in range(6):
        env.process(user(env, tag))
    env.run()
    assert order == [0, 1, 2, 3, 4, 5]


def test_priority_beats_fifo():
    env = Environment()
    cpu = Resource(env)
    order = []

    def holder(env):
        with cpu.request() as req:
            yield req
            yield env.timeout(10)

    def user(env, tag, prio, delay):
        yield env.timeout(delay)
        with cpu.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(user(env, "low", 5, 1))
    env.process(user(env, "high", -5, 2))
    env.run()
    assert order == ["high", "low"]


def test_queue_length_counts_waiting_and_running():
    env = Environment()
    cpu = Resource(env)
    samples = []

    def user(env):
        with cpu.request() as req:
            yield req
            yield env.timeout(5)

    def sampler(env):
        yield env.timeout(1)
        samples.append(cpu.queue_length)

    for _ in range(3):
        env.process(user(env))
    env.process(sampler(env))
    env.run()
    assert samples == [3]  # 1 running + 2 waiting


def test_cancel_queued_request_removes_from_queue():
    env = Environment()
    cpu = Resource(env)
    order = []

    def holder(env):
        with cpu.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        yield env.timeout(1)
        req = cpu.request()
        yield env.timeout(2)  # still queued
        req.cancel()
        order.append("cancelled")

    def patient(env):
        yield env.timeout(2)
        with cpu.request() as req:
            yield req
            order.append(("patient", env.now))

    env.process(holder(env))
    env.process(impatient(env))
    env.process(patient(env))
    env.run()
    assert ("patient", 10) in order


def test_interrupted_waiter_releases_queue_slot():
    env = Environment()
    cpu = Resource(env)
    log = []

    def holder(env):
        with cpu.request() as req:
            yield req
            yield env.timeout(100)

    def victim(env):
        with cpu.request() as req:
            try:
                yield req
            except Interrupt:
                log.append("interrupted")
        # context manager cancels the queued request

    def attacker(env, target):
        yield env.timeout(5)
        target.interrupt()

    env.process(holder(env))
    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run(until=50)
    assert log == ["interrupted"]
    assert len(cpu.queue) == 0


def test_utilization_measurement():
    env = Environment()
    cpu = Resource(env)

    def user(env):
        with cpu.request() as req:
            yield req
            yield env.timeout(4)

    env.process(user(env))
    env.run(until=10)
    assert cpu.utilization() == pytest.approx(0.4)


def test_utilization_reset():
    env = Environment()
    cpu = Resource(env)

    def user(env, start, hold):
        yield env.timeout(start)
        with cpu.request() as req:
            yield req
            yield env.timeout(hold)

    env.process(user(env, 0, 4))
    env.process(user(env, 10, 5))
    env.run(until=10)
    cpu.reset_utilization()
    env.run(until=20)
    assert cpu.utilization(since=10) == pytest.approx(0.5)


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_release_is_idempotent():
    env = Environment()
    cpu = Resource(env)

    def user(env):
        req = cpu.request()
        yield req
        cpu.release(req)
        cpu.release(req)  # no error

    env.process(user(env))
    env.run()
    assert cpu.count == 0


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append(item)

    store.put("x")
    env.process(consumer(env))
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env):
        yield env.timeout(6)
        store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(6, "late")]


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    for item in (1, 2, 3):
        store.put(item)
    env.process(consumer(env))
    env.run()
    assert got == [1, 2, 3]


def test_store_multiple_waiters_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(consumer(env, "first"))
    env.process(consumer(env, "second"))

    def producer(env):
        yield env.timeout(1)
        store.put("a")
        store.put("b")

    env.process(producer(env))
    env.run()
    assert got == [("first", "a"), ("second", "b")]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# ---------------------------------------------------------------------------
# Link / DuplexChannel
# ---------------------------------------------------------------------------

def test_link_delivers_after_delay():
    env = Environment()
    link = Link(env, delay=0.2)
    got = []

    def consumer(env):
        msg = yield link.mailbox.get()
        got.append((env.now, msg.kind))

    env.process(consumer(env))
    link.send(Message(kind="hello"))
    env.run()
    assert got == [(0.2, "hello")]


def test_link_fifo_per_link():
    env = Environment()
    link = Link(env, delay=0.5)
    got = []

    def consumer(env):
        for _ in range(3):
            msg = yield link.mailbox.get()
            got.append(msg.payload)

    env.process(consumer(env))

    def producer(env):
        for i in range(3):
            link.send(Message(kind="m", payload=i))
            yield env.timeout(0.1)

    env.process(producer(env))
    env.run()
    assert got == [0, 1, 2]


def test_link_callback_delivery():
    env = Environment()
    link = Link(env, delay=1.0)
    got = []
    link.send(Message(kind="cb", payload=9),
              on_delivery=lambda m: got.append((env.now, m.payload)))
    env.run()
    assert got == [(1.0, 9)]


def test_link_in_flight_accounting():
    env = Environment()
    link = Link(env, delay=2.0)
    link.send(Message(kind="a"))
    link.send(Message(kind="b"))
    assert link.in_flight == 2
    env.run()
    assert link.in_flight == 0


def test_link_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Link(env, delay=-0.1)


def test_link_stamps_sent_time():
    env = Environment()
    link = Link(env, delay=1.0)
    msg = Message(kind="t")

    def producer(env):
        yield env.timeout(3)
        link.send(msg)

    env.process(producer(env))
    env.run()
    assert msg.sent_at == 3


def test_duplex_channel_round_trip():
    env = Environment()
    chan = DuplexChannel(env, delay=0.2)
    assert chan.round_trip() == pytest.approx(0.4)
    assert chan.delay == pytest.approx(0.2)
