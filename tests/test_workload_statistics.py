"""Statistical validation of the workload generator's distributions.

The paper's results depend on the workload shape (uniform references,
Poisson arrivals); these tests verify the generator's outputs match the
specification statistically, not just structurally.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.db import TransactionFactory, WorkloadParams
from repro.sim import Environment, RandomStreams


def test_class_a_references_uniform_over_partition():
    """Chi-square goodness of fit over 16 bins of the home partition."""
    params = WorkloadParams(p_local=1.0)
    factory = TransactionFactory(params, RandomStreams(seed=100))
    low, high = factory.partition.site_range(4)
    draws = []
    for _ in range(1500):
        txn = factory.make_transaction(site=4, now=0.0)
        draws.extend(ref.entity for ref in txn.references)
    counts, _ = np.histogram(draws, bins=16, range=(low, high))
    _, p_value = scipy_stats.chisquare(counts)
    assert p_value > 0.001  # uniformity not rejected


def test_class_b_references_uniform_over_space():
    params = WorkloadParams(p_local=0.0)
    factory = TransactionFactory(params, RandomStreams(seed=101))
    draws = []
    for _ in range(1500):
        txn = factory.make_transaction(site=0, now=0.0)
        draws.extend(ref.entity for ref in txn.references)
    counts, _ = np.histogram(draws, bins=16,
                             range=(0, params.lockspace))
    _, p_value = scipy_stats.chisquare(counts)
    assert p_value > 0.001


def test_interarrival_times_pass_exponential_ks():
    """Kolmogorov-Smirnov against the exponential distribution."""
    from repro.db import ArrivalProcess

    env = Environment()
    params = WorkloadParams(arrival_rate_per_site=4.0)
    streams = RandomStreams(seed=102)
    factory = TransactionFactory(params, streams)
    times = []
    ArrivalProcess(env, site=0, factory=factory, streams=streams,
                   submit=lambda t: times.append(t.arrival_time))
    env.run(until=1500)
    gaps = np.diff(times)
    _, p_value = scipy_stats.kstest(gaps, "expon",
                                    args=(0, 1.0 / 4.0))
    assert p_value > 0.001


def test_arrival_counts_poisson_dispersion():
    """Counts per unit interval: variance ~= mean (Poisson index of
    dispersion close to 1)."""
    from repro.db import ArrivalProcess

    env = Environment()
    params = WorkloadParams(arrival_rate_per_site=3.0)
    streams = RandomStreams(seed=103)
    factory = TransactionFactory(params, streams)
    times = []
    ArrivalProcess(env, site=0, factory=factory, streams=streams,
                   submit=lambda t: times.append(t.arrival_time))
    env.run(until=2000)
    counts, _ = np.histogram(times, bins=2000, range=(0, 2000))
    dispersion = np.var(counts) / np.mean(counts)
    assert dispersion == pytest.approx(1.0, abs=0.15)


def test_class_mix_binomial_confidence():
    """The A/B split is Bernoulli(p_local): check via a z-test bound."""
    params = WorkloadParams(p_local=0.75)
    factory = TransactionFactory(params, RandomStreams(seed=104))
    n = 6000
    a_count = sum(
        1 for _ in range(n)
        if factory.make_transaction(0, 0.0).txn_class.value == "A")
    p_hat = a_count / n
    standard_error = (0.75 * 0.25 / n) ** 0.5
    assert abs(p_hat - 0.75) < 4 * standard_error


def test_reference_positions_independent_of_class_draws():
    """Entity draws must not correlate with the class sequence (separate
    streams): compare reference means conditional on class."""
    params = WorkloadParams(p_local=0.5)
    factory = TransactionFactory(params, RandomStreams(seed=105))
    home_means = {"A": [], "B": []}
    low, high = factory.partition.site_range(0)
    for _ in range(800):
        txn = factory.make_transaction(site=0, now=0.0)
        in_home = [ref.entity for ref in txn.references
                   if low <= ref.entity < high]
        if in_home:
            home_means[txn.txn_class.value].append(float(np.mean(in_home)))
    # Class A home references and class B home references share the same
    # uniform distribution over the partition.
    _, p_value = scipy_stats.mannwhitneyu(home_means["A"],
                                          home_means["B"])
    assert p_value > 0.001
