"""Unit tests for lifecycle span recording (repro.sim.spans)."""

import pytest

from repro.sim.spans import (
    PHASE_AUTH,
    PHASE_COMM,
    PHASE_CPU_SERVICE,
    PHASE_CPU_WAIT,
    PHASE_IO,
    PHASE_LOCK_WAIT,
    PHASE_OTHER,
    PHASES,
    SpanRecorder,
)


def test_phase_vocabulary_is_complete_and_ordered():
    assert PHASES == (PHASE_COMM, PHASE_CPU_WAIT, PHASE_CPU_SERVICE,
                      PHASE_IO, PHASE_LOCK_WAIT, PHASE_AUTH, PHASE_OTHER)


def test_fresh_recorder_is_empty():
    spans = SpanRecorder()
    assert spans.current_phase is None
    assert spans.started_at is None
    assert spans.closed_at is None
    assert spans.total == 0.0
    assert spans.as_dict() == {phase: 0.0 for phase in PHASES}


def test_enter_accumulates_previous_phase():
    spans = SpanRecorder()
    spans.enter(PHASE_COMM, 1.0)
    spans.enter(PHASE_CPU_WAIT, 3.0)
    spans.enter(PHASE_CPU_SERVICE, 3.5)
    spans.close(4.0)
    assert spans.get(PHASE_COMM) == pytest.approx(2.0)
    assert spans.get(PHASE_CPU_WAIT) == pytest.approx(0.5)
    assert spans.get(PHASE_CPU_SERVICE) == pytest.approx(0.5)
    assert spans.current_phase is None
    assert spans.closed_at == 4.0


def test_exit_falls_back_to_other():
    spans = SpanRecorder()
    spans.enter(PHASE_IO, 0.0)
    spans.exit(2.0)
    assert spans.current_phase == PHASE_OTHER
    spans.close(5.0)
    assert spans.get(PHASE_IO) == pytest.approx(2.0)
    assert spans.get(PHASE_OTHER) == pytest.approx(3.0)


def test_reentering_phase_accumulates():
    spans = SpanRecorder()
    spans.enter(PHASE_LOCK_WAIT, 0.0)
    spans.enter(PHASE_CPU_SERVICE, 1.0)
    spans.enter(PHASE_LOCK_WAIT, 2.0)
    spans.close(4.5)
    assert spans.get(PHASE_LOCK_WAIT) == pytest.approx(3.5)


def test_totals_sum_to_lifetime_exactly():
    # The invariant the response-time decomposition relies on: every
    # instant between anchor and close lands in exactly one bucket.
    spans = SpanRecorder()
    times = [0.0, 0.7, 1.13, 2.9, 3.3, 7.25]
    phases = [PHASE_COMM, PHASE_CPU_WAIT, PHASE_CPU_SERVICE,
              PHASE_AUTH, PHASE_OTHER]
    for phase, at in zip(phases, times):
        spans.enter(phase, at)
    spans.close(times[-1])
    lifetime = spans.closed_at - spans.started_at
    assert spans.total == pytest.approx(lifetime, rel=1e-12)


def test_zero_duration_phases_leave_no_bucket():
    spans = SpanRecorder()
    spans.enter(PHASE_COMM, 1.0)
    spans.enter(PHASE_AUTH, 1.0)
    spans.enter(PHASE_IO, 1.0)
    spans.close(2.0)
    assert spans.totals == {PHASE_IO: 1.0}


def test_close_without_enter_is_harmless():
    spans = SpanRecorder()
    spans.close(3.0)
    assert spans.total == 0.0
    assert spans.started_at == 3.0
    assert spans.closed_at == 3.0


def test_transitions_counter():
    spans = SpanRecorder()
    spans.enter(PHASE_COMM, 0.0)
    spans.exit(1.0)
    spans.enter(PHASE_IO, 2.0)
    assert spans.transitions == 3


def _make_txn(txn_id: int):
    from repro.db.transaction import Transaction, TransactionClass

    return Transaction(txn_id=txn_id, txn_class=TransactionClass.A,
                       home_site=0, references=(), arrival_time=0.0)


def test_transaction_carries_private_recorder():
    first = _make_txn(1)
    second = _make_txn(2)
    assert first.spans is not second.spans
    first.spans.enter(PHASE_COMM, 0.0)
    assert second.spans.current_phase is None


def test_transaction_complete_closes_spans():
    txn = _make_txn(1)
    txn.spans.enter(PHASE_CPU_SERVICE, 0.0)
    txn.complete(2.5)
    assert txn.spans.closed_at == 2.5
    assert txn.spans.get(PHASE_CPU_SERVICE) == pytest.approx(2.5)
