"""Tests for adaptive replication control (precision-targeted runs).

The contracts under test:

* **adaptive == fixed determinism** -- an adaptive run whose precision
  target is unreachable (``rel_precision=0.0``) runs every point to the
  cap and must reproduce the fixed ``replications=cap`` grid
  field-for-field, serially and over a process pool, and must produce
  identical cache entries;
* **cache fast-forward** -- replications already simulated by an
  earlier fixed-grid run are reused (counted as cache hits), never
  re-simulated;
* **early stopping** -- a loose target stops at ``min_replications``,
  an unreachable one runs to ``max_replications``, and every converged
  point's relative half-width is within the target.
"""

import pytest

from repro.experiments import (
    PrecisionSettings,
    ResultCache,
    RunSettings,
    run_adaptive_curve_set,
    run_curve,
    run_curve_set,
    run_point,
)
from repro.experiments.figures import figure_4_1
from repro.experiments.sensitivity import sweep_parameter

#: Short horizon: these tests assert scheduling behaviour and equality,
#: not statistical quality.
FAST = dict(warmup_time=3.0, measure_time=8.0)

#: Cap-equals-fixed pairing used by the determinism tests.
FIXED3 = RunSettings(replications=3, **FAST)
CAPPED3 = PrecisionSettings(rel_precision=0.0, min_replications=2,
                            max_replications=3, **FAST)


# ---------------------------------------------------------------------------
# PrecisionSettings validation
# ---------------------------------------------------------------------------

def test_precision_settings_defaults_valid():
    settings = PrecisionSettings()
    assert settings.rel_precision == 0.05
    assert settings.confidence == 0.95
    assert settings.min_replications == 2
    # Raised from 16 in PR 9: at the old cap of 4 in the adaptive
    # benchmark, 4/49 knee points ran out of budget unconverged; the
    # default cap now leaves precision headroom past the knee.
    assert settings.max_replications == 24


def test_precision_settings_rejects_negative_precision():
    with pytest.raises(ValueError, match="rel_precision"):
        PrecisionSettings(rel_precision=-0.1)


def test_precision_settings_rejects_bad_confidence():
    with pytest.raises(ValueError, match="confidence"):
        PrecisionSettings(confidence=1.0)
    with pytest.raises(ValueError, match="confidence"):
        PrecisionSettings(confidence=0.0)


def test_precision_settings_rejects_min_below_two():
    with pytest.raises(ValueError, match="min_replications"):
        PrecisionSettings(min_replications=1)


def test_precision_settings_rejects_cap_below_min():
    with pytest.raises(ValueError, match="max_replications"):
        PrecisionSettings(min_replications=4, max_replications=3)


def test_precision_settings_rejects_bad_round_size():
    with pytest.raises(ValueError, match="round_size"):
        PrecisionSettings(round_size=0)


def test_fixed_equivalent_mirrors_cap():
    settings = PrecisionSettings(max_replications=5, scale=0.5,
                                 base_seed=99, **FAST)
    fixed = settings.fixed_equivalent()
    assert isinstance(fixed, RunSettings)
    assert not isinstance(fixed, PrecisionSettings)
    assert fixed.replications == 5
    assert fixed.base_seed == 99
    assert fixed.scale == 0.5


def test_scaled_preserves_precision_settings():
    scaled = PrecisionSettings(rel_precision=0.1).scaled(0.5)
    assert isinstance(scaled, PrecisionSettings)
    assert scaled.rel_precision == 0.1
    assert scaled.scale == 0.5


# ---------------------------------------------------------------------------
# Determinism: adaptive (cap == N, unreachable target) == fixed (N)
# ---------------------------------------------------------------------------

def test_adaptive_capped_equals_fixed_serial():
    fixed = run_curve("queue-length", [5.0, 12.0], settings=FIXED3,
                      workers=1)
    adaptive = run_curve("queue-length", [5.0, 12.0], settings=CAPPED3,
                         workers=1)
    for point_f, point_a in zip(fixed.points, adaptive.points):
        assert point_f == point_a  # field-for-field, replications included
    assert fixed == adaptive


def test_adaptive_capped_equals_fixed_with_workers():
    fixed = run_curve("queue-length", [5.0, 12.0], settings=FIXED3,
                      workers=2)
    adaptive = run_curve("queue-length", [5.0, 12.0], settings=CAPPED3,
                         workers=2)
    assert fixed == adaptive


def test_adaptive_curve_set_capped_equals_fixed():
    entries = [("none", "baseline", [6.0]), ("queue-length", "B", [6.0])]
    fixed = run_curve_set(entries, settings=FIXED3)
    adaptive = run_curve_set(entries, settings=CAPPED3)
    assert fixed == adaptive


def test_adaptive_run_is_bit_reproducible():
    settings = PrecisionSettings(rel_precision=0.3, min_replications=2,
                                 max_replications=5, **FAST)
    first = run_curve("queue-length", [5.0, 12.0], settings=settings)
    second = run_curve("queue-length", [5.0, 12.0], settings=settings)
    assert first == second


def test_adaptive_replication_seeds_follow_base_seed():
    point = run_point("min-average-population", 10.0, settings=CAPPED3)
    seeds = [r.seed for r in point.replications]
    assert seeds == [CAPPED3.base_seed + r for r in range(3)]


@pytest.mark.slow
def test_adaptive_figure_capped_equals_fixed():
    tiny_fixed = RunSettings(warmup_time=2.0, measure_time=5.0,
                             replications=2)
    tiny_adaptive = PrecisionSettings(warmup_time=2.0, measure_time=5.0,
                                      rel_precision=0.0,
                                      min_replications=2,
                                      max_replications=2)
    fixed = figure_4_1(tiny_fixed)
    adaptive = figure_4_1(tiny_adaptive)
    assert fixed.curves == adaptive.curves


# ---------------------------------------------------------------------------
# Cache interaction: fast-forward and identical entries
# ---------------------------------------------------------------------------

def test_adaptive_reuses_fixed_grid_cache_entries(tmp_path):
    cache = ResultCache(tmp_path)
    fixed = run_curve("queue-length", [5.0, 12.0], settings=FIXED3,
                      cache=cache)
    assert cache.misses == 6 and cache.hits == 0
    adaptive = run_curve("queue-length", [5.0, 12.0], settings=CAPPED3,
                         cache=cache)
    # Every adaptive replication was fast-forwarded from the fixed run.
    assert cache.hits == 6
    assert cache.misses == 6  # unchanged: nothing re-simulated
    assert len(cache) == 6    # and no new entries written
    assert fixed == adaptive


def test_adaptive_writes_same_cache_keys_as_fixed(tmp_path):
    fixed_cache = ResultCache(tmp_path / "fixed")
    adaptive_cache = ResultCache(tmp_path / "adaptive")
    run_curve("queue-length", [5.0, 12.0], settings=FIXED3,
              cache=fixed_cache)
    run_curve("queue-length", [5.0, 12.0], settings=CAPPED3,
              cache=adaptive_cache)
    fixed_keys = sorted(p.name for p in fixed_cache.root.glob("*.pkl"))
    adaptive_keys = sorted(p.name
                           for p in adaptive_cache.root.glob("*.pkl"))
    assert fixed_keys == adaptive_keys
    for name in fixed_keys:  # byte-identical payloads, entry by entry
        assert ((fixed_cache.root / name).read_bytes() ==
                (adaptive_cache.root / name).read_bytes())


def test_adaptive_report_counts_cache_fast_forward(tmp_path):
    cache = ResultCache(tmp_path)
    entries = [("queue-length", "B", [5.0, 12.0])]
    first = run_adaptive_curve_set(entries, settings=CAPPED3, cache=cache)
    assert first.report.replications_cached == 0
    assert first.report.replications_executed == 6
    second = run_adaptive_curve_set(entries, settings=CAPPED3, cache=cache)
    assert second.report.replications_cached == 6
    assert second.report.replications_executed == 0
    assert second.curves == first.curves


# ---------------------------------------------------------------------------
# Stopping rule
# ---------------------------------------------------------------------------

def test_loose_target_stops_at_min_replications():
    settings = PrecisionSettings(rel_precision=10.0, min_replications=2,
                                 max_replications=8, **FAST)
    point = run_point("none", 8.0, settings=settings)
    assert point.n_replications == 2
    assert point.rt_relative_half_width <= 10.0


def test_unreachable_target_runs_to_cap():
    point = run_point("none", 8.0, settings=CAPPED3)
    assert point.n_replications == 3


def test_converged_points_meet_target_others_hit_cap():
    settings = PrecisionSettings(rel_precision=0.25, min_replications=2,
                                 max_replications=6, **FAST)
    outcome = run_adaptive_curve_set(
        [("queue-length", "B", [5.0, 12.0]),
         ("none", "baseline", [8.0])], settings=settings)
    assert outcome.report.n_points == 3
    assert outcome.report.replications_total == sum(
        p.n_replications for p in outcome.report.points)
    for point in outcome.report.points:
        if point.converged:
            assert point.relative_half_width <= settings.rel_precision
        else:
            assert point.n_replications == settings.max_replications
        assert settings.min_replications <= point.n_replications \
            <= settings.max_replications


def test_adaptive_saves_replications_versus_fixed_grid():
    settings = PrecisionSettings(rel_precision=1.0, min_replications=2,
                                 max_replications=6, **FAST)
    outcome = run_adaptive_curve_set(
        [("queue-length", "B", [5.0, 12.0])], settings=settings)
    assert outcome.report.fixed_grid_replications == 12
    assert outcome.report.replications_total < 12
    assert outcome.report.replications_saved > 0
    assert "adaptive:" in outcome.report.summary()


# ---------------------------------------------------------------------------
# Achieved-precision fields on CurvePoint
# ---------------------------------------------------------------------------

def test_curve_point_precision_fields_populated():
    point = run_point("none", 8.0, settings=CAPPED3)
    assert point.rt_interval is not None
    assert point.rt_interval.n == 3
    assert point.rt_half_width >= 0.0
    assert point.rt_relative_half_width >= 0.0
    # The memoised interval is returned as-is at matching confidence.
    assert point.response_time_interval(0.95) is point.rt_interval
    # Other confidence levels are computed on demand.
    wider = point.response_time_interval(0.99)
    assert wider.confidence == 0.99
    assert wider.half_width >= point.rt_half_width


def test_fixed_grid_points_also_carry_precision_fields():
    point = run_point("none", 8.0,
                      settings=RunSettings(replications=2, **FAST))
    assert point.n_replications == 2
    assert point.rt_interval is not None
    assert point.response_time_interval() is point.rt_interval


# ---------------------------------------------------------------------------
# Sensitivity sweep in adaptive mode
# ---------------------------------------------------------------------------

def test_sensitivity_sweep_adaptive_mode():
    settings = PrecisionSettings(rel_precision=0.5, min_replications=2,
                                 max_replications=4)
    sweep = sweep_parameter("comm_delay", [0.2], total_rate=8.0,
                            warmup_time=2.0, measure_time=6.0,
                            settings=settings)
    point = sweep.points[0]
    for name in ("none", "static-optimal", "min-average-population"):
        assert 2 <= point.replication_counts[name] <= 4
        assert point.rt_half_widths[name] >= 0.0
        assert point.response_times[name] > 0.0


def test_sensitivity_sweep_default_unchanged():
    sweep = sweep_parameter("comm_delay", [0.2], total_rate=8.0,
                            warmup_time=2.0, measure_time=6.0)
    point = sweep.points[0]
    assert point.replication_counts == {}
    assert point.rt_half_widths == {}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_cli_adaptive_figure(capsys):
    from repro.experiments.cli import main

    assert main(["--figure", "4.1", "--scale", "0.05",
                 "--precision", "0.5", "--max-replications", "3"]) == 0
    out = capsys.readouterr().out
    assert "[adaptive:" in out
    assert "replications per point:" in out


def test_cli_rejects_non_positive_precision(capsys):
    from repro.experiments.cli import main

    assert main(["--figure", "4.1", "--precision", "0"]) == 2
    assert main(["--figure", "4.1", "--precision", "-0.1"]) == 2


def test_cli_rejects_tiny_cap(capsys):
    from repro.experiments.cli import main

    assert main(["--figure", "4.1", "--precision", "0.1",
                 "--max-replications", "1"]) == 2


def test_cli_rejects_initial_batch_above_cap(capsys):
    from repro.experiments.cli import main

    assert main(["--figure", "4.1", "--precision", "0.1",
                 "--replications", "5", "--max-replications", "3"]) == 2
