"""Tests for the differential run pairs (repro.verify.differential)."""

import math

import pytest

from repro.experiments.runner import RunSettings, run_single
from repro.verify.base import VerifySettings
from repro.verify.differential import DIFFERENTIAL_PAIRS, run_differential

TINY = VerifySettings(scale=0.3)


@pytest.mark.parametrize("name", sorted(DIFFERENTIAL_PAIRS))
def test_differential_pairs_pass(name):
    result = DIFFERENTIAL_PAIRS[name].run(TINY)
    assert result.passed, result.details
    assert result.kind == "differential"


def test_run_differential_subset():
    results = run_differential(TINY, names=["distributed-model-overlap"])
    assert len(results) == 1
    assert results[0].passed, results[0].details


def test_identity_dict_excludes_wall_clock():
    settings = RunSettings(warmup_time=2.0, measure_time=10.0)
    result = run_single("none", 10.0, settings=settings)
    full = result.identity_dict()
    assert "wall_clock_seconds" not in full
    assert "engine_events_per_sec" not in full
    assert "engine_events" in full
    bare = result.identity_dict(include_profile=False,
                                include_strategy=False)
    assert "engine_events" not in bare
    assert "engine_heap_peak" not in bare
    assert "strategy" not in bare
    assert math.isclose(bare["mean_response_time"],
                        result.mean_response_time)
