"""Unit tests for the analytical model (repro.core.model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import AnalyticModel, ContentionState
from repro.hybrid import paper_config


@pytest.fixture(scope="module")
def model():
    return AnalyticModel(paper_config(total_rate=10.0))


def zero_contention(t_local=0.5, t_central=0.5):
    return ContentionState(
        rho_local=0.0, rho_central=0.0,
        p_wait_local=0.0, p_wait_central=0.0, p_wait_auth=0.0,
        p_abort_local=0.0, p_abort_local_rerun=0.0,
        p_abort_central=0.0, p_abort_central_rerun=0.0,
        t_local=t_local, t_central=t_central)


# ---------------------------------------------------------------------------
# Structural formulas
# ---------------------------------------------------------------------------

def test_zero_load_local_response(model):
    """At zero load the local RT is pure CPU + I/O."""
    config = model.config
    response = model.response_local(zero_contention())
    expected = (config.io_initial +
                config.cpu_seconds_local(config.instr_txn_overhead) +
                config.cpu_seconds_local(10 * config.instr_per_db_call +
                                         config.instr_commit) +
                10 * config.io_per_db_call)
    assert response == pytest.approx(expected)


def test_zero_load_central_response_includes_delays(model):
    """Shipped RT always pays two one-way delays plus the auth round trip."""
    response = model.response_central(zero_contention())
    # 2 x 0.2 (in/out) + 2 x 0.2 (authentication) = 0.8s floor.
    assert response > 0.8


def test_local_response_grows_with_utilization(model):
    low = model.response_local(zero_contention())
    state = ContentionState(
        rho_local=0.8, rho_central=0.0,
        p_wait_local=0.0, p_wait_central=0.0, p_wait_auth=0.0,
        p_abort_local=0.0, p_abort_local_rerun=0.0,
        p_abort_central=0.0, p_abort_central_rerun=0.0,
        t_local=0.5, t_central=0.5)
    assert model.response_local(state) > low


def test_local_response_grows_with_abort_probability(model):
    base = zero_contention()
    aborting = ContentionState(
        rho_local=0.0, rho_central=0.0,
        p_wait_local=0.0, p_wait_central=0.0, p_wait_auth=0.0,
        p_abort_local=0.5, p_abort_local_rerun=0.1,
        p_abort_central=0.0, p_abort_central_rerun=0.0,
        t_local=0.5, t_central=0.5)
    assert model.response_local(aborting) > model.response_local(base)


def test_response_average_weights(model):
    state = zero_contention()
    r_l = model.response_local(state)
    r_c = model.response_central(state)
    # p_ship = 0: weights are p_local for local, 1 - p_local for central.
    avg = model.response_average(state, p_ship=0.0)
    assert avg == pytest.approx(0.75 * r_l + 0.25 * r_c)
    # p_ship = 1: everything runs centrally.
    avg_all_ship = model.response_average(state, p_ship=1.0)
    assert avg_all_ship == pytest.approx(r_c)


def test_auth_window_floor_is_round_trip(model):
    assert model.auth_window(0.0) >= 2 * model.delay


def test_rho_auth_fallback():
    state = zero_contention()
    assert state.rho_for_auth == state.rho_local
    with_auth = ContentionState(
        rho_local=0.9, rho_central=0.0,
        p_wait_local=0.0, p_wait_central=0.0, p_wait_auth=0.0,
        p_abort_local=0.0, p_abort_local_rerun=0.0,
        p_abort_central=0.0, p_abort_central_rerun=0.0,
        t_local=0.5, t_central=0.5, rho_auth=0.2)
    assert with_auth.rho_for_auth == 0.2


def test_class_b_masters_expected_count(model):
    # 10 references uniform over 10 databases: 10 * (1 - 0.9^10) ~ 6.51.
    assert model.class_b_masters == pytest.approx(6.513, abs=0.01)


# ---------------------------------------------------------------------------
# Fixed-point evaluation
# ---------------------------------------------------------------------------

def test_evaluate_validates_inputs(model):
    with pytest.raises(ValueError):
        model.evaluate(-0.1, 1.0)
    with pytest.raises(ValueError):
        model.evaluate(1.1, 1.0)
    with pytest.raises(ValueError):
        model.evaluate(0.5, 0.0)


def test_evaluate_converges_at_moderate_load(model):
    estimate = model.evaluate(p_ship=0.3, rate_per_site=1.5)
    assert estimate.converged
    assert estimate.response_average > 0


def test_shipping_relieves_local_utilization(model):
    none = model.evaluate(0.0, 2.0)
    half = model.evaluate(0.5, 2.0)
    assert half.contention.rho_local < none.contention.rho_local
    assert half.contention.rho_central > none.contention.rho_central


def test_overload_reported_not_converged(model):
    estimate = model.evaluate(p_ship=0.0, rate_per_site=3.0)
    # 3 local tps x 0.48s of CPU per txn >> 1 MIPS: locally unstable.
    assert not estimate.converged or \
        estimate.contention.rho_local > 0.9
    assert estimate.response_average > model.evaluate(
        0.0, 1.0).response_average


def test_matches_simulation_at_moderate_load():
    """Model vs simulator: within 15% at 15 tps, no load sharing.

    (The simulator measured 1.56s at this point; see EXPERIMENTS.md.)
    """
    config = paper_config(total_rate=15.0)
    model = AnalyticModel(config)
    estimate = model.evaluate(p_ship=0.0, rate_per_site=1.5)
    assert estimate.response_average == pytest.approx(1.47, rel=0.15)


@given(st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.1, max_value=2.0))
@settings(max_examples=25, deadline=None)
def test_estimates_always_finite_and_positive(p_ship, rate):
    model = AnalyticModel(paper_config(total_rate=10.0))
    estimate = model.evaluate(p_ship, rate)
    assert estimate.response_local > 0
    assert estimate.response_central > 0
    assert estimate.response_average > 0
    assert estimate.response_average < 1e9
    contention = estimate.contention
    for probability in (contention.p_wait_local, contention.p_wait_central,
                        contention.p_wait_auth, contention.p_abort_local,
                        contention.p_abort_central):
        assert 0.0 <= probability <= 0.95


def test_larger_delay_raises_central_response():
    near = AnalyticModel(paper_config(total_rate=10.0, comm_delay=0.2))
    far = AnalyticModel(paper_config(total_rate=10.0, comm_delay=0.5))
    assert far.evaluate(0.5, 1.0).response_central > \
        near.evaluate(0.5, 1.0).response_central


def test_faster_central_lowers_central_response():
    slow = AnalyticModel(paper_config(total_rate=10.0, central_mips=5.0))
    fast = AnalyticModel(paper_config(total_rate=10.0, central_mips=30.0))
    assert fast.evaluate(0.5, 1.0).response_central < \
        slow.evaluate(0.5, 1.0).response_central
