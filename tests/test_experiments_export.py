"""Tests for CSV export and model validation utilities."""

import csv
import io

import pytest

from repro.experiments import (
    RunSettings,
    curve_rows,
    figure_4_1,
    figure_to_csv,
    validate_model,
    write_figure_csv,
)
from repro.experiments.export import FIELDS
from repro.experiments.runner import Curve, CurvePoint


def tiny_curve():
    points = tuple(
        CurvePoint(total_rate=rate, mean_response_time=rate / 10,
                   throughput=rate, shipped_fraction=0.5, abort_rate=0.01,
                   local_utilization=0.4, central_utilization=0.3)
        for rate in (5.0, 10.0))
    return Curve(label="demo", comm_delay=0.2, points=points)


def test_curve_rows_fields():
    rows = curve_rows(tiny_curve(), figure_id="4.x")
    assert len(rows) == 2
    assert set(rows[0]) == set(FIELDS)
    assert rows[0]["figure"] == "4.x"
    assert rows[0]["curve"] == "demo"
    assert rows[1]["total_rate"] == 10.0


def test_figure_to_csv_roundtrip():
    figure = figure_4_1(RunSettings(warmup_time=3.0, measure_time=8.0))
    text = figure_to_csv(figure)
    parsed = list(csv.DictReader(io.StringIO(text)))
    labels = {row["curve"] for row in parsed}
    assert {"no-load-sharing", "static", "best-dynamic"} <= labels
    # Every row carries a parsable response time.
    for row in parsed:
        assert float(row["mean_response_time"]) > 0


def test_write_figure_csv(tmp_path):
    figure = figure_4_1(RunSettings(warmup_time=3.0, measure_time=8.0))
    target = write_figure_csv(figure, tmp_path / "fig.csv")
    assert target.exists()
    content = target.read_text()
    assert content.startswith("figure,curve,")


def test_validate_model_small_grid():
    report = validate_model(rates=(5.0, 10.0), p_ships=(0.0, 0.5),
                            warmup_time=5.0, measure_time=20.0)
    assert len(report.points) == 4
    assert report.mean_abs_error < 0.5
    table = report.to_table()
    assert "p_ship" in table
    assert "err" in table


def test_validation_point_error():
    from repro.experiments import ValidationPoint

    point = ValidationPoint(
        total_rate=10.0, p_ship=0.0, model_response=1.2,
        simulated_response=1.0, model_rho_local=0.4,
        simulated_rho_local=0.4, model_rho_central=0.1,
        simulated_rho_central=0.1)
    assert point.response_error == pytest.approx(0.2)
